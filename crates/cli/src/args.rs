//! Hand-rolled flag parsing (the workspace keeps its dependency set to the
//! vetted offline crates; a CLI parser is 150 lines we can own).

use urb_core::Algorithm;

/// Usage text.
pub const USAGE: &str = "\
urb — anonymous Uniform Reliable Broadcast simulator (Tang et al., IPPS 2015)

USAGE:
    urb run   [flags]      simulate one run and report the URB verdict
    urb sweep [flags]      loss-rate sweep, one row per loss value
    urb scenario FILE [--seed S] [--trace FILE] [--json]
                           replay a declarative scenario file (.toml/.json)
                           and check its [expect] verdict
    urb check FILE [--strategy dfs|dpor-lite|random] [--depth N] [--seed S]
                   [--jobs N] [--cache FILE] [--trace FILE] [--json]
                           systematically explore the scenario's schedule
                           space and check URB invariants + the [expect]
                           verdict on every explored execution (DESIGN.md §11)
    urb check --replay FILE [--json]
                           re-execute a recorded counterexample trace and
                           verify it reproduces the same violation
    urb bench [--json FILE] [--seed S] [--seeds K] [--experiments e1,e4,...]
                           run the reduced experiment grids and emit the
                           machine-readable bench trajectory (DESIGN.md §10)
    urb bench --validate FILE
                           schema-check an existing BENCH_*.json file
    urb bench --diff OLD NEW
                           compare two trajectory files: deterministic count
                           metrics must match exactly on overlapping grid
                           points (the CI perf-regression gate)
    urb theorem2 [--n N] [--seed S] [--json]
                           execute the impossibility proof's adversary
    urb node  [flags]      run ONE node of a socket cluster as this OS
                           process: TCP transport under the same sans-io
                           engine (DESIGN.md §13)
    urb cluster --local N [flags]
                           spawn an N-process loopback cluster, wait for
                           it, and report per-topic delivery verdicts
    urb topic OP [flags]   send one lifecycle control operation (create |
                           retire | subscribe | unsubscribe) to a running
                           `urb node`, which applies it and gossips it to
                           the rest of the cluster (DESIGN.md §15)
    urb help               this text

FLAGS (scenario):
    FILE              scenario spec (see DESIGN.md §9 and scenarios/*.toml)
    --seed S          override the spec's RNG seed
    --trace FILE      write a full JSON event trace to FILE
    --json            print the outcome summary as JSON

FLAGS (check):
    FILE              scenario spec; its [check] table sets the default
                      bounds (depth, drop/tick budgets, walks, strategy)
    --strategy S      dfs | dpor-lite | random     [default: spec or dfs]
    --depth N         max choices per explored execution [default: spec]
    --seed S          engine/walk seed override
    --jobs N          exploration worker threads; results are
                      byte-identical for every N           [default: 1]
    --cache FILE      persistent state-hash cache: probe it to skip
                      already-proven subtrees, extend it after a clean
                      complete run (schema-versioned; DESIGN.md §11)
    --trace FILE      write the counterexample trace (replayable) to FILE
    --replay FILE     replay a counterexample file instead of exploring
    --json            print the check report as JSON

FLAGS (bench):
    --json FILE       write the trajectory (enveloped JSON) to FILE
    --validate FILE   validate FILE against the trajectory schema and exit
    --diff OLD NEW    diff two trajectory files and exit nonzero on any
                      count-metric mismatch over overlapping points
    --seed S          root seed for the grids                [default: 1]
    --seeds K         seeds per grid cell                    [default: 3]
    --experiments IDS comma-separated subset of e1..e23      [default: all]
    --load-topics T,… topic-count cells of the e22 open-loop grid
                      (positive ints)        [default: 1,1000,100000]
    --rates R,...     offered-load cells of the e23 open-loop grid,
                      msgs/ktick (positive)  [default: 500,1500,2500,4000,8000]

FLAGS (node):
    --id I            this node's id (0-based)            [required]
    --addrs A,B,...   listen addresses of ALL nodes, in id
                      order (node I listens on the I-th)   [required]
    --listen ADDR     listen-address override              [default: addrs[I]]
    --alg NAME        protocol (see run flags)             [default: majority]
    --topics K        concurrent URB instances             [default: 1]
    --msgs K          broadcasts per topic by this node    [default: 1]
    --seed S          cluster-wide seed                    [default: 0x5EED]
    --expect K        deliveries per topic to wait for;
                      unmet by the deadline = exit 1       [default: none]
    --run-ms T        wall-clock budget                    [default: 20000]
    --linger-ms T     serve this long after --expect is met [default: 500]
    --state-dir DIR   durable snapshot + journal dir; a restart
                      recovers from it (unreadable = exit 2) [default: none]
    --json            print the node report as enveloped JSON

FLAGS (topic):
    OP                create | retire | subscribe | unsubscribe
    --addr HOST:PORT  listen address of any running node   [required]
    --topic N         the topic id                         [required]
    --alg NAME        protocol of a created topic (see run
                      flags; create only)                  [default: majority]

FLAGS (cluster):
    --local N         number of loopback node processes    [required]
    --alg NAME        protocol                             [default: majority]
    --topics K        concurrent URB instances             [default: 1]
    --msgs K          broadcasts per topic per node        [default: 1]
    --seed S          cluster-wide seed                    [default: 0x5EED]
    --run-ms T        per-node wall-clock budget           [default: 20000]
    --json            print the cluster verdict as enveloped JSON

FLAGS (run / sweep):
    --n N             system size                         [default: 5]
    --topics K        concurrent URB instances (topics)   [default: 1]
    --alg NAME        majority | quiescent | quiescent-literal |
                      best-effort | eager-rb              [default: quiescent]
    --loss P          per-transmission loss probability   [default: 0.2]
    --burst           use bursty (Gilbert-Elliott) loss instead of Bernoulli
    --crashes T       number of crashing processes        [default: 0]
    --msgs K          number of URB broadcasts            [default: 2]
    --seed S          RNG seed                            [default: 1]
    --horizon T       max simulated ticks                 [default: 200000]
    --fd KIND         oracle | heartbeat | none           [default: by algorithm]
    --trace FILE      write a full JSON event trace to FILE
    --json            print the outcome summary as JSON
";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `urb run`.
    Run(RunArgs),
    /// `urb sweep`.
    Sweep(RunArgs),
    /// `urb scenario <file>`.
    Scenario(ScenarioArgs),
    /// `urb check <file>` / `urb check --replay <file>`.
    Check(CheckArgs),
    /// `urb bench`.
    Bench(BenchArgs),
    /// `urb theorem2`.
    Theorem2 {
        /// System size.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Machine-readable output (shared envelope).
        json: bool,
    },
    /// `urb node`.
    Node(NodeArgs),
    /// `urb cluster`.
    Cluster(ClusterArgs),
    /// `urb topic <op>`.
    Topic(TopicArgs),
    /// `urb help`.
    Help,
}

/// The lifecycle operation of `urb topic` (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopicOp {
    /// Create (and go live on) a topic.
    Create,
    /// Retire a topic: drain, then reclaim.
    Retire,
    /// Record engine-level delivery interest.
    Subscribe,
    /// Clear engine-level delivery interest.
    Unsubscribe,
}

/// Flags of `urb topic` (one-shot control client).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicArgs {
    /// Which lifecycle operation to send.
    pub op: TopicOp,
    /// Listen address of the target node (any cluster member; the
    /// control gossips from there).
    pub addr: String,
    /// The topic id.
    pub topic: u32,
    /// Protocol a created topic runs (`Create` only).
    pub algorithm: Algorithm,
}

/// Flags of `urb node` (one OS process of a socket cluster).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeArgs {
    /// This node's id, `0 <= id < addrs.len()`.
    pub id: usize,
    /// Listen addresses of every node, in id order.
    pub addrs: Vec<String>,
    /// Listen-address override (`None` = `addrs[id]`).
    pub listen: Option<String>,
    /// Protocol.
    pub algorithm: Algorithm,
    /// Concurrent URB instances (topics).
    pub topics: u32,
    /// Broadcasts this node performs per topic.
    pub msgs: usize,
    /// Cluster-wide seed.
    pub seed: u64,
    /// Deliveries per topic to wait for (`None` = run the full budget).
    pub expect: Option<usize>,
    /// Wall-clock budget, milliseconds.
    pub run_ms: u64,
    /// Post-expectation serve time, milliseconds.
    pub linger_ms: u64,
    /// Machine-readable output.
    pub json: bool,
    /// Durable state directory for crash recovery (`None` = stateless).
    pub state_dir: Option<String>,
}

/// Flags of `urb cluster` (loopback launcher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterArgs {
    /// Number of loopback node processes.
    pub local: usize,
    /// Protocol.
    pub algorithm: Algorithm,
    /// Concurrent URB instances (topics).
    pub topics: u32,
    /// Broadcasts per topic per node.
    pub msgs: usize,
    /// Cluster-wide seed.
    pub seed: u64,
    /// Per-node wall-clock budget, milliseconds.
    pub run_ms: u64,
    /// Machine-readable output.
    pub json: bool,
}

/// Flags of `urb scenario`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioArgs {
    /// Path of the scenario spec file.
    pub path: String,
    /// Seed override (`None` = use the spec's seed).
    pub seed: Option<u64>,
    /// Trace output path.
    pub trace: Option<String>,
    /// Machine-readable output.
    pub json: bool,
}

/// Flags of `urb check`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckArgs {
    /// Path of the scenario spec file (empty in `--replay` mode).
    pub path: Option<String>,
    /// Replay this counterexample file instead of exploring.
    pub replay: Option<String>,
    /// Strategy override (`None` = the spec's `[check]` table, then dfs).
    pub strategy: Option<String>,
    /// Depth-bound override.
    pub depth: Option<u32>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Exploration worker threads (`None` = 1; byte-identical results
    /// for every value).
    pub jobs: Option<usize>,
    /// Persistent state-hash cache file.
    pub cache: Option<String>,
    /// Counterexample trace output path.
    pub trace: Option<String>,
    /// Machine-readable output.
    pub json: bool,
}

/// Flags of `urb bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Trajectory output path (`None` = human table only).
    pub json: Option<String>,
    /// Validate this existing file instead of collecting.
    pub validate: Option<String>,
    /// Diff these two trajectory files instead of collecting.
    pub diff: Option<(String, String)>,
    /// Root seed for the grids.
    pub seed: u64,
    /// Seeds per grid cell.
    pub seeds: u64,
    /// Experiment ids to cover (`None` = all of e1..e23).
    pub experiments: Option<Vec<String>>,
    /// Topic-count cells of the e22 open-loop grid (`None` = the pinned
    /// defaults the committed trajectory files use).
    pub load_topics: Option<Vec<u32>>,
    /// Offered-load cells of the e23 open-loop grid, in messages per
    /// kilotick (`None` = pinned defaults).
    pub rates: Option<Vec<u64>>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            json: None,
            validate: None,
            diff: None,
            seed: 1,
            seeds: 3,
            experiments: None,
            load_topics: None,
            rates: None,
        }
    }
}

/// Flags shared by `run` and `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// System size.
    pub n: usize,
    /// Concurrent URB instances (topics); broadcasts round-robin across
    /// them (DESIGN.md §12).
    pub topics: u32,
    /// Protocol.
    pub algorithm: Algorithm,
    /// Loss probability.
    pub loss: f64,
    /// Bursty loss instead of Bernoulli.
    pub burst: bool,
    /// Crash count.
    pub crashes: usize,
    /// Broadcast count.
    pub msgs: usize,
    /// Seed.
    pub seed: u64,
    /// Horizon.
    pub horizon: u64,
    /// Detector override (`None` = pick by algorithm).
    pub fd: Option<FdChoice>,
    /// Trace output path.
    pub trace: Option<String>,
    /// Machine-readable output.
    pub json: bool,
}

/// Detector selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdChoice {
    /// The audited oracle.
    Oracle,
    /// The heartbeat estimator.
    Heartbeat,
    /// No detector.
    None,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            n: 5,
            topics: 1,
            algorithm: Algorithm::Quiescent,
            loss: 0.2,
            burst: false,
            crashes: 0,
            msgs: 2,
            seed: 1,
            horizon: 200_000,
            fd: None,
            trace: None,
            json: false,
        }
    }
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Ok(match s {
        "majority" | "alg1" => Algorithm::Majority,
        "quiescent" | "alg2" => Algorithm::Quiescent,
        "quiescent-literal" | "literal" => Algorithm::QuiescentLiteral,
        "best-effort" | "beb" => Algorithm::BestEffort,
        "eager-rb" | "rb" => Algorithm::EagerRb,
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

/// Parses a comma-separated list of strictly positive integers (the
/// open-loop grid cells of `urb bench`). Empty list, a non-numeric
/// value, or a zero is a usage error.
fn positive_list<T>(raw: &str, name: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + PartialEq + From<u8>,
    T::Err: std::fmt::Display,
{
    let vals: Vec<T> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<T>().map_err(|e| format!("{name}: {s:?}: {e}")))
        .collect::<Result<_, _>>()?;
    if vals.is_empty() {
        return Err(format!("{name} needs at least one value"));
    }
    if vals.contains(&T::from(0u8)) {
        return Err(format!("{name} values must be positive"));
    }
    Ok(vals)
}

/// Parses an argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "theorem2" => {
            let mut n = 6usize;
            let mut seed = 1u64;
            let mut json = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--n" => n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--json" => json = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if n < 2 {
                return Err("--n must be at least 2".into());
            }
            Ok(Command::Theorem2 { n, seed, json })
        }
        "bench" => {
            let mut args = BenchArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--json" => args.json = Some(value("--json")?),
                    "--validate" => args.validate = Some(value("--validate")?),
                    "--diff" => {
                        let old = value("--diff")?;
                        let new = it
                            .next()
                            .cloned()
                            .ok_or("--diff needs two files: OLD NEW")?;
                        args.diff = Some((old, new));
                    }
                    "--seed" => {
                        args.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--seeds" => {
                        args.seeds = value("--seeds")?
                            .parse()
                            .map_err(|e| format!("--seeds: {e}"))?
                    }
                    "--experiments" => {
                        // Canonicalize each id to exactly "e<n>": the
                        // trajectory grids match these strings literally.
                        let ids: Vec<String> = value("--experiments")?
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(|id| {
                                let lower = id.to_lowercase();
                                match lower.strip_prefix('e') {
                                    Some(digits) if digits.bytes().all(|b| b.is_ascii_digit()) => {
                                        match digits.parse::<u32>() {
                                            Ok(n @ 1..=23) => Ok(format!("e{n}")),
                                            _ => Err(format!(
                                                "unknown experiment id {id:?} (use e1..e23)"
                                            )),
                                        }
                                    }
                                    _ => Err(format!("unknown experiment id {id:?} (use e1..e23)")),
                                }
                            })
                            .collect::<Result<_, _>>()?;
                        if ids.is_empty() {
                            return Err("--experiments needs at least one id".into());
                        }
                        args.experiments = Some(ids);
                    }
                    "--load-topics" => {
                        args.load_topics =
                            Some(positive_list(&value("--load-topics")?, "--load-topics")?);
                    }
                    "--rates" => {
                        args.rates = Some(positive_list(&value("--rates")?, "--rates")?);
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if args.seeds == 0 {
                return Err("--seeds must be positive".into());
            }
            Ok(Command::Bench(args))
        }
        "check" => {
            let mut path: Option<String> = None;
            let mut args = CheckArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--replay" => args.replay = Some(value("--replay")?),
                    "--strategy" => {
                        let s = value("--strategy")?;
                        if !matches!(s.as_str(), "dfs" | "dpor-lite" | "random") {
                            return Err(format!(
                                "unknown strategy {s:?} (dfs | dpor-lite | random)"
                            ));
                        }
                        args.strategy = Some(s);
                    }
                    "--depth" => {
                        let d: u32 = value("--depth")?
                            .parse()
                            .map_err(|e| format!("--depth: {e}"))?;
                        if d == 0 {
                            return Err("--depth must be positive".into());
                        }
                        args.depth = Some(d);
                    }
                    "--seed" => {
                        args.seed = Some(
                            value("--seed")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?,
                        )
                    }
                    "--jobs" => {
                        let jobs: usize = value("--jobs")?
                            .parse()
                            .map_err(|e| format!("--jobs: {e}"))?;
                        if jobs == 0 {
                            return Err("--jobs must be positive".into());
                        }
                        args.jobs = Some(jobs);
                    }
                    "--cache" => args.cache = Some(value("--cache")?),
                    "--trace" => args.trace = Some(value("--trace")?),
                    "--json" => args.json = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag {other:?}"))
                    }
                    file => {
                        if path.replace(file.to_string()).is_some() {
                            return Err("check takes exactly one FILE".into());
                        }
                    }
                }
            }
            args.path = path;
            match (&args.path, &args.replay) {
                (None, None) => return Err("check needs a scenario FILE (or --replay FILE)".into()),
                (Some(_), Some(_)) => {
                    return Err("check takes either a scenario FILE or --replay, not both".into())
                }
                _ => {}
            }
            Ok(Command::Check(args))
        }
        "scenario" => {
            let mut path: Option<String> = None;
            let mut args = ScenarioArgs {
                path: String::new(),
                seed: None,
                trace: None,
                json: false,
            };
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--seed" => {
                        args.seed = Some(
                            value("--seed")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?,
                        )
                    }
                    "--trace" => args.trace = Some(value("--trace")?),
                    "--json" => args.json = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag {other:?}"))
                    }
                    file => {
                        if path.replace(file.to_string()).is_some() {
                            return Err("scenario takes exactly one FILE".into());
                        }
                    }
                }
            }
            args.path = path.ok_or("scenario needs a FILE argument")?;
            Ok(Command::Scenario(args))
        }
        "run" | "sweep" => {
            let mut args = RunArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
                    "--topics" => {
                        args.topics = value("--topics")?
                            .parse()
                            .map_err(|e| format!("--topics: {e}"))?
                    }
                    "--alg" => args.algorithm = parse_algorithm(&value("--alg")?)?,
                    "--loss" => {
                        args.loss = value("--loss")?
                            .parse()
                            .map_err(|e| format!("--loss: {e}"))?
                    }
                    "--burst" => args.burst = true,
                    "--crashes" => {
                        args.crashes = value("--crashes")?
                            .parse()
                            .map_err(|e| format!("--crashes: {e}"))?
                    }
                    "--msgs" => {
                        args.msgs = value("--msgs")?
                            .parse()
                            .map_err(|e| format!("--msgs: {e}"))?
                    }
                    "--seed" => {
                        args.seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--horizon" => {
                        args.horizon = value("--horizon")?
                            .parse()
                            .map_err(|e| format!("--horizon: {e}"))?
                    }
                    "--fd" => {
                        args.fd = Some(match value("--fd")?.as_str() {
                            "oracle" => FdChoice::Oracle,
                            "heartbeat" | "hb" => FdChoice::Heartbeat,
                            "none" => FdChoice::None,
                            other => return Err(format!("unknown detector {other:?}")),
                        })
                    }
                    "--trace" => args.trace = Some(value("--trace")?),
                    "--json" => args.json = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if args.n == 0 {
                return Err("--n must be positive".into());
            }
            if args.topics == 0 {
                return Err("--topics must be positive".into());
            }
            if args.crashes >= args.n {
                return Err("--crashes must leave at least one correct process (t <= n-1)".into());
            }
            if !(0.0..=1.0).contains(&args.loss) {
                return Err("--loss must be in [0, 1]".into());
            }
            if sub == "run" {
                Ok(Command::Run(args))
            } else {
                Ok(Command::Sweep(args))
            }
        }
        "node" => {
            let mut id: Option<usize> = None;
            let mut addrs: Vec<String> = Vec::new();
            let mut listen: Option<String> = None;
            let mut algorithm = Algorithm::Majority;
            let mut topics = 1u32;
            let mut msgs = 1usize;
            let mut seed = 0x5EEDu64;
            let mut expect: Option<usize> = None;
            let mut run_ms = 20_000u64;
            let mut linger_ms = 500u64;
            let mut json = false;
            let mut state_dir: Option<String> = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--id" => id = Some(value("--id")?.parse().map_err(|e| format!("--id: {e}"))?),
                    "--addrs" => {
                        addrs = value("--addrs")?
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(String::from)
                            .collect();
                    }
                    "--listen" => listen = Some(value("--listen")?),
                    "--alg" => algorithm = parse_algorithm(&value("--alg")?)?,
                    "--topics" => {
                        topics = value("--topics")?
                            .parse()
                            .map_err(|e| format!("--topics: {e}"))?
                    }
                    "--msgs" => {
                        msgs = value("--msgs")?
                            .parse()
                            .map_err(|e| format!("--msgs: {e}"))?
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--expect" => {
                        expect = Some(
                            value("--expect")?
                                .parse()
                                .map_err(|e| format!("--expect: {e}"))?,
                        )
                    }
                    "--run-ms" => {
                        run_ms = value("--run-ms")?
                            .parse()
                            .map_err(|e| format!("--run-ms: {e}"))?
                    }
                    "--linger-ms" => {
                        linger_ms = value("--linger-ms")?
                            .parse()
                            .map_err(|e| format!("--linger-ms: {e}"))?
                    }
                    "--json" => json = true,
                    "--state-dir" => state_dir = Some(value("--state-dir")?),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let id = id.ok_or("node needs --id")?;
            if addrs.is_empty() {
                return Err("node needs --addrs (one listen address per node)".into());
            }
            if id >= addrs.len() {
                return Err(format!(
                    "--id {id} out of range for {} --addrs entries",
                    addrs.len()
                ));
            }
            if topics == 0 {
                return Err("--topics must be positive".into());
            }
            Ok(Command::Node(NodeArgs {
                id,
                addrs,
                listen,
                algorithm,
                topics,
                msgs,
                seed,
                expect,
                run_ms,
                linger_ms,
                json,
                state_dir,
            }))
        }
        "cluster" => {
            let mut local: Option<usize> = None;
            let mut algorithm = Algorithm::Majority;
            let mut topics = 1u32;
            let mut msgs = 1usize;
            let mut seed = 0x5EEDu64;
            let mut run_ms = 20_000u64;
            let mut json = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--local" => {
                        local = Some(
                            value("--local")?
                                .parse()
                                .map_err(|e| format!("--local: {e}"))?,
                        )
                    }
                    "--alg" => algorithm = parse_algorithm(&value("--alg")?)?,
                    "--topics" => {
                        topics = value("--topics")?
                            .parse()
                            .map_err(|e| format!("--topics: {e}"))?
                    }
                    "--msgs" => {
                        msgs = value("--msgs")?
                            .parse()
                            .map_err(|e| format!("--msgs: {e}"))?
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--run-ms" => {
                        run_ms = value("--run-ms")?
                            .parse()
                            .map_err(|e| format!("--run-ms: {e}"))?
                    }
                    "--json" => json = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let local = local.ok_or("cluster needs --local N")?;
            if local == 0 {
                return Err("--local must be at least 1".into());
            }
            if topics == 0 {
                return Err("--topics must be positive".into());
            }
            Ok(Command::Cluster(ClusterArgs {
                local,
                algorithm,
                topics,
                msgs,
                seed,
                run_ms,
                json,
            }))
        }
        "topic" => {
            let op = match it.next().map(String::as_str) {
                Some("create") => TopicOp::Create,
                Some("retire") => TopicOp::Retire,
                Some("subscribe") => TopicOp::Subscribe,
                Some("unsubscribe") => TopicOp::Unsubscribe,
                Some(other) => {
                    let ops = "create | retire | subscribe | unsubscribe";
                    return Err(format!("unknown topic operation {other:?} ({ops})"));
                }
                None => {
                    return Err(
                        "topic needs an operation (create | retire | subscribe | unsubscribe)"
                            .into(),
                    )
                }
            };
            let mut addr: Option<String> = None;
            let mut topic: Option<u32> = None;
            let mut algorithm: Option<Algorithm> = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--addr" => addr = Some(value("--addr")?),
                    "--topic" => {
                        topic = Some(
                            value("--topic")?
                                .parse()
                                .map_err(|e| format!("--topic: {e}"))?,
                        )
                    }
                    "--alg" => algorithm = Some(parse_algorithm(&value("--alg")?)?),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if algorithm.is_some() && op != TopicOp::Create {
                return Err("--alg only applies to `topic create`".into());
            }
            Ok(Command::Topic(TopicArgs {
                op,
                addr: addr.ok_or("topic needs --addr (a running node's listen address)")?,
                topic: topic.ok_or("topic needs --topic N")?,
                algorithm: algorithm.unwrap_or(Algorithm::Majority),
            }))
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        match parse(&argv("run")).unwrap() {
            Command::Run(a) => {
                assert_eq!(a.n, 5);
                assert_eq!(a.algorithm, Algorithm::Quiescent);
                assert!(!a.json);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn run_full_flags() {
        let cmd = parse(&argv(
            "run --n 8 --topics 3 --alg majority --loss 0.35 --crashes 3 --msgs 4 --seed 99 \
             --horizon 5000 --fd none --trace /tmp/t.json --json --burst",
        ))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.n, 8);
                assert_eq!(a.topics, 3);
                assert_eq!(a.algorithm, Algorithm::Majority);
                assert_eq!(a.loss, 0.35);
                assert_eq!(a.crashes, 3);
                assert_eq!(a.msgs, 4);
                assert_eq!(a.seed, 99);
                assert_eq!(a.horizon, 5000);
                assert_eq!(a.fd, Some(FdChoice::None));
                assert_eq!(a.trace.as_deref(), Some("/tmp/t.json"));
                assert!(a.json);
                assert!(a.burst);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn algorithm_aliases() {
        assert_eq!(parse_algorithm("alg1").unwrap(), Algorithm::Majority);
        assert_eq!(parse_algorithm("alg2").unwrap(), Algorithm::Quiescent);
        assert_eq!(
            parse_algorithm("literal").unwrap(),
            Algorithm::QuiescentLiteral
        );
        assert!(parse_algorithm("paxos").is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(parse(&argv("run --crashes 5 --n 5")).is_err(), "t <= n-1");
        assert!(parse(&argv("run --loss 1.5")).is_err());
        assert!(parse(&argv("run --n 0")).is_err());
        assert!(parse(&argv("run --topics 0")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --alg")).is_err(), "missing value");
        assert!(parse(&argv("run --wat 3")).is_err());
    }

    #[test]
    fn theorem2_flags() {
        match parse(&argv("theorem2 --n 8 --seed 4 --json")).unwrap() {
            Command::Theorem2 { n, seed, json } => {
                assert_eq!(n, 8);
                assert_eq!(seed, 4);
                assert!(json);
            }
            _ => panic!(),
        }
        assert!(parse(&argv("theorem2 --n 1")).is_err());
    }

    #[test]
    fn scenario_parses_path_and_flags() {
        match parse(&argv(
            "scenario scenarios/partition_heal.toml --seed 9 --json",
        ))
        .unwrap()
        {
            Command::Scenario(a) => {
                assert_eq!(a.path, "scenarios/partition_heal.toml");
                assert_eq!(a.seed, Some(9));
                assert!(a.json);
                assert!(a.trace.is_none());
            }
            _ => panic!(),
        }
        assert!(parse(&argv("scenario")).is_err(), "FILE required");
        assert!(parse(&argv("scenario a.toml b.toml")).is_err(), "one FILE");
        assert!(parse(&argv("scenario a.toml --wat")).is_err());
    }

    #[test]
    fn check_parses_flags_and_modes() {
        match parse(&argv(
            "check scenarios/theorem2_violation.toml --strategy dpor-lite \
             --depth 40 --seed 5 --jobs 4 --cache /tmp/urb.cache --trace /tmp/cx.json --json",
        ))
        .unwrap()
        {
            Command::Check(a) => {
                assert_eq!(a.path.as_deref(), Some("scenarios/theorem2_violation.toml"));
                assert_eq!(a.strategy.as_deref(), Some("dpor-lite"));
                assert_eq!(a.depth, Some(40));
                assert_eq!(a.seed, Some(5));
                assert_eq!(a.jobs, Some(4));
                assert_eq!(a.cache.as_deref(), Some("/tmp/urb.cache"));
                assert_eq!(a.trace.as_deref(), Some("/tmp/cx.json"));
                assert!(a.json);
                assert!(a.replay.is_none());
            }
            _ => panic!(),
        }
        match parse(&argv("check --replay ce.json")).unwrap() {
            Command::Check(a) => {
                assert_eq!(a.replay.as_deref(), Some("ce.json"));
                assert!(a.path.is_none());
            }
            _ => panic!(),
        }
        assert!(parse(&argv("check")).is_err(), "FILE or --replay required");
        assert!(
            parse(&argv("check a.toml --replay b.json")).is_err(),
            "mutually exclusive"
        );
        assert!(parse(&argv("check a.toml b.toml")).is_err(), "one FILE");
        assert!(parse(&argv("check a.toml --strategy bfs")).is_err());
        assert!(parse(&argv("check a.toml --depth 0")).is_err());
        assert!(parse(&argv("check a.toml --jobs 0")).is_err());
        assert!(
            parse(&argv("check a.toml --jobs")).is_err(),
            "missing value"
        );
        assert!(
            parse(&argv("check a.toml --cache")).is_err(),
            "missing value"
        );
        assert!(parse(&argv("check a.toml --wat")).is_err());
    }

    #[test]
    fn bench_diff_takes_two_files() {
        match parse(&argv("bench --diff old.json new.json")).unwrap() {
            Command::Bench(a) => {
                assert_eq!(a.diff, Some(("old.json".into(), "new.json".into())));
            }
            _ => panic!(),
        }
        assert!(parse(&argv("bench --diff only-one.json")).is_err());
    }

    #[test]
    fn bench_parses_flags_and_validates_ids() {
        match parse(&argv("bench")).unwrap() {
            Command::Bench(a) => assert_eq!(a, BenchArgs::default()),
            _ => panic!(),
        }
        match parse(&argv(
            "bench --json BENCH_PR3.json --seed 9 --seeds 2 --experiments e1,E4,e17",
        ))
        .unwrap()
        {
            Command::Bench(a) => {
                assert_eq!(a.json.as_deref(), Some("BENCH_PR3.json"));
                assert_eq!(a.seed, 9);
                assert_eq!(a.seeds, 2);
                assert_eq!(
                    a.experiments,
                    Some(vec!["e1".into(), "e4".into(), "e17".into()]),
                    "ids normalized to lowercase"
                );
            }
            _ => panic!(),
        }
        match parse(&argv("bench --validate out.json")).unwrap() {
            Command::Bench(a) => assert_eq!(a.validate.as_deref(), Some("out.json")),
            _ => panic!(),
        }
        assert!(parse(&argv("bench --experiments e99")).is_err());
        match parse(&argv("bench --experiments e18,e19")).unwrap() {
            Command::Bench(a) => assert_eq!(
                a.experiments,
                Some(vec!["e18".into(), "e19".into()]),
                "topic-plane ids accepted"
            ),
            _ => panic!(),
        }
        assert!(parse(&argv("bench --experiments e0")).is_err());
        assert!(parse(&argv("bench --experiments e+1")).is_err(), "no sign");
        match parse(&argv("bench --experiments e01")).unwrap() {
            Command::Bench(a) => assert_eq!(
                a.experiments,
                Some(vec!["e1".into()]),
                "leading zeros canonicalized to the grid's literal ids"
            ),
            _ => panic!(),
        }
        assert!(parse(&argv("bench --seeds 0")).is_err());
        assert!(parse(&argv("bench --wat")).is_err());
    }

    #[test]
    fn node_parses_flags_and_validates() {
        match parse(&argv(
            "node --id 1 --addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
             --alg quiescent --topics 2 --msgs 3 --seed 9 --expect 9 --run-ms 5000 \
             --linger-ms 100 --json",
        ))
        .unwrap()
        {
            Command::Node(a) => {
                assert_eq!(a.id, 1);
                assert_eq!(a.addrs.len(), 3);
                assert_eq!(a.algorithm, Algorithm::Quiescent);
                assert_eq!(a.topics, 2);
                assert_eq!(a.msgs, 3);
                assert_eq!(a.seed, 9);
                assert_eq!(a.expect, Some(9));
                assert_eq!(a.run_ms, 5000);
                assert_eq!(a.linger_ms, 100);
                assert!(a.listen.is_none());
                assert!(a.json);
            }
            _ => panic!(),
        }
        match parse(&argv(
            "node --id 0 --addrs 127.0.0.1:7001 --listen 0.0.0.0:7001",
        ))
        .unwrap()
        {
            Command::Node(a) => {
                assert_eq!(a.listen.as_deref(), Some("0.0.0.0:7001"));
                assert_eq!(a.algorithm, Algorithm::Majority, "default");
                assert!(a.expect.is_none());
            }
            _ => panic!(),
        }
        assert!(parse(&argv("node")).is_err(), "--id required");
        assert!(parse(&argv("node --id 0")).is_err(), "--addrs required");
        assert!(
            parse(&argv("node --id 3 --addrs a:1,b:2")).is_err(),
            "id out of range"
        );
        assert!(parse(&argv("node --id 0 --addrs a:1 --topics 0")).is_err());
        assert!(parse(&argv("node --id 0 --addrs a:1 --wat")).is_err());
    }

    #[test]
    fn cluster_parses_flags_and_validates() {
        match parse(&argv("cluster --local 3 --msgs 2 --seed 5 --json")).unwrap() {
            Command::Cluster(a) => {
                assert_eq!(a.local, 3);
                assert_eq!(a.msgs, 2);
                assert_eq!(a.seed, 5);
                assert_eq!(a.run_ms, 20_000, "default");
                assert!(a.json);
            }
            _ => panic!(),
        }
        assert!(parse(&argv("cluster")).is_err(), "--local required");
        assert!(parse(&argv("cluster --local 0")).is_err());
        assert!(parse(&argv("cluster --local 3 --topics 0")).is_err());
        assert!(parse(&argv("cluster --local 3 --wat")).is_err());
    }

    #[test]
    fn topic_parses_ops_and_validates() {
        match parse(&argv(
            "topic create --addr 127.0.0.1:7001 --topic 7 --alg quiescent",
        ))
        .unwrap()
        {
            Command::Topic(a) => {
                assert_eq!(a.op, TopicOp::Create);
                assert_eq!(a.addr, "127.0.0.1:7001");
                assert_eq!(a.topic, 7);
                assert_eq!(a.algorithm, Algorithm::Quiescent);
            }
            _ => panic!(),
        }
        match parse(&argv("topic retire --addr h:1 --topic 2")).unwrap() {
            Command::Topic(a) => {
                assert_eq!(a.op, TopicOp::Retire);
                assert_eq!(a.algorithm, Algorithm::Majority, "default unused");
            }
            _ => panic!(),
        }
        match parse(&argv("topic subscribe --addr h:1 --topic 0")).unwrap() {
            Command::Topic(a) => assert_eq!(a.op, TopicOp::Subscribe),
            _ => panic!(),
        }
        match parse(&argv("topic unsubscribe --addr h:1 --topic 0")).unwrap() {
            Command::Topic(a) => assert_eq!(a.op, TopicOp::Unsubscribe),
            _ => panic!(),
        }
        assert!(parse(&argv("topic")).is_err(), "operation required");
        assert!(parse(&argv("topic destroy --addr h:1 --topic 1")).is_err());
        assert!(parse(&argv("topic create --topic 1")).is_err(), "--addr");
        assert!(parse(&argv("topic create --addr h:1")).is_err(), "--topic");
        assert!(
            parse(&argv("topic retire --addr h:1 --topic 1 --alg majority")).is_err(),
            "--alg is create-only"
        );
        assert!(parse(&argv("topic create --addr h:1 --topic 1 --wat")).is_err());
    }

    #[test]
    fn bench_accepts_e23() {
        match parse(&argv("bench --experiments e21,e22,e23")).unwrap() {
            Command::Bench(a) => assert_eq!(
                a.experiments,
                Some(vec!["e21".into(), "e22".into(), "e23".into()])
            ),
            _ => panic!(),
        }
        assert!(parse(&argv("bench --experiments e24")).is_err());
    }

    #[test]
    fn bench_open_loop_grid_flags() {
        match parse(&argv("bench --load-topics 1,64 --rates 500,9000")).unwrap() {
            Command::Bench(a) => {
                assert_eq!(a.load_topics, Some(vec![1, 64]));
                assert_eq!(a.rates, Some(vec![500, 9_000]));
            }
            _ => panic!(),
        }
        // Defaults stay None: the committed trajectory files pin them.
        match parse(&argv("bench")).unwrap() {
            Command::Bench(a) => {
                assert_eq!(a.load_topics, None);
                assert_eq!(a.rates, None);
            }
            _ => panic!(),
        }
        assert!(parse(&argv("bench --rates 0")).is_err(), "zero rate");
        assert!(parse(&argv("bench --rates abc")).is_err(), "non-numeric");
        assert!(parse(&argv("bench --rates ,")).is_err(), "empty list");
        assert!(
            parse(&argv("bench --load-topics 0,5")).is_err(),
            "zero cell"
        );
        assert!(
            parse(&argv("bench --load-topics")).is_err(),
            "missing value"
        );
    }

    #[test]
    fn sweep_parses_like_run() {
        match parse(&argv("sweep --n 6 --alg eager-rb")).unwrap() {
            Command::Sweep(a) => {
                assert_eq!(a.n, 6);
                assert_eq!(a.algorithm, Algorithm::EagerRb);
            }
            _ => panic!(),
        }
    }
}
