//! `urb` — command-line front end for the anon-urb simulator.
//!
//! ```text
//! urb run --n 8 --alg quiescent --loss 0.3 --crashes 5 --msgs 3 --seed 7
//! urb run --n 5 --alg majority --trace /tmp/run.json --json
//! urb scenario scenarios/partition_heal.toml
//! urb check scenarios/theorem2_violation.toml --trace cx.json
//! urb check --replay cx.json
//! urb bench --json BENCH_PR3.json
//! urb bench --diff BENCH_PR3.json bench-smoke.json
//! urb theorem2 --n 6
//! urb node --id 0 --addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//! urb cluster --local 3 --json
//! urb sweep --n 8 --alg majority
//! urb help
//! ```
//!
//! Everything the CLI does goes through the same `urb_sim::run` entry point
//! the tests and experiments use; the CLI only parses flags and formats
//! output (human text by default, `--json` for machines).

use urb_cli::args::{parse, Command};
use urb_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(Command::Run(cfg)) => commands::run_cmd(cfg),
        Ok(Command::Scenario(args)) => commands::scenario_cmd(args),
        Ok(Command::Check(args)) => commands::check_cmd(args),
        Ok(Command::Bench(args)) => commands::bench_cmd(args),
        Ok(Command::Theorem2 { n, seed, json }) => commands::theorem2_cmd(n, seed, json),
        Ok(Command::Sweep(cfg)) => commands::sweep_cmd(cfg),
        Ok(Command::Node(args)) => commands::node_cmd(args),
        Ok(Command::Cluster(args)) => commands::cluster_cmd(args),
        Ok(Command::Topic(args)) => commands::topic_cmd(args),
        Ok(Command::Help) => {
            print!("{}", urb_cli::args::USAGE);
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", urb_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
