//! Library side of the `urb` CLI — argument parsing and command
//! implementations, split out so they are unit-testable without spawning
//! the binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod summary;
