//! Loopback-cluster integration suite: the payoff test plane of the
//! sans-io boundary (DESIGN.md §13).
//!
//! The same seeded workload runs through the **in-process** threaded
//! runtime (threads + channels) and through a **socket cluster** of
//! `urb node` OS processes (TCP + stream framing), and the per-topic
//! delivery sets must be identical — the engine cannot tell which
//! transport it is behind, and URB's guarantees survive real sockets.
//! A second test kills and restarts one process mid-run and asserts the
//! survivors' URB properties hold and the backoff path re-attaches the
//! restarted peer.
//!
//! Every test here binds loopback sockets and spawns real OS processes,
//! so the suite is `#[ignore]`-gated for minimal local environments;
//! CI's cluster-smoke job runs it with `--ignored`.

use std::collections::BTreeSet;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn urb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_urb"))
}

/// Reserves `n` concrete loopback addresses by binding ephemeral
/// listeners, recording them, and releasing them for the node processes.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Spawns one `urb node` process with the shared workload flags.
#[allow(clippy::too_many_arguments)]
fn spawn_node(
    id: usize,
    addrs: &[String],
    topics: u32,
    msgs: usize,
    seed: u64,
    expect: usize,
    linger_ms: u64,
    stdout: Stdio,
) -> Child {
    spawn_node_with(
        id,
        addrs,
        topics,
        msgs,
        seed,
        expect,
        linger_ms,
        stdout,
        &[],
    )
}

/// [`spawn_node`] plus extra trailing flags (e.g. `--state-dir`).
#[allow(clippy::too_many_arguments)]
fn spawn_node_with(
    id: usize,
    addrs: &[String],
    topics: u32,
    msgs: usize,
    seed: u64,
    expect: usize,
    linger_ms: u64,
    stdout: Stdio,
    extra: &[&str],
) -> Child {
    urb()
        .args([
            "node",
            "--id",
            &id.to_string(),
            "--addrs",
            &addrs.join(","),
            "--alg",
            "majority",
            "--topics",
            &topics.to_string(),
            "--msgs",
            &msgs.to_string(),
            "--seed",
            &seed.to_string(),
            "--expect",
            &expect.to_string(),
            "--run-ms",
            "30000",
            "--linger-ms",
            &linger_ms.to_string(),
            "--json",
        ])
        .args(extra)
        .stdout(stdout)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn urb node")
}

/// Parses a node-report envelope into per-topic delivered payload sets.
fn payload_sets(report: &serde_json::Value, topics: u32) -> Vec<BTreeSet<String>> {
    let mut sets = vec![BTreeSet::new(); topics as usize];
    for row in report["data"]["per_topic"].as_array().expect("per_topic") {
        let topic = row["topic"].as_u64().expect("topic id") as usize;
        sets[topic] = row["payloads"]
            .as_array()
            .expect("payloads")
            .iter()
            .map(|p| p.as_str().expect("payload string").to_string())
            .collect();
    }
    sets
}

/// The headline parity check: identical per-topic delivery sets between
/// the in-process runtime and a 3-process socket cluster on the same
/// seeded workload.
#[test]
#[ignore = "spawns OS processes on loopback sockets; run via CI cluster-smoke or --ignored"]
fn loopback_parity_with_in_process_runtime() {
    let (n, topics, msgs, seed) = (3usize, 2u32, 2usize, 42u64);
    let expect = n * msgs;

    // Socket side: three real OS processes over TCP.
    let addrs = reserve_addrs(n);
    let children: Vec<Child> = (0..n)
        .map(|id| spawn_node(id, &addrs, topics, msgs, seed, expect, 500, Stdio::piped()))
        .collect();
    let mut socket_sets: Vec<Vec<BTreeSet<String>>> = Vec::with_capacity(n);
    for (id, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("node exits");
        assert!(
            out.status.success(),
            "node {id} failed: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let v: serde_json::Value =
            serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
                .expect("node report is valid JSON");
        assert_eq!(v["kind"].as_str(), Some("node-report"));
        assert_eq!(v["data"]["complete"].as_bool(), Some(true));
        socket_sets.push(payload_sets(&v, topics));
    }

    // Reference side: the identical workload through threads + channels.
    let reference = urb_runtime::run_reference(
        n,
        urb_core::Algorithm::Majority,
        topics,
        msgs,
        seed,
        Duration::from_secs(30),
    );

    // Parity, node by node, topic by topic — and both stacks match the
    // closed-form expected workload set.
    for topic in 0..topics {
        let want = urb_runtime::expected_payloads(n, urb_types::TopicId(topic), msgs);
        for pid in 0..n {
            assert_eq!(
                socket_sets[pid][topic as usize], reference[topic as usize][pid],
                "socket vs in-process delivery sets diverged (pid {pid}, topic {topic})"
            );
            assert_eq!(
                socket_sets[pid][topic as usize], want,
                "delivery set incomplete (pid {pid}, topic {topic})"
            );
        }
    }
}

/// Fault injection: SIGKILL one node mid-run, let the survivors keep
/// serving, restart the victim on the same address, and require all
/// three — including the restarted peer, re-attached by the writers'
/// backoff path — to finish with the full delivery set.
#[test]
#[ignore = "spawns OS processes on loopback sockets; run via CI cluster-smoke or --ignored"]
fn killed_node_survivors_hold_and_restart_reattaches() {
    let (n, topics, msgs, seed) = (3usize, 1u32, 1usize, 7u64);
    let expect = n * msgs;
    let addrs = reserve_addrs(n);

    // Survivors get a long post-completion linger so they are still
    // retransmitting when the victim comes back.
    let survivors: Vec<Child> = (0..2)
        .map(|id| {
            spawn_node(
                id,
                &addrs,
                topics,
                msgs,
                seed,
                expect,
                10_000,
                Stdio::piped(),
            )
        })
        .collect();
    let mut victim = spawn_node(2, &addrs, topics, msgs, seed, expect, 500, Stdio::null());

    // Let the cluster form and the victim broadcast, then crash it hard.
    std::thread::sleep(Duration::from_millis(600));
    victim.kill().expect("SIGKILL node 2");
    victim.wait().expect("reap node 2");
    std::thread::sleep(Duration::from_millis(200));

    // Restart on the same address with the same config: the seed-derived
    // tag stream makes its re-broadcast a retransmission of the same
    // message, and the survivors' writers redial it with backoff.
    let restarted = spawn_node(2, &addrs, topics, msgs, seed, expect, 500, Stdio::piped());

    let mut reconnects_seen = 0u64;
    for (id, child) in survivors.into_iter().enumerate() {
        let out = child.wait_with_output().expect("survivor exits");
        assert!(
            out.status.success(),
            "survivor {id} lost URB properties: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let v: serde_json::Value =
            serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
        assert_eq!(v["data"]["complete"].as_bool(), Some(true), "survivor {id}");
        let sets = payload_sets(&v, topics);
        let want = urb_runtime::expected_payloads(n, urb_types::TopicId(0), msgs);
        assert_eq!(sets[0], want, "survivor {id} delivered the full set");
        reconnects_seen += v["data"]["net"]["reconnects"].as_u64().unwrap_or(0);
    }
    assert!(
        reconnects_seen >= 1,
        "at least one survivor re-established its connection via backoff"
    );

    let out = restarted.wait_with_output().expect("restarted node exits");
    assert!(
        out.status.success(),
        "restarted node never caught up: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let v: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(v["data"]["complete"].as_bool(), Some(true));
    let sets = payload_sets(&v, topics);
    assert_eq!(
        sets[0],
        urb_runtime::expected_payloads(n, urb_types::TopicId(0), msgs),
        "restarted peer converged on the full delivery set"
    );
}

/// Crash recovery (DESIGN.md §14): SIGKILL a node running with
/// `--state-dir` mid-run, restart it from its snapshot + journal, and
/// require the recovered process — and the untouched survivors — to
/// converge on the exact delivery sets of an in-process reference run
/// of the same seeded workload.
#[test]
#[ignore = "spawns OS processes on loopback sockets; run via CI cluster-smoke or --ignored"]
fn killed_node_recovers_from_state_dir() {
    let (n, topics, msgs, seed) = (3usize, 1u32, 2usize, 11u64);
    let expect = n * msgs;
    let addrs = reserve_addrs(n);
    let state_dir = std::env::temp_dir().join(format!("urb-cluster-state-{}", std::process::id()));
    std::fs::remove_dir_all(&state_dir).ok();
    let state_flag = state_dir.to_str().unwrap().to_string();

    let survivors: Vec<Child> = (0..2)
        .map(|id| {
            spawn_node(
                id,
                &addrs,
                topics,
                msgs,
                seed,
                expect,
                10_000,
                Stdio::piped(),
            )
        })
        .collect();
    let mut victim = spawn_node_with(
        2,
        &addrs,
        topics,
        msgs,
        seed,
        expect,
        500,
        Stdio::null(),
        &["--state-dir", &state_flag],
    );

    // Give the victim time to broadcast, deliver, journal, and write at
    // least one periodic recovery point (500 ms interval), then kill -9.
    std::thread::sleep(Duration::from_millis(1_300));
    victim.kill().expect("SIGKILL node 2");
    victim.wait().expect("reap node 2");
    assert!(
        state_dir.join("snapshot.bin").exists(),
        "victim persisted a recovery point before dying"
    );

    // Restart from the state dir: the engine restores its snapshot, the
    // journal replay refills the delivered set, and the startup workload
    // skips payloads the recovered set already holds.
    let restarted = spawn_node_with(
        2,
        &addrs,
        topics,
        msgs,
        seed,
        expect,
        500,
        Stdio::piped(),
        &["--state-dir", &state_flag],
    );

    for (id, child) in survivors.into_iter().enumerate() {
        let out = child.wait_with_output().expect("survivor exits");
        assert!(out.status.success(), "survivor {id}: {out:?}");
    }
    let out = restarted.wait_with_output().expect("restarted node exits");
    assert!(
        out.status.success(),
        "recovered node never completed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let v: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(v["data"]["complete"].as_bool(), Some(true));
    let sets = payload_sets(&v, topics);

    // Reference: the same workload through the in-process runtime.
    let reference = urb_runtime::run_reference(
        n,
        urb_core::Algorithm::Majority,
        topics,
        msgs,
        seed,
        Duration::from_secs(30),
    );
    assert_eq!(
        sets[0], reference[0][2],
        "recovered node's delivery set diverged from the reference run"
    );
    assert_eq!(
        sets[0],
        urb_runtime::expected_payloads(n, urb_types::TopicId(0), msgs),
        "recovered node converged on the full delivery set"
    );
    std::fs::remove_dir_all(&state_dir).ok();
}

/// The `urb cluster --local N` launcher end to end: spawns the cluster,
/// aggregates the node reports, and emits a passing verdict in the
/// shared JSON envelope.
#[test]
#[ignore = "spawns OS processes on loopback sockets; run via CI cluster-smoke or --ignored"]
fn cluster_launcher_reports_pass_verdict() {
    let out = urb()
        .args([
            "cluster", "--local", "3", "--topics", "2", "--msgs", "2", "--seed", "42", "--run-ms",
            "30000", "--json",
        ])
        .output()
        .expect("launcher runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let v: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(v["schema_version"].as_u64(), Some(1));
    assert_eq!(v["kind"].as_str(), Some("cluster-report"));
    assert_eq!(v["seed"].as_u64(), Some(42));
    assert_eq!(v["data"]["n"].as_u64(), Some(3));
    assert_eq!(v["data"]["verdict"].as_bool(), Some(true));
    for row in v["data"]["per_topic"].as_array().unwrap() {
        assert_eq!(row["ok"].as_bool(), Some(true));
    }
    for node in v["data"]["nodes"].as_array().unwrap() {
        assert_eq!(node["exit_ok"].as_bool(), Some(true));
        assert_eq!(node["complete"].as_bool(), Some(true));
        // Each node report's lifecycle counters survive aggregation:
        // all 2 static topics stay live, none were retired.
        assert_eq!(node["topics_live"].as_u64(), Some(2));
        assert_eq!(node["topics_reclaimed"].as_u64(), Some(0));
    }
    // …and the envelope rolls them up cluster-wide (3 nodes × 2 topics).
    assert_eq!(v["data"]["topics_live"].as_u64(), Some(6));
    assert_eq!(v["data"]["topics_reclaimed"].as_u64(), Some(0));
}

/// The dynamic topic control plane over real daemons (DESIGN.md §15):
/// `urb topic create` against one node's listen address goes live
/// cluster-wide through the control gossip, and `urb topic retire` sent
/// to the *other* node — proof the create actually gossiped — drains and
/// reclaims the instance on both, which the node reports count.
#[test]
#[ignore = "spawns OS processes on loopback sockets; run via CI cluster-smoke or --ignored"]
fn urb_topic_create_and_retire_drive_running_daemons() {
    let (n, topics, msgs, seed) = (2usize, 1u32, 1usize, 17u64);
    let expect = n * msgs;
    let addrs = reserve_addrs(n);
    // A long linger keeps both daemons serving while the one-shot
    // lifecycle clients run against them.
    let children: Vec<Child> = (0..n)
        .map(|id| {
            spawn_node(
                id,
                &addrs,
                topics,
                msgs,
                seed,
                expect,
                8_000,
                Stdio::piped(),
            )
        })
        .collect();

    // `urb topic create` against node 0, retried until its socket is up.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let out = urb()
            .args([
                "topic", "create", "--addr", &addrs[0], "--topic", "5", "--alg", "majority",
            ])
            .output()
            .expect("topic client runs");
        if out.status.success() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "node 0 never accepted the create: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Give the create a moment to gossip from node 0 to node 1, then
    // retire through node 1 — which only has the topic via the gossip.
    std::thread::sleep(Duration::from_millis(1500));
    let out = urb()
        .args(["topic", "retire", "--addr", &addrs[1], "--topic", "5"])
        .output()
        .expect("topic client runs");
    assert!(
        out.status.success(),
        "retire failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Both daemons finish their linger and report: the configured topic
    // still live, the dynamic one retired, drained and reclaimed.
    for (id, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("node exits");
        assert!(
            out.status.success(),
            "node {id} failed: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let v: serde_json::Value =
            serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
                .expect("node report is valid JSON");
        assert_eq!(v["data"]["complete"].as_bool(), Some(true), "node {id}");
        assert_eq!(
            v["data"]["topics_live"].as_u64(),
            Some(1),
            "node {id}: only the configured topic survives"
        );
        assert_eq!(
            v["data"]["topics_reclaimed"].as_u64(),
            Some(1),
            "node {id}: the retired dynamic topic was reclaimed"
        );
    }
}
