//! Exit-code contract of the `urb` binary, exercised end to end on the
//! real executable (`CARGO_BIN_EXE_urb`).
//!
//! CI gates on these codes: the corpus-replay loop distinguishes a
//! scenario whose `[expect]` verdict failed (exit 1) from an unreadable
//! or malformed spec (exit 2), `check-smoke` relies on `urb check`
//! failing when an expected violation is not found, and the bench gate
//! relies on `--diff` failing on any count-metric divergence. A silent
//! regression here would turn every red gate green, hence this suite.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn urb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_urb"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn run(args: &[&str]) -> Output {
    urb().args(args).output().expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("urb_exit_codes_{}_{name}", std::process::id()))
}

// ------------------------------------------------------------------
// `urb scenario` — verdict failures (1) vs unusable specs (2).

#[test]
fn scenario_pass_is_exit_zero() {
    let spec = repo_root().join("scenarios/clean_smoke.toml");
    let out = run(&["scenario", spec.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenario verdict: PASS"), "{stdout}");
}

#[test]
fn scenario_verdict_failure_is_exit_one() {
    // A healthy run that cannot meet its own expectations: the exit code
    // must be 1 (verdict failure), not 2 (unusable spec), and the reason
    // must be printed — this is what lets the CI corpus loop tell "the
    // protocol regressed" from "the file is broken".
    let path = tmp("verdict_fail.toml");
    std::fs::write(
        &path,
        "name = \"doomed-expectation\"\nn = 3\n[expect]\nmin_deliveries = 999\n",
    )
    .unwrap();
    let out = run(&["scenario", path.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("scenario verdict: FAIL"), "{stderr}");
    assert!(stderr.contains("999"), "names the failed expectation");
    std::fs::remove_file(&path).ok();
}

#[test]
fn scenario_unusable_spec_is_exit_two() {
    let out = run(&["scenario", "/nonexistent/spec.toml"]);
    assert_eq!(code(&out), 2, "missing file: {out:?}");
    let path = tmp("bad_spec.toml");
    std::fs::write(&path, "name = \"bad\"\nn = 3\nwat = 1\n").unwrap();
    let out = run(&["scenario", path.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "malformed spec: {out:?}");
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------------
// `urb check` — exploration verdicts and counterexample replay.

#[test]
fn check_finds_expected_violation_and_replays_it() {
    let spec = repo_root().join("scenarios/theorem2_violation.toml");
    let trace = tmp("theorem2_cx.json");
    let out = run(&[
        "check",
        spec.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("PASS — expected violation found"),
        "{stdout}"
    );
    // The emitted counterexample replays byte-deterministically.
    let out = run(&["check", "--replay", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("reproduced the recorded violation"),
        "{stdout}"
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn check_missed_expected_violation_is_exit_one() {
    // Depth 2 cannot reach the Theorem-2 violation: the check must fail.
    let spec = repo_root().join("scenarios/theorem2_violation.toml");
    let out = run(&["check", spec.to_str().unwrap(), "--depth", "2"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn check_clean_scenario_passes_and_emits_json_envelope() {
    let path = tmp("clean_check.toml");
    std::fs::write(
        &path,
        "name = \"tiny-clean\"\nn = 2\nalgorithm = \"majority\"\n\
         [check]\ndepth = 16\nmax_drops = 1\n",
    )
    .unwrap();
    let out = run(&["check", path.to_str().unwrap(), "--json"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v["kind"], "check-report");
    assert_eq!(v["data"]["passed"], true);
    assert_eq!(v["data"]["scenario"], "tiny-clean");
    assert!(v["data"]["stats"]["states"].as_u64().unwrap() > 0);
    assert!(v["data"]["counterexample"].is_null());
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_unusable_input_is_exit_two() {
    assert_eq!(code(&run(&["check", "/nonexistent.toml"])), 2);
    assert_eq!(code(&run(&["check", "--replay", "/nonexistent.json"])), 2);
    let path = tmp("not_a_cx.json");
    std::fs::write(&path, "{\"hello\": 1}").unwrap();
    assert_eq!(
        code(&run(&["check", "--replay", path.to_str().unwrap()])),
        2
    );
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------------
// `urb check --jobs / --cache` — parallel frontier and persistent
// state cache, exercised end to end on the binary.

/// Drop the fields that legitimately vary with `--jobs`: the requested
/// worker count itself and the wall-clock throughput figure.
fn scrub_volatile(v: &mut serde_json::Value) {
    use serde_json::Value;
    if let Value::Object(top) = v {
        if let Some(Value::Object(data)) = top.get_mut("data") {
            data.remove("jobs");
            if let Some(Value::Object(stats)) = data.get_mut("stats") {
                stats.remove("states_per_sec");
            }
        }
    }
}

#[test]
fn check_jobs_is_deterministic_and_reported_in_the_envelope() {
    let spec = repo_root().join("scenarios/theorem2_violation.toml");
    let report = |jobs: &str| {
        let out = run(&["check", spec.to_str().unwrap(), "--jobs", jobs, "--json"]);
        assert_eq!(code(&out), 0, "{out:?}");
        let v: serde_json::Value =
            serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
        v
    };
    let mut serial = report("1");
    let mut wide = report("4");
    assert_eq!(serial["data"]["jobs"], 1u64);
    assert_eq!(wide["data"]["jobs"], 4u64);
    // Everything else must match, field for field — including the witness.
    scrub_volatile(&mut serial);
    scrub_volatile(&mut wide);
    assert_eq!(serial, wide, "exploration must not depend on --jobs");
}

#[test]
fn check_jobs_zero_is_exit_two() {
    let spec = repo_root().join("scenarios/theorem2_violation.toml");
    let out = run(&["check", spec.to_str().unwrap(), "--jobs", "0"]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn check_cache_cold_then_warm_shrinks_the_search() {
    let spec = repo_root().join("scenarios/two_topics_smoke.toml");
    let cache = tmp("warm.cache");
    std::fs::remove_file(&cache).ok();
    let report = || {
        let out = run(&[
            "check",
            spec.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
            "--json",
        ]);
        assert_eq!(code(&out), 0, "{out:?}");
        let v: serde_json::Value =
            serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
        v
    };
    let cold = report();
    assert_eq!(cold["data"]["cache"]["hits"], 0u64, "cold start");
    assert!(
        cold["data"]["cache"]["persisted"].as_u64().unwrap() > 0,
        "completed clean run persists its table: {cold:?}"
    );
    let warm = report();
    assert!(
        warm["data"]["cache"]["hits"].as_u64().unwrap() > 0,
        "warm rerun answers from the cache: {warm:?}"
    );
    assert!(warm["data"]["cache"]["hit_rate"].as_f64().unwrap() > 0.0);
    let (cold_states, warm_states) = (
        cold["data"]["stats"]["states"].as_u64().unwrap(),
        warm["data"]["stats"]["states"].as_u64().unwrap(),
    );
    assert!(
        warm_states < cold_states,
        "warm rerun explores strictly fewer new states: {warm_states} vs {cold_states}"
    );
    std::fs::remove_file(&cache).ok();
}

#[test]
fn check_corrupt_or_version_mismatched_cache_is_exit_two() {
    let spec = repo_root().join("scenarios/two_topics_smoke.toml");
    let garbage = tmp("garbage.cache");
    std::fs::write(&garbage, "not a cache header\n").unwrap();
    let out = run(&[
        "check",
        spec.to_str().unwrap(),
        "--cache",
        garbage.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "corrupt cache: {out:?}");
    let future = tmp("future.cache");
    std::fs::write(
        &future,
        "{\"schema_version\":99,\"kind\":\"check-cache\",\"scenario\":\"x\",\
         \"seed\":0,\"mode\":\"dfs\",\"spec_digest\":\"0\"}\n",
    )
    .unwrap();
    let out = run(&[
        "check",
        spec.to_str().unwrap(),
        "--cache",
        future.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "version mismatch: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema"), "{stderr}");
    for p in [garbage, future] {
        std::fs::remove_file(&p).ok();
    }
}

// ------------------------------------------------------------------
// `urb theorem2` — the impossibility demo wears the shared envelope.

#[test]
fn theorem2_emits_the_shared_json_envelope_and_exit_zero() {
    let out = run(&["theorem2", "--n", "6", "--seed", "42", "--json"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v["schema_version"], 1u64);
    assert_eq!(v["kind"], "theorem2-report");
    assert_eq!(v["seed"], 42u64);
    assert!(v["git_rev"].as_str().is_some());
    assert_eq!(v["data"]["n"], 6u64);
    assert_eq!(v["data"]["demonstrated"], true);
    assert_eq!(v["data"]["arm1_agreement_ok"], false);
    assert_eq!(v["data"]["arm2_blocked"], true);
}

#[test]
fn theorem2_text_mode_still_works() {
    let out = run(&["theorem2", "--n", "6"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("both horns observed"), "{stdout}");
}

// ------------------------------------------------------------------
// `urb run --topics` — per-topic verdicts in the envelope.

#[test]
fn run_topics_flag_reports_per_topic_verdict_rows() {
    let out = run(&[
        "run", "--n", "3", "--topics", "2", "--msgs", "2", "--loss", "0", "--json",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v["kind"], "run-summary");
    let rows = v["data"]["per_topic"].as_array().unwrap();
    assert_eq!(rows.len(), 2);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row["topic"], i as u64);
        assert_eq!(row["agreement_ok"], true);
        assert_eq!(row["deliveries"], 3u64, "1 msg × 3 procs per topic");
    }
}

// ------------------------------------------------------------------
// `urb bench --diff` — the perf-regression gate.

/// A minimal schema-valid trajectory file.
fn trajectory_json(transmissions: u64) -> String {
    format!(
        "{{\n  \"schema_version\": 1,\n  \"kind\": \"bench-trajectory\",\n  \"seed\": 1,\n  \
         \"git_rev\": \"test\",\n  \"data\": {{\n    \"seeds_per_cell\": 2,\n    \"points\": [\n      \
         {{\"id\": \"e1\", \"runs\": 4, \"urb_ok\": 4, \"deliveries\": 40, \
         \"transmissions\": {transmissions}, \"dropped\": 3, \"latency_p50\": 9, \
         \"latency_p90\": 12, \"latency_p99\": 20, \"mean_end_time\": 100, \
         \"throughput_per_ktick\": 1.5, \"pool_hit_rate\": 0.99, \"allocs_per_run\": null, \
         \"trace_fingerprint\": 7}}\n    ]\n  }}\n}}"
    )
}

#[test]
fn bench_diff_gates_on_count_metrics() {
    let a = tmp("traj_a.json");
    let b = tmp("traj_b.json");
    let c = tmp("traj_c.json");
    std::fs::write(&a, trajectory_json(1000)).unwrap();
    std::fs::write(&b, trajectory_json(1000)).unwrap();
    std::fs::write(&c, trajectory_json(1001)).unwrap();
    let out = run(&["bench", "--diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "identical files pass: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("bench diff: OK"));
    let out = run(&["bench", "--diff", a.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "count divergence fails: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("transmissions diverged"));
    let out = run(&["bench", "--diff", a.to_str().unwrap(), "/nonexistent.json"]);
    assert_eq!(code(&out), 2, "unreadable input: {out:?}");
    for p in [a, b, c] {
        std::fs::remove_file(&p).ok();
    }
}

// ------------------------------------------------------------------
// `urb node` / `urb cluster` — the socket plane's exit-code contract
// (DESIGN.md §13). These bind only loopback listeners in this process
// or run a single self-contained node, so they stay un-ignored; the
// multi-process suite lives in tests/cluster.rs behind `--ignored`.

#[test]
fn node_bad_config_is_exit_two() {
    // Parse-level config errors.
    assert_eq!(code(&run(&["node"])), 2, "--id required");
    assert_eq!(code(&run(&["node", "--id", "0"])), 2, "--addrs required");
    assert_eq!(
        code(&run(&[
            "node",
            "--id",
            "5",
            "--addrs",
            "127.0.0.1:1,127.0.0.1:2"
        ])),
        2,
        "id out of range"
    );
    // Unresolvable listen address: rejected at bind time, still exit 2.
    let out = run(&["node", "--id", "0", "--addrs", "not-an-address"]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot listen"), "{stderr}");
}

#[test]
fn node_port_in_use_is_exit_two() {
    // Occupy a loopback port in this process, then point a node at it.
    let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind holder");
    let addr = holder.local_addr().unwrap().to_string();
    let out = run(&["node", "--id", "0", "--addrs", &addr]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot listen"), "{stderr}");
    drop(holder);
}

#[test]
fn node_clean_run_is_exit_zero_with_envelope() {
    // A single-node cluster delivers its own broadcasts immediately:
    // expectation met, exit 0, report in the shared envelope.
    let out = run(&[
        "node",
        "--id",
        "0",
        "--addrs",
        "127.0.0.1:0",
        "--msgs",
        "2",
        "--seed",
        "3",
        "--expect",
        "2",
        "--run-ms",
        "10000",
        "--linger-ms",
        "50",
        "--json",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v["schema_version"], 1u64);
    assert_eq!(v["kind"], "node-report");
    assert_eq!(v["seed"], 3u64);
    assert_eq!(v["data"]["complete"], true);
    assert_eq!(
        v["data"]["per_topic"][0]["deliveries"], 2u64,
        "both own broadcasts delivered"
    );
}

#[test]
fn node_unmet_expectation_is_exit_one() {
    // A lone node can never see payloads from peers that don't exist:
    // the deadline passes with the expectation unmet — verdict failure.
    let out = run(&[
        "node",
        "--id",
        "0",
        "--addrs",
        "127.0.0.1:0",
        "--msgs",
        "1",
        "--expect",
        "5",
        "--run-ms",
        "300",
        "--linger-ms",
        "50",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not met"), "{stderr}");
}

#[test]
fn node_corrupt_state_dir_is_exit_two() {
    // A snapshot that fails its envelope checks must refuse to start —
    // unusable input, never a silent fresh start over salvageable state.
    let dir = tmp("corrupt_state");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("snapshot.bin"), b"not a snapshot").unwrap();
    let out = run(&[
        "node",
        "--id",
        "0",
        "--addrs",
        "127.0.0.1:0",
        "--run-ms",
        "200",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot.bin"), "{stderr}");

    // A journal ending mid-record (length prefix promises more bytes
    // than the file holds) is equally fatal, and typed as such.
    std::fs::remove_file(dir.join("snapshot.bin")).unwrap();
    std::fs::write(dir.join("journal.bin"), [64u8, 0, 0, 0, 1, 2, 3]).unwrap();
    let out = run(&[
        "node",
        "--id",
        "0",
        "--addrs",
        "127.0.0.1:0",
        "--run-ms",
        "200",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated record"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn node_state_dir_survives_a_clean_restart() {
    // A single-node run with --state-dir exits 0; rerunning against the
    // same directory recovers (engine snapshot + delivered sets) instead
    // of starting over, and reports the same completed delivery count.
    let dir = tmp("state_roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    let node = |label: &str| {
        let out = run(&[
            "node",
            "--id",
            "0",
            "--addrs",
            "127.0.0.1:0",
            "--msgs",
            "2",
            "--seed",
            "3",
            "--expect",
            "2",
            "--run-ms",
            "10000",
            "--linger-ms",
            "50",
            "--state-dir",
            dir.to_str().unwrap(),
            "--json",
        ]);
        assert_eq!(code(&out), 0, "{label}: {out:?}");
        let v: serde_json::Value =
            serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
        assert_eq!(v["data"]["complete"], true, "{label}");
        assert_eq!(v["data"]["per_topic"][0]["deliveries"], 2u64, "{label}");
        v
    };
    node("first run");
    assert!(dir.join("snapshot.bin").exists(), "exit snapshot written");
    node("recovered run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_bad_config_is_exit_two() {
    assert_eq!(code(&run(&["cluster"])), 2, "--local required");
    assert_eq!(code(&run(&["cluster", "--local", "0"])), 2);
    assert_eq!(code(&run(&["cluster", "--local", "3", "--topics", "0"])), 2);
}

#[test]
fn usage_errors_are_exit_two() {
    assert_eq!(code(&run(&["frobnicate"])), 2);
    assert_eq!(code(&run(&["check"])), 2);
    assert_eq!(code(&run(&["bench", "--diff", "one.json"])), 2);
}

#[test]
fn bench_open_loop_ids_and_grid_flags() {
    // The open-loop experiments are addressable ids; past the new top
    // of the range is still a usage error.
    assert_eq!(code(&run(&["bench", "--experiments", "e24"])), 2);
    // Malformed open-loop grid flags are usage errors, not collections.
    assert_eq!(code(&run(&["bench", "--rates", "0"])), 2, "zero rate");
    assert_eq!(code(&run(&["bench", "--rates", "abc"])), 2, "non-numeric");
    assert_eq!(code(&run(&["bench", "--rates", ","])), 2, "empty list");
    assert_eq!(code(&run(&["bench", "--load-topics", "0,4"])), 2);
    assert_eq!(code(&run(&["bench", "--load-topics"])), 2, "missing value");
    // e22 + e23 collect on a tiny override grid and the resulting
    // trajectory is schema-valid.
    let out_path = tmp("open_loop_traj.json");
    let out = run(&[
        "bench",
        "--experiments",
        "e22,e23",
        "--seeds",
        "1",
        "--load-topics",
        "2",
        "--rates",
        "700",
        "--json",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let out = run(&["bench", "--validate", out_path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn committed_baselines_diff_cleanly() {
    // The exact invocations the CI gate runs: both committed baselines
    // must be schema-valid, self-identical, and — crucially — agree with
    // each other on every overlapping grid point (the topic plane must
    // not have disturbed a single pre-topic number).
    let pr3 = repo_root().join("BENCH_PR3.json");
    let pr5 = repo_root().join("BENCH_PR5.json");
    let (p3, p5) = (pr3.to_str().unwrap(), pr5.to_str().unwrap());
    for b in [p3, p5] {
        let out = run(&["bench", "--validate", b]);
        assert_eq!(code(&out), 0, "{out:?}");
        let out = run(&["bench", "--diff", b, b]);
        assert_eq!(code(&out), 0, "{out:?}");
    }
    let out = run(&["bench", "--diff", p3, p5]);
    assert_eq!(
        code(&out),
        0,
        "PR3 ↔ PR5 overlap must be identical: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("17 overlapping points identical"),
        "{stdout}"
    );
    assert!(stdout.contains("e18: only in new file"), "{stdout}");
}
