//! Deterministic pseudo-random number generation.
//!
//! Every randomized decision in the workspace — tag draws, channel loss,
//! delays, crash times, label assignment — flows through the
//! [`RandomSource`] trait. The simulator seeds one generator per component
//! (network, each process, each adversary) by *splitting* a root seed, so a
//! whole run is a pure function of `(configuration, seed)` and traces are
//! bit-reproducible across platforms and releases. This is why the crate
//! ships its own small PRNGs instead of depending on `rand`'s generators
//! (whose streams may change across versions).
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer; trivially seedable,
//!   used for seeding and for cheap per-component streams.
//! * [`Xoshiro256`] — xoshiro256++ by Blackman & Vigna; the workhorse
//!   generator for simulation streams (channel loss, delays).
//!
//! Neither is cryptographic; the paper only needs tags to be *unique with
//! overwhelming probability*, which 128-bit draws from either provide.

use serde::{Deserialize, Serialize};

/// Source of uniformly distributed random words.
///
/// Object-safe so that protocol code can hold `&mut dyn RandomSource`
/// without being generic over the generator.
pub trait RandomSource {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 128-bit word.
    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire-style widening multiplication with rejection, so the
    /// result is exactly uniform.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening-multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa: convert to [0,1) and compare.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 generator (Steele, Lea, Flood — "Fast splittable pseudorandom
/// number generators", OOPSLA 2014).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state word. Together with
    /// [`SplitMix64::from_state`] this lets a snapshot capture and resume
    /// the stream exactly where it stopped (DESIGN.md §14).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact state captured by
    /// [`SplitMix64::state`]. Unlike [`SplitMix64::new`], no mixing or
    /// burn-in happens: the next draw continues the original stream.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Derives an independent child seed stream for component `index`.
    ///
    /// Splitting is position-based (not draw-based) so adding components to a
    /// simulation does not perturb the streams of existing ones.
    pub fn split(&self, index: u64) -> SplitMix64 {
        let mut mixer = SplitMix64::new(self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one output so nearby indices decorrelate.
        let _ = mixer.next_u64();
        mixer
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ generator (Blackman & Vigna, 2019).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding a 64-bit seed through SplitMix64, as
    /// the xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one invalid state; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Xoshiro256 { s: [1, 2, 3, 4] };
        }
        Xoshiro256 { s }
    }

    /// Derives an independent child generator for component `index`.
    pub fn split(&self, index: u64) -> Xoshiro256 {
        Xoshiro256::new(
            self.s[0] ^ self.s[1].rotate_left(17) ^ index.wrapping_mul(0xD605_BBB5_8C8A_BC2D),
        )
    }
}

impl RandomSource for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 C implementation.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(first, g2.next_u64(), "determinism");
        // Distinct seeds produce distinct streams (overwhelming probability).
        let mut g3 = SplitMix64::new(1234568);
        assert_ne!(first, g3.next_u64());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ_from_parent_and_each_other() {
        let root = SplitMix64::new(42);
        let mut c0 = root.split(0);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let (a, b, c) = (c0.next_u64(), c1.next_u64(), c2.next_u64());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn split_is_position_stable() {
        let root = Xoshiro256::new(7);
        let mut x = root.split(5);
        let mut y = root.split(5);
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut g = Xoshiro256::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut g = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!g.gen_bool(0.0));
            assert!(g.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_matches_probability() {
        let mut g = Xoshiro256::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut g = Xoshiro256::new(13);
        for _ in 0..10_000 {
            let v = g.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_u128_combines_two_words() {
        let mut a = SplitMix64::new(21);
        let mut b = SplitMix64::new(21);
        let hi = b.next_u64() as u128;
        let lo = b.next_u64() as u128;
        assert_eq!(a.next_u128(), (hi << 64) | lo);
    }
}
