//! Schema-versioned binary snapshots of protocol state (DESIGN.md §14).
//!
//! The memory plane persists engine state in two forms: a **snapshot** (a
//! full serialization of a `TopicEngine`, written atomically) and a
//! **journal** (an append-only log of deliveries since the last snapshot,
//! kept by `urb-runtime`). Both use the primitives here: a length-checked
//! little-endian writer/reader pair and a framed envelope carrying a magic,
//! a schema version and an FNV-1a checksum, so a torn, truncated or
//! bit-flipped file is rejected with a typed [`SnapshotError`] instead of
//! being deserialized into garbage state.
//!
//! The encoding is hand-rolled for the same reason the wire codec is
//! (`wire` module docs): byte-determinism. Two engines with equal state
//! serialize to identical bytes on every platform, which is what lets the
//! round-trip tests assert `fingerprint()` equality after
//! serialize → truncate → restore.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic prefix of every snapshot envelope (`b"URBS"`).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"URBS";

/// Current snapshot schema version. Bump on any layout change; readers
/// reject other versions rather than guessing.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot (or journal record) could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The schema version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u32,
    },
    /// The input ended before the declared content did.
    Truncated {
        /// Byte offset at which the reader ran out of input.
        offset: usize,
    },
    /// The FNV-1a checksum over the body does not match the trailer.
    Checksum {
        /// Checksum recorded in the envelope trailer.
        expected: u64,
        /// Checksum recomputed over the body actually read.
        found: u64,
    },
    /// The body decoded, but its contents are inconsistent (wrong
    /// algorithm, wrong topic count, an impossible length, …).
    Malformed(String),
    /// Bytes remained after the declared content — the file was appended
    /// to or spliced, neither of which a snapshot permits.
    TrailingBytes {
        /// Number of unconsumed trailing bytes.
        extra: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot schema: bad magic (not a snapshot)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot schema: unsupported version {found} (expected {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
            SnapshotError::Malformed(why) => write!(f, "snapshot malformed: {why}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(
                    f,
                    "snapshot has {extra} trailing bytes after declared content"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte slice — the same fold the engine fingerprint uses,
/// cheap and endianness-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Little-endian append-only writer for snapshot bodies.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed (`u64`) byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// The body written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the raw body (no envelope).
    pub fn into_body(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the writer and wraps the body in the snapshot envelope:
    /// magic, version, body length, body, FNV-1a trailer.
    pub fn into_envelope(self) -> Vec<u8> {
        seal(&self.buf)
    }
}

/// Wraps a body in the snapshot envelope (see [`SnapshotWriter::into_envelope`]).
pub fn seal(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv1a(body).to_le_bytes());
    out
}

/// Validates a snapshot envelope and returns the checked body.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 4 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let body_end = 16usize.checked_add(len).ok_or(SnapshotError::Malformed(
        "declared body length overflows".to_string(),
    ))?;
    let total = body_end.checked_add(8).ok_or(SnapshotError::Malformed(
        "declared body length overflows".to_string(),
    ))?;
    if bytes.len() < total {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let body = &bytes[16..body_end];
    let expected = u64::from_le_bytes(bytes[body_end..total].try_into().expect("8 bytes"));
    let found = fnv1a(body);
    if expected != found {
        return Err(SnapshotError::Checksum { expected, found });
    }
    Ok(body)
}

/// Little-endian reader over a snapshot body, tracking its offset so
/// truncation errors name where the input ran out.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over a raw body (already unsealed).
    pub fn new(body: &'a [u8]) -> Self {
        SnapshotReader { body, pos: 0 }
    }

    /// Current byte offset into the body.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every body byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.body.len()
    }

    /// Errors unless the body has been fully consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes {
                extra: self.body.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        if end > self.body.len() {
            return Err(SnapshotError::Truncated {
                offset: self.body.len(),
            });
        }
        let out = &self.body[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_u64()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw)
            .map_err(|_| SnapshotError::Malformed("string field is not UTF-8".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF);
        w.put_str("alg2-quiescent");
        w.put_bytes(&[1, 2, 3]);
        w.into_body()
    }

    #[test]
    fn writer_reader_round_trip() {
        let body = sample_body();
        let mut r = SnapshotReader::new(&body);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(
            r.get_u128().unwrap(),
            0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF
        );
        assert_eq!(r.get_str().unwrap(), "alg2-quiescent");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn envelope_round_trip_and_determinism() {
        let sealed_a = seal(&sample_body());
        let sealed_b = seal(&sample_body());
        assert_eq!(sealed_a, sealed_b, "byte-deterministic envelope");
        assert_eq!(unseal(&sealed_a).unwrap(), sample_body().as_slice());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut sealed = seal(&sample_body());
        sealed[0] = b'X';
        assert_eq!(unseal(&sealed), Err(SnapshotError::BadMagic));
        assert_eq!(unseal(b"UR"), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut sealed = seal(&sample_body());
        sealed[4] = 99;
        assert_eq!(
            unseal(&sealed),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let sealed = seal(&sample_body());
        for cut in 4..sealed.len() {
            let err = unseal(&sealed[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_in_body_rejected_by_checksum() {
        let mut sealed = seal(&sample_body());
        let mid = 16 + sample_body().len() / 2;
        sealed[mid] ^= 0x40;
        assert!(matches!(
            unseal(&sealed).unwrap_err(),
            SnapshotError::Checksum { .. }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut sealed = seal(&sample_body());
        sealed.push(0);
        assert_eq!(
            unseal(&sealed),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn reader_truncation_reports_offset() {
        let body = sample_body();
        let mut r = SnapshotReader::new(&body[..2]);
        r.get_u8().unwrap();
        let err = r.get_u32().unwrap_err();
        assert_eq!(err, SnapshotError::Truncated { offset: 2 });
    }

    #[test]
    fn reader_rejects_leftover_bytes() {
        let body = sample_body();
        let mut r = SnapshotReader::new(&body);
        r.get_u8().unwrap();
        assert!(matches!(
            r.finish().unwrap_err(),
            SnapshotError::TrailingBytes { .. }
        ));
    }
}
