//! Application payloads.
//!
//! The paper's `m` is an opaque application message. [`Payload`] wraps
//! [`bytes::Bytes`] so that the many copies a broadcast protocol necessarily
//! makes (outbox, `MSG` set, `ACK` piggyback — see DESIGN.md D1) are
//! reference-counted rather than deep-cloned.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque application message (the paper's `m`).
///
/// Cloning is `O(1)` (atomic refcount bump). Equality/hash are by content,
/// which matches the paper's treatment of `m` as a value.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Payload(Bytes);

impl Payload {
    /// Creates an empty payload.
    pub fn empty() -> Self {
        Payload(Bytes::new())
    }

    /// Wraps existing bytes without copying.
    pub fn from_bytes(bytes: Bytes) -> Self {
        Payload(bytes)
    }

    /// Copies a byte slice into a payload.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Payload(Bytes::copy_from_slice(data))
    }

    /// Creates a payload from a UTF-8 string (copies).
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(s: &str) -> Self {
        Payload(Bytes::copy_from_slice(s.as_bytes()))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Read-only view of the bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// The underlying `Bytes` (cheap clone).
    pub fn bytes(&self) -> Bytes {
        self.0.clone()
    }

    /// Lossy UTF-8 rendering, for examples and logs.
    pub fn as_text(&self) -> String {
        String::from_utf8_lossy(&self.0).into_owned()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() <= 24 {
            if let Ok(s) = std::str::from_utf8(&self.0) {
                return write!(f, "Payload({s:?})");
            }
        }
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload::from_str(s)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Bytes::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let p = Payload::from("hello");
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.as_slice(), b"hello");
    }

    #[test]
    fn equality_is_by_content() {
        let a = Payload::from("x");
        let b = Payload::copy_from_slice(b"x");
        assert_eq!(a, b);
        assert_ne!(a, Payload::from("y"));
    }

    #[test]
    fn empty_payload() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn text_roundtrip() {
        let p = Payload::from("URB says hi");
        assert_eq!(p.as_text(), "URB says hi");
    }

    #[test]
    fn conversions() {
        let v: Payload = vec![1u8, 2, 3].into();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let s: Payload = (&b"ab"[..]).into();
        assert_eq!(s.len(), 2);
    }
}
