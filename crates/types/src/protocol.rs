//! The sans-io protocol interface.
//!
//! Every broadcast algorithm in `urb-core` (Algorithm 1, Algorithm 2 and the
//! baselines) is a deterministic state machine implementing
//! [`AnonProcess`]. A state machine never touches the network, the clock or
//! entropy directly; everything it needs is handed to it through a
//! [`Context`]:
//!
//! * messages it wants to broadcast go into `ctx.outbox` (the paper's
//!   `broadcast_i(...)` primitive — a send to *all* processes, itself
//!   included);
//! * URB-deliveries go into `ctx.deliveries` (the paper's
//!   `URB_deliver_i(m)` upcall);
//! * randomness comes from `ctx.rng` (the paper's `random_i()`);
//! * failure-detector reads come from `ctx.fd` (the paper's read-only
//!   `a_theta_i` / `a_p*_i` variables).
//!
//! The split keeps the algorithms word-for-word comparable to the paper's
//! pseudocode, lets the same code run under the discrete-event simulator and
//! the threaded runtime, and makes protocol steps unit-testable without any
//! I/O scaffolding.

use crate::fd::FdSnapshot;
use crate::ids::Tag;
use crate::payload::Payload;
use crate::rng::RandomSource;
use crate::snapshot::SnapshotError;
use crate::wire::WireMessage;
use serde::{Deserialize, Serialize};

/// One URB-delivery handed to the application layer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delivery {
    /// Tag of the delivered message (unique message identity).
    pub tag: Tag,
    /// The delivered application message `m`.
    pub payload: Payload,
    /// True when the deliverer had *not yet received* the `(MSG, m, tag)`
    /// copy at delivery time — the paper's "fast URB_deliver" case (§III,
    /// Remark), possible because ACKs piggyback the payload (DESIGN.md
    /// D1). Measured by experiment E10.
    pub fast: bool,
}

/// Everything a protocol step may read or emit. See the module docs.
pub struct Context<'a> {
    /// Randomness for `random_i()` draws.
    pub rng: &'a mut dyn RandomSource,
    /// Snapshots of `a_theta_i` / `a_p*_i` taken just before this step.
    pub fd: &'a FdSnapshot,
    /// Messages to broadcast to all processes (including self).
    pub outbox: &'a mut Vec<WireMessage>,
    /// URB-deliveries produced by this step.
    pub deliveries: &'a mut Vec<Delivery>,
}

impl<'a> Context<'a> {
    /// Builds a context over caller-owned buffers.
    pub fn new(
        rng: &'a mut dyn RandomSource,
        fd: &'a FdSnapshot,
        outbox: &'a mut Vec<WireMessage>,
        deliveries: &'a mut Vec<Delivery>,
    ) -> Self {
        Context {
            rng,
            fd,
            outbox,
            deliveries,
        }
    }

    /// The paper's `broadcast_i(msg)` primitive.
    pub fn broadcast(&mut self, msg: WireMessage) {
        self.outbox.push(msg);
    }

    /// The paper's `URB_deliver_i(m)` upcall.
    pub fn deliver(&mut self, tag: Tag, payload: Payload, fast: bool) {
        self.deliveries.push(Delivery { tag, payload, fast });
    }
}

/// Sizes of the per-process protocol state, for the memory experiments (E9)
/// and for quiescence diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessStats {
    /// `|MSG_i|` — messages still being rebroadcast by Task 1.
    pub msg_set: usize,
    /// `|MY_ACK_i|` — own acknowledgment tags.
    pub my_acks: usize,
    /// Total `(tag, tag_ack)` entries across `ALL_ACK_i`.
    pub all_ack_entries: usize,
    /// `|URB_DELIVERED_i|`.
    pub delivered: usize,
    /// Total label-counter entries (Algorithm 2 only; 0 for Algorithm 1).
    pub label_counters: usize,
}

impl ProcessStats {
    /// Total tracked entries — a proxy for resident protocol memory.
    pub fn total(&self) -> usize {
        self.msg_set + self.my_acks + self.all_ack_entries + self.delivered + self.label_counters
    }
}

/// What a forced (over-ceiling) compaction sweep may reclaim beyond the
/// stable prefix (DESIGN.md §14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpillPolicy {
    /// Only entries that already satisfy the stability rule may go; the
    /// grace period is waived under pressure but unstable state is never
    /// touched. Over-ceiling residency is reported, not forced down.
    #[default]
    StableOnly,
    /// Additionally halve the tombstone ring under pressure, trading
    /// duplicate-suppression coverage of very old tags for space.
    Tombstones,
}

/// Configuration of the bounded-memory mode (DESIGN.md §14).
///
/// When a process runs with a `MemoryConfig`, the driver calls
/// [`AnonProcess::compact`] once per tick sweep and the process may drop
/// `MSG`/`MY_ACK`/`ALL_ACK`/`URB_DELIVERED` entries for tags that are
/// *stable* — acknowledged at every correct process per the per-algorithm
/// stability rule — after [`MemoryConfig::grace_ticks`] consecutive stable
/// sweeps. Compacted tags move to a bounded tombstone ring so late copies
/// are ignored instead of re-entering state. Without a `MemoryConfig`
/// (the default everywhere) compaction never runs and behavior is
/// byte-identical to the unbounded engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Consecutive stable tick sweeps a tag must survive before its
    /// entries are reclaimed. Higher values keep state longer but shrug
    /// off transient detector wobble.
    pub grace_ticks: u32,
    /// Conservative mode ("under suspicion"): reset every grace clock
    /// whenever the failure-detector view changes, so compaction only
    /// proceeds through a stretch of detector stability.
    pub conservative: bool,
    /// Capacity of the tombstone ring remembering compacted tags (oldest
    /// evicted first). A late copy of a tombstoned tag is dropped without
    /// being acknowledged or re-entering state.
    pub tombstones: usize,
    /// Soft ceiling on [`ProcessStats::total`]. While residency exceeds
    /// it, compaction waives the grace period for already-stable tags and
    /// applies the [`SpillPolicy`]. `None` = compact on the grace
    /// schedule only.
    pub ceiling: Option<usize>,
    /// What an over-ceiling sweep may reclaim.
    pub spill: SpillPolicy,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            grace_ticks: 2,
            conservative: false,
            tombstones: 4096,
            ceiling: None,
            spill: SpillPolicy::StableOnly,
        }
    }
}

/// What one [`AnonProcess::compact`] sweep reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionReport {
    /// State entries dropped (summed in [`ProcessStats::total`] units).
    pub reclaimed: usize,
    /// Tags moved into the tombstone ring this sweep.
    pub tombstoned: usize,
}

impl CompactionReport {
    /// Merges another sweep's counts into this one.
    pub fn absorb(&mut self, other: CompactionReport) {
        self.reclaimed += other.reclaimed;
        self.tombstoned += other.tombstoned;
    }
}

/// A broadcast protocol instance at one anonymous process.
///
/// Implementations must be deterministic: identical call sequences with
/// identical `Context` inputs must produce identical outputs (the simulator's
/// reproducibility tests rely on it).
pub trait AnonProcess {
    /// The paper's `URB_broadcast_i(m)`: tag `m` and start disseminating it.
    /// Returns the tag assigned to the message.
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag;

    /// The paper's `receive_i(...)` handler for one incoming wire message.
    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>);

    /// One sweep of the paper's Task 1 (the `repeat forever` body). The
    /// driver invokes this periodically (DESIGN.md D7).
    fn on_tick(&mut self, ctx: &mut Context<'_>);

    /// True when this process has nothing left to retransmit — i.e. its
    /// Task 1 sweep would broadcast no messages. Quiescence (Theorem 3) is
    /// "all correct processes quiescent and no messages in flight".
    fn is_quiescent(&self) -> bool;

    /// Current state-size snapshot (experiment E9).
    fn stats(&self) -> ProcessStats;

    /// Short algorithm name, for tables and traces.
    fn algorithm_name(&self) -> &'static str;

    /// Arms the bounded-memory mode (DESIGN.md §14). The default does
    /// nothing: algorithms without a compaction strategy simply keep
    /// their unbounded behavior.
    fn configure_memory(&mut self, _cfg: MemoryConfig) {}

    /// One compaction sweep, called by the driver alongside each tick
    /// sweep when a [`MemoryConfig`] is armed. `fd` is the same snapshot
    /// the tick saw. The default reclaims nothing.
    fn compact(&mut self, _fd: &FdSnapshot) -> CompactionReport {
        CompactionReport::default()
    }

    /// Serializes this process's full protocol state as a deterministic
    /// snapshot body (no envelope), or `None` when the algorithm does not
    /// support snapshotting (the baselines).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously produced by [`AnonProcess::save_state`]
    /// on a freshly instantiated process of the same configuration.
    fn restore_state(&mut self, _body: &[u8]) -> Result<(), SnapshotError> {
        Err(SnapshotError::Malformed(format!(
            "algorithm {:?} does not support snapshot restore",
            self.algorithm_name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn context_buffers_collect_in_order() {
        let mut rng = SplitMix64::new(1);
        let fd = FdSnapshot::none();
        let mut outbox = Vec::new();
        let mut deliveries = Vec::new();
        let mut ctx = Context::new(&mut rng, &fd, &mut outbox, &mut deliveries);
        ctx.broadcast(WireMessage::Msg {
            tag: Tag(1),
            payload: Payload::from("a"),
        });
        ctx.broadcast(WireMessage::Msg {
            tag: Tag(2),
            payload: Payload::from("b"),
        });
        ctx.deliver(Tag(1), Payload::from("a"), false);
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].tag(), Some(Tag(1)));
        assert_eq!(outbox[1].tag(), Some(Tag(2)));
        assert_eq!(deliveries.len(), 1);
        assert!(!deliveries[0].fast);
    }

    #[test]
    fn process_stats_total() {
        let s = ProcessStats {
            msg_set: 1,
            my_acks: 2,
            all_ack_entries: 3,
            delivered: 4,
            label_counters: 5,
        };
        assert_eq!(s.total(), 15);
    }
}
