//! Read-only views of the anonymous failure detectors `AΘ` and `AP*` (§V).
//!
//! Both detector classes expose, at each process, a read-only local variable
//! containing pairs `(label, number)`:
//!
//! * `label` — a temporary anonymous identifier of some process;
//! * `number` — the number of **correct** processes that know that label
//!   (formally `|S(label) ∩ Correct|` once the detector has converged).
//!
//! The protocol layer only ever *reads snapshots* of these variables; how the
//! pairs are produced (oracle or heartbeats) lives in the `urb-fd` crate.
//! Keeping the view type here breaks the dependency cycle between the
//! protocol and detector crates.

use crate::ids::{Label, LabelSet};
use serde::{Deserialize, Serialize};

/// One `(label, number)` pair as output by `AΘ` or `AP*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FdPair {
    /// Temporary anonymous identifier of some process.
    pub label: Label,
    /// Number of correct processes that know `label`
    /// (`|S(label) ∩ Correct|` after convergence).
    pub number: u32,
}

/// A snapshot of one detector variable (`a_theta_i` or `a_p*_i`) at one
/// process at one instant.
///
/// Stored sorted by label so lookups are `O(log n)` and equality is
/// structural.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FdView {
    pairs: Vec<FdPair>,
}

impl FdView {
    /// The empty view (what Algorithm 1 sees — it uses no detector).
    pub fn empty() -> Self {
        FdView { pairs: Vec::new() }
    }

    /// Builds a view from pairs (sorted/deduplicated by label; if a label
    /// appears twice the last `number` wins, which matches "the variable
    /// contains pairs", i.e. at most one pair per label).
    pub fn from_pairs<I: IntoIterator<Item = FdPair>>(pairs: I) -> Self {
        let mut v: Vec<FdPair> = pairs.into_iter().collect();
        v.sort_by_key(|p| p.label);
        v.dedup_by(|later, earlier| {
            if later.label == earlier.label {
                earlier.number = later.number;
                true
            } else {
                false
            }
        });
        FdView { pairs: v }
    }

    /// Number of pairs in the view.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the view holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `number` associated with `label`, if present.
    pub fn number_of(&self, label: Label) -> Option<u32> {
        self.pairs
            .binary_search_by_key(&label, |p| p.label)
            .ok()
            .map(|i| self.pairs[i].number)
    }

    /// True when `label` appears in the view.
    pub fn contains_label(&self, label: Label) -> bool {
        self.number_of(label).is_some()
    }

    /// Iterates the pairs in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = FdPair> + '_ {
        self.pairs.iter().copied()
    }

    /// The label set of the view: `{label | (label, −) ∈ view}`.
    ///
    /// This is exactly what Algorithm 2 attaches to its ACKs (lines 14/19)
    /// and compares against in the quiescence condition (line 55).
    pub fn labels(&self) -> LabelSet {
        LabelSet::from_iter(self.pairs.iter().map(|p| p.label))
    }
}

impl FromIterator<FdPair> for FdView {
    fn from_iter<I: IntoIterator<Item = FdPair>>(iter: I) -> Self {
        FdView::from_pairs(iter)
    }
}

/// The pair of detector snapshots a protocol step may consult.
///
/// Algorithm 1 receives two empty views; Algorithm 2 receives live `AΘ` and
/// `AP*` snapshots. Snapshots are taken by the driver immediately before
/// each protocol step, which models the paper's "read-only local variable"
/// semantics (reads are instantaneous and never block).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdSnapshot {
    /// Current `a_theta_i` output (class `AΘ`).
    pub a_theta: FdView,
    /// Current `a_p*_i` output (class `AP*`).
    pub a_p_star: FdView,
}

impl FdSnapshot {
    /// Snapshot with both views empty (no detector — Algorithm 1's world).
    pub fn none() -> Self {
        FdSnapshot {
            a_theta: FdView::empty(),
            a_p_star: FdView::empty(),
        }
    }

    /// Convenience constructor.
    pub fn new(a_theta: FdView, a_p_star: FdView) -> Self {
        FdSnapshot { a_theta, a_p_star }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: u64, n: u32) -> FdPair {
        FdPair {
            label: Label(l),
            number: n,
        }
    }

    #[test]
    fn from_pairs_sorts_and_dedups_keeping_last() {
        let v = FdView::from_pairs([pair(5, 1), pair(3, 2), pair(5, 9)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.number_of(Label(5)), Some(9), "last write wins");
        assert_eq!(v.number_of(Label(3)), Some(2));
    }

    #[test]
    fn lookup_missing_label() {
        let v = FdView::from_pairs([pair(1, 1)]);
        assert_eq!(v.number_of(Label(2)), None);
        assert!(!v.contains_label(Label(2)));
        assert!(v.contains_label(Label(1)));
    }

    #[test]
    fn labels_projection() {
        let v = FdView::from_pairs([pair(8, 2), pair(2, 2)]);
        let ls = v.labels();
        assert_eq!(ls.len(), 2);
        assert!(ls.contains(Label(2)));
        assert!(ls.contains(Label(8)));
    }

    #[test]
    fn empty_view_and_snapshot() {
        let s = FdSnapshot::none();
        assert!(s.a_theta.is_empty());
        assert!(s.a_p_star.is_empty());
        assert!(s.a_theta.labels().is_empty());
    }

    #[test]
    fn views_compare_structurally() {
        let a = FdView::from_pairs([pair(1, 3), pair(2, 3)]);
        let b = FdView::from_pairs([pair(2, 3), pair(1, 3)]);
        assert_eq!(a, b);
    }
}
