//! # `urb-types`
//!
//! Foundation crate of the `anon-urb` workspace — the Rust reproduction of
//! Tang, Larrea, Arévalo and Jiménez, *"Implementing Uniform Reliable
//! Broadcast in Anonymous Distributed Systems with Fair Lossy Channels"*
//! (IPPS 2015).
//!
//! This crate defines everything the protocol layer, the failure detectors,
//! the simulator and the threaded runtime need to agree on:
//!
//! * [`ids`] — the random identifiers of the paper: [`ids::Tag`] (one per
//!   URB-broadcast message), [`ids::TagAck`] (one per acknowledgment, i.e.
//!   the anonymous stand-in for a process identity) and [`ids::Label`]
//!   (the temporary process identifier exposed by the anonymous failure
//!   detectors `AΘ` and `AP*`).
//! * [`payload`] — cheaply clonable application payloads.
//! * [`wire`] — the wire messages `MSG`, `ACK` and `HEARTBEAT`, with a
//!   compact hand-rolled binary codec (plus `serde` for trace export).
//! * [`pool`] — recycled frame buffers and message vectors
//!   ([`pool::BufPool`], [`pool::BatchPool`]) for the zero-copy batch
//!   plane (DESIGN.md §10).
//! * [`fd`] — the read-only `(label, number)` views output by `AΘ`/`AP*`.
//! * [`protocol`] — the sans-io [`protocol::AnonProcess`] trait implemented
//!   by every algorithm in `urb-core`, plus the [`protocol::Context`]
//!   handed to each protocol step.
//! * [`rng`] — a small deterministic PRNG family (SplitMix64 and
//!   xoshiro256++) so that simulations are bit-reproducible.
//!
//! None of the protocol-facing types expose process identities or global
//! time: anonymity is enforced by construction, exactly as in the paper's
//! model (§II).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fd;
pub mod ids;
pub mod payload;
pub mod pool;
pub mod protocol;
pub mod rng;
pub mod snapshot;
pub mod wire;

pub use fd::{FdPair, FdSnapshot, FdView};
pub use ids::{Label, LabelSet, Tag, TagAck, TopicId};
pub use payload::Payload;
pub use pool::{BatchPool, BufPool, MuxPool, PoolStats, PooledBuf, VecPool};
pub use protocol::{
    AnonProcess, CompactionReport, Context, Delivery, MemoryConfig, ProcessStats, SpillPolicy,
};
pub use rng::{RandomSource, SplitMix64, Xoshiro256};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use wire::{
    encode_frame_into, encode_mux_frame_into, encode_mux_frame_with_controls_into, Batch,
    CodecError, MuxBatch, TopicControl, WireKind, WireMessage,
};
