//! The random identifiers of the paper.
//!
//! The paper (§III) makes anonymity workable by replacing process identities
//! with *randomly drawn* identifiers:
//!
//! * every URB-broadcast message `m` gets a unique random [`Tag`] assigned by
//!   its sender (Algorithm 1/2, line 5);
//! * every process that receives `(MSG, m, tag)` draws a unique random
//!   [`TagAck`] for its acknowledgment of that message (line 14 / 17) —
//!   distinct `tag_ack`s are the anonymous proxy for "distinct processes";
//! * the anonymous failure detectors `AΘ` and `AP*` (§V) expose random
//!   [`Label`]s as *temporary* process identifiers whose mapping to processes
//!   is unknown to every process, including the labelled one.
//!
//! All three are plain newtypes over wide random integers. The paper assumes
//! tags are unique; with 128-bit tags the collision probability over any
//! realistic run is negligible (≈ `k²/2¹²⁹` for `k` draws), and the
//! simulator's debug assertions additionally detect collisions outright.

use crate::rng::RandomSource;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one URB *instance* (a "topic"): an independent broadcast
/// group multiplexed over the shared channel mesh.
///
/// The paper specifies a single per-instance state machine; a production
/// deployment runs **many** concurrent instances — one per topic, channel
/// or tenant — over the same links. A `TopicId` names one such instance.
/// Unlike [`Tag`]/[`TagAck`]/[`Label`] it is *not* random: topics are
/// small dense indices (`0 .. topic_count`) assigned by configuration,
/// because every layer keys per-topic state by it (protocol-instance
/// maps, router lanes, per-topic verdicts). Topic `0` is the implicit
/// default everywhere, which keeps every single-topic artifact
/// byte-identical to the pre-topic system (DESIGN.md §12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The default topic every single-instance deployment runs on.
    pub const ZERO: TopicId = TopicId(0);

    /// Mixes this topic into a per-message identity hash. Topic `0`
    /// contributes nothing, so single-topic retransmission keys (the
    /// fair-lossy bookkeeping unit) are bit-identical to the pre-topic
    /// system; distinct topics decorrelate otherwise-equal keys.
    pub fn mix(self, key: u64) -> u64 {
        key ^ (self.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl fmt::Debug for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Topic({})", self.0)
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Unique random identifier of a URB-broadcast message (the paper's `tag`).
///
/// Drawn by the broadcasting process in `URB_broadcast` (Algorithm 1/2,
/// line 5). The pair `(m, tag)` of the paper is keyed by `tag` alone here —
/// see DESIGN.md D2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(pub u128);

/// Unique random identifier of one process's acknowledgment of one message
/// (the paper's `tag_ack`).
///
/// A process draws exactly one `tag_ack` per `(m, tag)` it ever acknowledges
/// and re-uses it verbatim on retransmissions (the `MY_ACK` set enforces
/// this), so counting *distinct* `TagAck`s for a tag counts distinct
/// processes that received the message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TagAck(pub u128);

/// Temporary anonymous process identifier exposed by `AΘ` / `AP*` (§V).
///
/// Labels are drawn by the failure-detector layer; no process (not even the
/// labelled one) knows the label↔process mapping, which preserves anonymity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(pub u64);

impl Tag {
    /// Draws a fresh random tag (Algorithm 1/2, line 5: `tag ← random()`).
    pub fn random(rng: &mut dyn RandomSource) -> Self {
        Tag(rng.next_u128())
    }
}

impl TagAck {
    /// Draws a fresh random ack tag (line 14/17: `tag_ack ← random()`).
    pub fn random(rng: &mut dyn RandomSource) -> Self {
        TagAck(rng.next_u128())
    }
}

impl Label {
    /// Draws a fresh random label (used by the failure-detector layer).
    pub fn random(rng: &mut dyn RandomSource) -> Self {
        Label(rng.next_u64())
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag({:08x})", (self.0 >> 96) as u32)
    }
}

impl fmt::Debug for TagAck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagAck({:08x})", (self.0 >> 96) as u32)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:08x})", (self.0 >> 32) as u32)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", (self.0 >> 32) as u32)
    }
}

/// A small sorted set of [`Label`]s, as attached to Algorithm 2's `ACK`
/// messages (`labels_i ← {label | (label, −) ∈ a_theta_i}`, lines 14/19).
///
/// Kept sorted and deduplicated so that set operations are `O(n)` merges and
/// equality is structural. Label sets are tiny (≤ number of processes), so a
/// sorted `Vec` beats hash sets on every path the protocol exercises.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LabelSet(Vec<Label>);

impl LabelSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LabelSet(Vec::new())
    }

    /// Builds a set from arbitrary (possibly unsorted / duplicated) labels.
    #[allow(clippy::should_implement_trait)] // also impls FromIterator below
    pub fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        let mut v: Vec<Label> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        LabelSet(v)
    }

    /// Number of labels in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set has no labels.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search over the sorted backing vector).
    pub fn contains(&self, label: Label) -> bool {
        self.0.binary_search(&label).is_ok()
    }

    /// Inserts a label; returns `true` if it was not already present.
    pub fn insert(&mut self, label: Label) -> bool {
        match self.0.binary_search(&label) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, label);
                true
            }
        }
    }

    /// Removes a label; returns `true` if it was present.
    pub fn remove(&mut self, label: Label) -> bool {
        match self.0.binary_search(&label) {
            Ok(pos) => {
                self.0.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates the labels in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.0.iter().copied()
    }

    /// Labels present in `self` but not in `other` (ascending order).
    pub fn difference<'a>(&'a self, other: &'a LabelSet) -> impl Iterator<Item = Label> + 'a {
        self.0.iter().copied().filter(move |l| !other.contains(*l))
    }

    /// True when every label of `self` is in `other`.
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        self.0.iter().all(|l| other.contains(*l))
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &LabelSet) {
        for l in other.iter() {
            self.insert(l);
        }
    }

    /// Read-only view of the sorted backing slice.
    pub fn as_slice(&self) -> &[Label] {
        &self.0
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        LabelSet::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a LabelSet {
    type Item = Label;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Label>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn tags_are_distinct_across_draws() {
        let mut rng = SplitMix64::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(Tag::random(&mut rng)), "tag collision");
        }
    }

    #[test]
    fn tag_ack_and_tag_namespaces_are_independent_types() {
        // The paper remarks one random value may be shared across the MSG and
        // ACK namespaces; the type system keeps them apart regardless.
        let t = Tag(42);
        let a = TagAck(42);
        assert_eq!(t.0, a.0); // same value, different types — compiles, fine.
    }

    #[test]
    fn label_set_insert_remove_contains() {
        let mut s = LabelSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Label(3)));
        assert!(s.insert(Label(1)));
        assert!(s.insert(Label(2)));
        assert!(!s.insert(Label(2)), "duplicate insert must report false");
        assert_eq!(s.len(), 3);
        assert!(s.contains(Label(1)));
        assert!(!s.contains(Label(9)));
        assert!(s.remove(Label(1)));
        assert!(!s.remove(Label(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn label_set_is_sorted_and_deduplicated() {
        let s = LabelSet::from_iter([Label(5), Label(1), Label(5), Label(3)]);
        let v: Vec<Label> = s.iter().collect();
        assert_eq!(v, vec![Label(1), Label(3), Label(5)]);
    }

    #[test]
    fn label_set_difference_and_subset() {
        let a = LabelSet::from_iter([Label(1), Label(2), Label(3)]);
        let b = LabelSet::from_iter([Label(2), Label(3), Label(4)]);
        let d: Vec<Label> = a.difference(&b).collect();
        assert_eq!(d, vec![Label(1)]);
        assert!(!a.is_subset(&b));
        let c = LabelSet::from_iter([Label(2), Label(3)]);
        assert!(c.is_subset(&a));
        assert!(c.is_subset(&b));
    }

    #[test]
    fn label_set_union() {
        let mut a = LabelSet::from_iter([Label(1), Label(2)]);
        let b = LabelSet::from_iter([Label(2), Label(3)]);
        a.union_with(&b);
        let v: Vec<Label> = a.iter().collect();
        assert_eq!(v, vec![Label(1), Label(2), Label(3)]);
    }

    #[test]
    fn topic_zero_mix_is_the_identity() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(TopicId::ZERO.mix(key), key, "topic 0 must not disturb keys");
        }
        let k = 0xCAFE_F00Du64;
        assert_ne!(TopicId(1).mix(k), k);
        assert_ne!(TopicId(1).mix(k), TopicId(2).mix(k));
        assert_eq!(TopicId::default(), TopicId::ZERO);
        assert_eq!(format!("{}", TopicId(3)), "3");
        assert_eq!(format!("{:?}", TopicId(3)), "Topic(3)");
    }

    #[test]
    fn label_set_equality_is_order_insensitive() {
        let a = LabelSet::from_iter([Label(9), Label(4)]);
        let b = LabelSet::from_iter([Label(4), Label(9)]);
        assert_eq!(a, b);
    }
}
