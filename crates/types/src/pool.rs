//! Pooled buffers for the zero-copy batch plane (DESIGN.md §10).
//!
//! The message hot path — engine outbox → wire frame → router/channel →
//! receiver — used to allocate a fresh buffer per frame and a fresh
//! `Vec` per routed sub-batch. The two pools here recycle exactly those
//! allocations:
//!
//! * [`BufPool`] — frame buffers ([`bytes::BytesMut`]) for the
//!   length-prefixed [`Batch`](crate::Batch) encoding. Acquired buffers
//!   are RAII guards ([`PooledBuf`]): dropping one clears it and returns
//!   it to the pool, so a warm pool makes batch encoding allocate
//!   **nothing** per frame (let alone per message).
//! * [`BatchPool`] — message vectors (`Vec<WireMessage>`) for routed
//!   sub-batches. The simulator's transmit path and the engine's
//!   per-frame decode scratch draw from one of these instead of calling
//!   `Vec::new` per delivery event.
//!
//! Both pools are cheaply clonable handles over shared state
//! (`Arc`-backed), so one pool can serve every thread of a runtime
//! cluster; returns from any thread land back in the same free list.
//!
//! ## Lifecycle and ownership rules
//!
//! 1. A pooled object is owned by exactly one party at a time: the pool
//!    (idle, cleared) or the borrower (in use, arbitrary contents).
//! 2. Returning always clears: a recycled buffer is indistinguishable
//!    from a fresh one except for its retained capacity.
//! 3. The pool retains at most `max_retained` idle objects; surplus
//!    returns are dropped (counted in [`PoolStats::discarded`]), which
//!    bounds worst-case memory under load spikes.
//! 4. Losing a pooled object (dropping a [`BatchPool`] vector instead of
//!    calling [`BatchPool::release`]) is safe — it merely forfeits the
//!    recycling; nothing dangles.
//!
//! [`PoolStats`] makes the steady-state claim testable: once a workload
//! is warm, `created` must stop growing while `recycled` keeps counting
//! (asserted by `pool_reaches_steady_state` below and by the sim/runtime
//! integration tests).

use crate::wire::WireMessage;
use bytes::BytesMut;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cumulative counters of one pool. Snapshot via [`BufPool::stats`] /
/// [`BatchPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total acquisitions (`recycled + created`).
    pub acquired: u64,
    /// Acquisitions that had to allocate a fresh object (pool empty).
    pub created: u64,
    /// Acquisitions served from the free list — the zero-allocation path.
    pub recycled: u64,
    /// Objects returned to the free list.
    pub returned: u64,
    /// Returns dropped because the pool was at `max_retained`.
    pub discarded: u64,
}

impl PoolStats {
    /// Fraction of acquisitions served without allocating (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.acquired == 0 {
            0.0
        } else {
            self.recycled as f64 / self.acquired as f64
        }
    }
}

/// Shared interior of a pool of `T`.
struct Shelf<T> {
    idle: Mutex<Vec<T>>,
    max_retained: usize,
    created: AtomicU64,
    recycled: AtomicU64,
    returned: AtomicU64,
    discarded: AtomicU64,
}

impl<T> Shelf<T> {
    fn new(max_retained: usize) -> Self {
        Shelf {
            idle: Mutex::new(Vec::new()),
            max_retained,
            created: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    fn take(&self, fresh: impl FnOnce() -> T) -> T {
        let popped = self.idle.lock().expect("pool lock").pop();
        match popped {
            Some(t) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                fresh()
            }
        }
    }

    fn put(&self, t: T) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < self.max_retained {
            idle.push(t);
            self.returned.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> PoolStats {
        let created = self.created.load(Ordering::Relaxed);
        let recycled = self.recycled.load(Ordering::Relaxed);
        PoolStats {
            acquired: created + recycled,
            created,
            recycled,
            returned: self.returned.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    fn idle_count(&self) -> usize {
        self.idle.lock().expect("pool lock").len()
    }
}

/// Default retention bound used by [`BufPool::default`] and
/// [`BatchPool::default`]: generous enough for one object per node of a
/// large cluster, small enough to bound idle memory.
pub const DEFAULT_MAX_RETAINED: usize = 64;

/// A pool of recycled frame buffers for the wire codec.
///
/// Cloning the handle is cheap and shares the pool. See the module docs
/// for the lifecycle rules.
///
/// ```
/// use urb_types::{Batch, BufPool, Payload, Tag, WireMessage};
///
/// let pool = BufPool::default();
/// let batch: Batch = vec![WireMessage::Msg { tag: Tag(7), payload: Payload::from("m") }]
///     .into_iter()
///     .collect();
/// {
///     let mut frame = pool.acquire();
///     batch.encode_into(&mut frame);
///     assert_eq!(&frame[..], &batch.encode()[..], "same bytes as the legacy path");
/// } // dropping the guard returns the buffer
/// let _second = pool.acquire(); // ← recycled, not allocated
/// assert_eq!(pool.stats().recycled, 1);
/// ```
#[derive(Clone)]
pub struct BufPool {
    shelf: Arc<Shelf<BytesMut>>,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_RETAINED)
    }
}

impl BufPool {
    /// A pool retaining at most `max_retained` idle buffers.
    pub fn new(max_retained: usize) -> Self {
        BufPool {
            shelf: Arc::new(Shelf::new(max_retained)),
        }
    }

    /// Acquires an empty buffer (recycled when possible). The returned
    /// guard dereferences to [`BytesMut`] and returns the buffer to the
    /// pool when dropped.
    pub fn acquire(&self) -> PooledBuf {
        PooledBuf {
            buf: Some(self.shelf.take(BytesMut::new)),
            pool: self.clone(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.shelf.stats()
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.shelf.idle_count()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("idle", &self.idle())
            .field("stats", &self.stats())
            .finish()
    }
}

/// RAII guard over a pooled frame buffer: dereferences to [`BytesMut`];
/// dropping it clears the buffer (retaining capacity) and returns it to
/// the [`BufPool`] it came from. Safe to move across threads — the
/// return lands in the shared pool regardless of where the drop happens.
pub struct PooledBuf {
    buf: Option<BytesMut>,
    pool: BufPool,
}

impl Deref for PooledBuf {
    type Target = BytesMut;
    fn deref(&self) -> &BytesMut {
        self.buf.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut BytesMut {
        self.buf.as_mut().expect("present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(mut buf) = self.buf.take() {
            buf.clear();
            self.pool.shelf.put(buf);
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.len())
            .finish()
    }
}

/// A pool of recycled vectors of `T` for routed sub-batches.
///
/// Unlike [`BufPool`] this hands out plain `Vec<T>` values (they
/// typically move *into* a [`Batch`](crate::Batch) or an event and come
/// back much later via [`VecPool::release`]), so recycling is explicit
/// rather than RAII; dropping a vector instead of releasing it is safe
/// and merely forfeits the reuse.
///
/// Two instantiations cover the message plane: [`BatchPool`]
/// (`Vec<WireMessage>` — single-instance sub-batches) and [`MuxPool`]
/// (`Vec<(TopicId, WireMessage)>` — topic-tagged entries of the
/// multiplexed frame plane, DESIGN.md §12).
pub struct VecPool<T> {
    shelf: Arc<Shelf<Vec<T>>>,
}

// Derived `Clone` would demand `T: Clone`; the handle only clones the Arc.
impl<T> Clone for VecPool<T> {
    fn clone(&self) -> Self {
        VecPool {
            shelf: Arc::clone(&self.shelf),
        }
    }
}

/// Recycled `Vec<WireMessage>` sub-batch vectors (the single-instance
/// batch plane).
pub type BatchPool = VecPool<WireMessage>;

/// Recycled `Vec<(TopicId, WireMessage)>` entry vectors (the multiplexed
/// topic plane).
pub type MuxPool = VecPool<(crate::ids::TopicId, WireMessage)>;

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool::new(DEFAULT_MAX_RETAINED)
    }
}

impl<T> VecPool<T> {
    /// A pool retaining at most `max_retained` idle vectors.
    pub fn new(max_retained: usize) -> Self {
        VecPool {
            shelf: Arc::new(Shelf::new(max_retained)),
        }
    }

    /// Acquires an empty vector (recycled when possible).
    pub fn acquire(&self) -> Vec<T> {
        self.shelf.take(Vec::new)
    }

    /// Returns a vector to the pool (cleared here; capacity retained).
    pub fn release(&self, mut v: Vec<T>) {
        v.clear();
        self.shelf.put(v);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.shelf.stats()
    }

    /// Vectors currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.shelf.idle_count()
    }
}

impl<T> std::fmt::Debug for VecPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecPool")
            .field("idle", &self.idle())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Tag;
    use crate::payload::Payload;
    use bytes::BufMut;

    #[test]
    fn buf_pool_recycles_and_clears() {
        let pool = BufPool::new(4);
        {
            let mut a = pool.acquire();
            a.put_slice(b"some frame bytes");
            assert_eq!(a.len(), 16);
        }
        let b = pool.acquire();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= 16, "…but keep their capacity");
        let s = pool.stats();
        assert_eq!(s.created, 1);
        assert_eq!(s.recycled, 1);
        assert_eq!(s.acquired, 2);
    }

    #[test]
    fn pool_reaches_steady_state() {
        // The satellite claim: under steady-state load the pool stops
        // allocating — `created` plateaus while `recycled` keeps growing.
        let pool = BufPool::new(8);
        for round in 0..100u64 {
            let mut held: Vec<PooledBuf> = (0..3).map(|_| pool.acquire()).collect();
            for buf in &mut held {
                buf.put_slice(&round.to_be_bytes());
            }
            drop(held);
            if round == 10 {
                assert_eq!(pool.stats().created, 3, "warm after the first round");
            }
        }
        let s = pool.stats();
        assert_eq!(s.created, 3, "no growth under steady-state load");
        assert_eq!(s.acquired, 300);
        assert_eq!(s.recycled, 297);
        assert_eq!(s.discarded, 0);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn retention_bound_discards_surplus() {
        let pool = BufPool::new(2);
        let held: Vec<PooledBuf> = (0..5).map(|_| pool.acquire()).collect();
        drop(held);
        let s = pool.stats();
        assert_eq!(pool.idle(), 2);
        assert_eq!(s.returned, 2);
        assert_eq!(s.discarded, 3);
    }

    #[test]
    fn batch_pool_round_trips_vectors() {
        let pool = BatchPool::new(4);
        let mut v = pool.acquire();
        v.push(WireMessage::Msg {
            tag: Tag(1),
            payload: Payload::from("m"),
        });
        pool.release(v);
        let v2 = pool.acquire();
        assert!(v2.is_empty(), "released vectors are cleared");
        assert!(v2.capacity() >= 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn mux_pool_recycles_tagged_entry_vectors() {
        use crate::ids::TopicId;
        let pool: crate::pool::MuxPool = crate::pool::MuxPool::new(4);
        let mut v = pool.acquire();
        v.push((
            TopicId(1),
            WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("m"),
            },
        ));
        pool.release(v);
        let v2 = pool.acquire();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn clones_share_one_pool_across_threads() {
        let pool = BufPool::new(16);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let mut b = p.acquire();
                        b.put_u8(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.acquired, 200);
        assert!(
            s.created <= 16,
            "at most one live buffer per thread plus races: created {}",
            s.created
        );
        assert_eq!(s.acquired, s.created + s.recycled);
    }

    #[test]
    fn stats_hit_rate_handles_idle_pool() {
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }
}
