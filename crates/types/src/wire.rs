//! Wire messages and their binary codec.
//!
//! Three message kinds cross the network:
//!
//! * [`WireMessage::Msg`] — the paper's `(MSG, m, tag)`;
//! * [`WireMessage::Ack`] — the paper's `(ACK, m, tag, tag_ack)`
//!   (Algorithm 1) or `(ACK, m, tag, tag_ack, labels)` (Algorithm 2). Note
//!   the ACK carries the payload `m`, exactly as written in the paper —
//!   this is what enables the "fast deliver" behaviour of §III's remark
//!   (DESIGN.md D1).
//! * [`WireMessage::Heartbeat`] — used only by the *heartbeat-based*
//!   realistic failure-detector implementation in `urb-fd`; the oracle
//!   detectors send nothing.
//!
//! One protocol step often emits several messages at once (a MSG plus the
//! ACKs a Task-1 sweep re-broadcasts); the batched message plane moves them
//! as a single [`Batch`] frame — a length-prefixed sequence of messages
//! that preserves every member's [`WireMessage::retransmit_key`] identity,
//! so the channel layer's per-message fairness bookkeeping is unaffected by
//! batching (DESIGN.md D8).
//!
//! The codec is a hand-rolled length-prefixed binary format (via `bytes`),
//! because the simulator and runtime move millions of messages per run and
//! the format doubles as the unit the channel-loss layer hashes for its
//! fairness bookkeeping. `serde` derives exist as well, for trace export.

use crate::ids::{Label, LabelSet, Tag, TagAck};
use crate::payload::Payload;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Discriminant of a wire message, used by metrics and loss bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireKind {
    /// An application message retransmission (`MSG`).
    Msg,
    /// An acknowledgment (`ACK`).
    Ack,
    /// A failure-detector heartbeat.
    Heartbeat,
}

impl WireKind {
    /// All kinds, in codec-tag order.
    pub const ALL: [WireKind; 3] = [WireKind::Msg, WireKind::Ack, WireKind::Heartbeat];

    /// Stable index for array-backed per-kind counters.
    pub fn index(self) -> usize {
        match self {
            WireKind::Msg => 0,
            WireKind::Ack => 1,
            WireKind::Heartbeat => 2,
        }
    }
}

impl fmt::Display for WireKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireKind::Msg => "MSG",
            WireKind::Ack => "ACK",
            WireKind::Heartbeat => "HB",
        };
        f.write_str(s)
    }
}

/// A message as it crosses the anonymous broadcast network.
///
/// Deliberately contains **no sender field**: receivers in the paper's model
/// cannot determine who sent a message, and the type system enforces that
/// here. (The simulator tracks provenance out-of-band, for metrics and the
/// fairness bookkeeping only — protocol code never sees it.)
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireMessage {
    /// `(MSG, m, tag)` — a message to be URB-delivered (Algorithm 1/2,
    /// Task 1 line 30/54).
    Msg {
        /// The sender-assigned unique random tag.
        tag: Tag,
        /// The application message `m`.
        payload: Payload,
    },
    /// `(ACK, m, tag, tag_ack[, labels])` — reception acknowledgment
    /// (Algorithm 1 lines 12/16, Algorithm 2 lines 15/20).
    Ack {
        /// Tag of the acknowledged message.
        tag: Tag,
        /// The acknowledger's unique random tag for this `(m, tag)`.
        tag_ack: TagAck,
        /// The acknowledged application message (piggybacked, per the paper).
        payload: Payload,
        /// Algorithm 2 only: the labels currently in the acknowledger's
        /// `a_theta`. `None` for Algorithm 1 ACKs.
        labels: Option<LabelSet>,
    },
    /// Failure-detector heartbeat (heartbeat implementation only).
    Heartbeat {
        /// The heartbeating process's current label.
        label: Label,
        /// Monotone sequence number (lets receivers ignore stale reordering).
        seq: u64,
    },
}

impl WireMessage {
    /// The message's kind discriminant.
    pub fn kind(&self) -> WireKind {
        match self {
            WireMessage::Msg { .. } => WireKind::Msg,
            WireMessage::Ack { .. } => WireKind::Ack,
            WireMessage::Heartbeat { .. } => WireKind::Heartbeat,
        }
    }

    /// The `tag` this message concerns, if any.
    pub fn tag(&self) -> Option<Tag> {
        match self {
            WireMessage::Msg { tag, .. } | WireMessage::Ack { tag, .. } => Some(*tag),
            WireMessage::Heartbeat { .. } => None,
        }
    }

    /// Serialized size in bytes (what [`encode`](Self::encode) will produce).
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMessage::Msg { payload, .. } => 1 + 16 + 4 + payload.len(),
            WireMessage::Ack {
                payload, labels, ..
            } => {
                1 + 16 + 16 + 4 + payload.len() + 1 + labels.as_ref().map_or(0, |l| 4 + 8 * l.len())
            }
            WireMessage::Heartbeat { .. } => 1 + 8 + 8,
        }
    }

    /// Encodes into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into an existing buffer (appends).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            WireMessage::Msg { tag, payload } => {
                buf.put_u8(0);
                buf.put_u128(tag.0);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
            }
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels,
            } => {
                buf.put_u8(1);
                buf.put_u128(tag.0);
                buf.put_u128(tag_ack.0);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
                match labels {
                    None => buf.put_u8(0),
                    Some(set) => {
                        buf.put_u8(1);
                        buf.put_u32(set.len() as u32);
                        for l in set.iter() {
                            buf.put_u64(l.0);
                        }
                    }
                }
            }
            WireMessage::Heartbeat { label, seq } => {
                buf.put_u8(2);
                buf.put_u64(label.0);
                buf.put_u64(*seq);
            }
        }
    }

    /// Decodes a message from a complete frame.
    pub fn decode(mut data: &[u8]) -> Result<WireMessage, CodecError> {
        let msg = Self::decode_buf(&mut data)?;
        if !data.is_empty() {
            return Err(CodecError::TrailingBytes(data.len()));
        }
        Ok(msg)
    }

    fn decode_buf(buf: &mut &[u8]) -> Result<WireMessage, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let kind = buf.get_u8();
        match kind {
            0 => {
                if buf.remaining() < 16 + 4 {
                    return Err(CodecError::Truncated);
                }
                let tag = Tag(buf.get_u128());
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let payload = Payload::copy_from_slice(&buf[..len]);
                buf.advance(len);
                Ok(WireMessage::Msg { tag, payload })
            }
            1 => {
                if buf.remaining() < 16 + 16 + 4 {
                    return Err(CodecError::Truncated);
                }
                let tag = Tag(buf.get_u128());
                let tag_ack = TagAck(buf.get_u128());
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let payload = Payload::copy_from_slice(&buf[..len]);
                buf.advance(len);
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let labels = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 4 {
                            return Err(CodecError::Truncated);
                        }
                        let n = buf.get_u32() as usize;
                        if buf.remaining() < 8 * n {
                            return Err(CodecError::Truncated);
                        }
                        let mut labels = Vec::with_capacity(n);
                        for _ in 0..n {
                            labels.push(Label(buf.get_u64()));
                        }
                        Some(LabelSet::from_iter(labels))
                    }
                    b => return Err(CodecError::BadDiscriminant(b)),
                };
                Ok(WireMessage::Ack {
                    tag,
                    tag_ack,
                    payload,
                    labels,
                })
            }
            2 => {
                if buf.remaining() < 16 {
                    return Err(CodecError::Truncated);
                }
                let label = Label(buf.get_u64());
                let seq = buf.get_u64();
                Ok(WireMessage::Heartbeat { label, seq })
            }
            b => Err(CodecError::BadDiscriminant(b)),
        }
    }

    /// A 64-bit content fingerprint, used by the bounded-loss channel mode to
    /// recognise retransmissions of "the same message" (the unit over which
    /// the fair-lossy Fairness axiom quantifies).
    pub fn content_hash(&self) -> u64 {
        // FNV-1a over the encoded form: stable, fast, good enough for
        // bookkeeping (not adversarial input).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            WireMessage::Msg { tag, payload } => {
                feed(&[0]);
                feed(&tag.0.to_le_bytes());
                feed(payload.as_slice());
            }
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels,
            } => {
                feed(&[1]);
                feed(&tag.0.to_le_bytes());
                feed(&tag_ack.0.to_le_bytes());
                feed(payload.as_slice());
                if let Some(set) = labels {
                    for l in set.iter() {
                        feed(&l.0.to_le_bytes());
                    }
                }
            }
            WireMessage::Heartbeat { label, seq } => {
                feed(&[2]);
                feed(&label.0.to_le_bytes());
                feed(&seq.to_le_bytes());
            }
        }
        hash
    }

    /// Retransmission identity: two sends count as retransmissions of the
    /// same message for the fairness axiom if they have the same
    /// [`retransmit_key`](Self::retransmit_key). This is the per-message
    /// unit of account the batched message plane preserves (DESIGN.md D8).
    ///
    /// For ACKs in Algorithm 2 the attached label set evolves between
    /// retransmissions while the paper still treats them as "the identical
    /// acknowledgment message"; the key therefore ignores labels (and
    /// heartbeat sequence numbers) and hashes only the stable identity.
    pub fn retransmit_key(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            WireMessage::Msg { tag, .. } => {
                feed(&[0]);
                feed(&tag.0.to_le_bytes());
            }
            WireMessage::Ack { tag, tag_ack, .. } => {
                feed(&[1]);
                feed(&tag.0.to_le_bytes());
                feed(&tag_ack.0.to_le_bytes());
            }
            WireMessage::Heartbeat { label, .. } => {
                feed(&[2]);
                feed(&label.0.to_le_bytes());
            }
        }
        hash
    }
}

impl fmt::Debug for WireMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireMessage::Msg { tag, payload } => write!(f, "MSG{{{tag:?}, {payload:?}}}"),
            WireMessage::Ack {
                tag,
                tag_ack,
                labels,
                ..
            } => match labels {
                Some(set) => write!(f, "ACK{{{tag:?}, {tag_ack:?}, labels={set:?}}}"),
                None => write!(f, "ACK{{{tag:?}, {tag_ack:?}}}"),
            },
            WireMessage::Heartbeat { label, seq } => write!(f, "HB{{{label:?}, seq={seq}}}"),
        }
    }
}

/// A batch frame: several wire messages moved as one unit of routing.
///
/// The engine drains a step's whole outbox into one `Batch`, so the
/// simulator schedules one delivery event (and the runtime performs one
/// channel send) per *step* instead of per message. Loss stays
/// per-message: the channel layer iterates [`Batch::messages`] and applies
/// its verdicts against each member's own
/// [`retransmit_key`](WireMessage::retransmit_key), which keeps the
/// fair-lossy Fairness axiom's unit of account unchanged.
///
/// Frame layout: `0x03` (frame tag, disjoint from the message
/// discriminants 0–2), a `u32` message count, then per message a `u32`
/// byte length followed by the message's own encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    messages: Vec<WireMessage>,
}

impl Batch {
    /// Frame-tag byte distinguishing a batch from a bare message frame.
    pub const FRAME_TAG: u8 = 3;

    /// An empty batch.
    pub fn new() -> Self {
        Batch {
            messages: Vec::new(),
        }
    }

    /// Builds a batch by draining `outbox` (leaves it empty, capacity
    /// retained — the engine's hot path).
    pub fn drain_from(outbox: &mut Vec<WireMessage>) -> Self {
        Batch {
            messages: std::mem::take(outbox),
        }
    }

    /// Appends one message.
    pub fn push(&mut self, msg: WireMessage) {
        self.messages.push(msg);
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The batched messages, in emission order.
    pub fn messages(&self) -> &[WireMessage] {
        &self.messages
    }

    /// Consumes the batch, yielding its messages.
    pub fn into_messages(self) -> Vec<WireMessage> {
        self.messages
    }

    /// Per-message retransmission identities, in order — the fairness
    /// bookkeeping unit is unchanged by batching.
    pub fn retransmit_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.messages.iter().map(|m| m.retransmit_key())
    }

    /// Serialized size in bytes (what [`encode`](Self::encode) produces).
    pub fn encoded_len(&self) -> usize {
        1 + 4
            + self
                .messages
                .iter()
                .map(|m| 4 + m.encoded_len())
                .sum::<usize>()
    }

    /// Encodes the frame into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(Self::FRAME_TAG);
        buf.put_u32(self.messages.len() as u32);
        for m in &self.messages {
            buf.put_u32(m.encoded_len() as u32);
            m.encode_into(&mut buf);
        }
        buf.freeze()
    }

    /// Decodes a complete batch frame.
    pub fn decode(data: &[u8]) -> Result<Batch, CodecError> {
        let mut buf = data;
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let tag = buf.get_u8();
        if tag != Self::FRAME_TAG {
            return Err(CodecError::BadDiscriminant(tag));
        }
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let count = buf.get_u32() as usize;
        let mut messages = Vec::new();
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            // Each member must occupy exactly its declared length;
            // `WireMessage::decode` enforces the exactness.
            messages.push(WireMessage::decode(&buf[..len])?);
            buf.advance(len);
        }
        if !buf.is_empty() {
            return Err(CodecError::TrailingBytes(buf.len()));
        }
        Ok(Batch { messages })
    }
}

impl FromIterator<WireMessage> for Batch {
    fn from_iter<I: IntoIterator<Item = WireMessage>>(iter: I) -> Self {
        Batch {
            messages: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Batch {
    type Item = WireMessage;
    type IntoIter = std::vec::IntoIter<WireMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.messages.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a WireMessage;
    type IntoIter = std::slice::Iter<'a, WireMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.messages.iter()
    }
}

/// Errors produced by [`WireMessage::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The frame ended before the message was complete.
    Truncated,
    /// An enum discriminant byte had an unknown value.
    BadDiscriminant(u8),
    /// The frame contained bytes after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadDiscriminant(b) => write!(f, "unknown discriminant byte {b:#x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u128, body: &str) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from(body),
        }
    }

    fn ack(tag: u128, ta: u128, body: &str, labels: Option<&[u64]>) -> WireMessage {
        WireMessage::Ack {
            tag: Tag(tag),
            tag_ack: TagAck(ta),
            payload: Payload::from(body),
            labels: labels.map(|ls| LabelSet::from_iter(ls.iter().map(|&l| Label(l)))),
        }
    }

    #[test]
    fn roundtrip_msg() {
        let m = msg(0xDEAD_BEEF, "payload!");
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        assert_eq!(WireMessage::decode(&enc).unwrap(), m);
    }

    #[test]
    fn roundtrip_ack_without_labels() {
        let m = ack(1, 2, "m", None);
        assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn roundtrip_ack_with_labels() {
        let m = ack(u128::MAX, 7, "", Some(&[3, 1, 2]));
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        let back = WireMessage::decode(&enc).unwrap();
        assert_eq!(back, m);
        if let WireMessage::Ack {
            labels: Some(set), ..
        } = back
        {
            let v: Vec<Label> = set.iter().collect();
            assert_eq!(v, vec![Label(1), Label(2), Label(3)], "labels sorted");
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn roundtrip_heartbeat() {
        let m = WireMessage::Heartbeat {
            label: Label(99),
            seq: u64::MAX,
        };
        assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let m = ack(11, 22, "hello world", Some(&[5, 6]));
        let enc = m.encode();
        for cut in 0..enc.len() {
            let err = WireMessage::decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated),
                "prefix {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = msg(1, "x").encode().to_vec();
        enc.push(0);
        assert!(matches!(
            WireMessage::decode(&enc),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn decode_rejects_bad_discriminant() {
        assert!(matches!(
            WireMessage::decode(&[9]),
            Err(CodecError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn kind_and_tag_accessors() {
        assert_eq!(msg(5, "a").kind(), WireKind::Msg);
        assert_eq!(msg(5, "a").tag(), Some(Tag(5)));
        let hb = WireMessage::Heartbeat {
            label: Label(1),
            seq: 0,
        };
        assert_eq!(hb.kind(), WireKind::Heartbeat);
        assert_eq!(hb.tag(), None);
    }

    #[test]
    fn content_hash_distinguishes_label_sets_but_retransmit_key_does_not() {
        let a = ack(1, 2, "m", Some(&[1]));
        let b = ack(1, 2, "m", Some(&[1, 2]));
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.retransmit_key(),
            b.retransmit_key(),
            "retransmissions of the same ACK with evolved labels share identity"
        );
        let c = ack(1, 3, "m", Some(&[1]));
        assert_ne!(a.retransmit_key(), c.retransmit_key());
    }

    #[test]
    fn batch_roundtrip_empty_single_many() {
        for msgs in [
            vec![],
            vec![msg(1, "solo")],
            vec![
                msg(1, "a"),
                ack(1, 2, "a", None),
                ack(1, 3, "a", Some(&[9, 7])),
                WireMessage::Heartbeat {
                    label: Label(4),
                    seq: 5,
                },
                msg(2, ""),
            ],
        ] {
            let batch: Batch = msgs.iter().cloned().collect();
            let enc = batch.encode();
            assert_eq!(enc.len(), batch.encoded_len());
            let back = Batch::decode(&enc).unwrap();
            assert_eq!(back, batch);
            assert_eq!(back.messages(), &msgs[..]);
        }
    }

    #[test]
    fn batch_preserves_per_message_retransmit_keys() {
        let msgs = [msg(1, "a"), ack(1, 2, "a", Some(&[1])), msg(3, "b")];
        let batch: Batch = msgs.iter().cloned().collect();
        let keys: Vec<u64> = batch.retransmit_keys().collect();
        let direct: Vec<u64> = msgs.iter().map(|m| m.retransmit_key()).collect();
        assert_eq!(keys, direct, "batching must not launder message identity");
    }

    #[test]
    fn batch_drain_from_empties_and_keeps_capacity() {
        let mut outbox = Vec::with_capacity(16);
        outbox.push(msg(1, "x"));
        outbox.push(msg(2, "y"));
        let batch = Batch::drain_from(&mut outbox);
        assert_eq!(batch.len(), 2);
        assert!(outbox.is_empty());
    }

    #[test]
    fn batch_decode_rejects_malformed_frames() {
        let batch: Batch = vec![msg(7, "hello")].into_iter().collect();
        let enc = batch.encode();
        // Every strict prefix is truncated.
        for cut in 0..enc.len() {
            assert!(
                matches!(Batch::decode(&enc[..cut]), Err(CodecError::Truncated)),
                "prefix {cut}"
            );
        }
        // Trailing garbage is rejected.
        let mut long = enc.to_vec();
        long.push(0);
        assert!(matches!(
            Batch::decode(&long),
            Err(CodecError::TrailingBytes(1))
        ));
        // A bare-message frame is not a batch.
        assert!(matches!(
            Batch::decode(&msg(1, "m").encode()),
            Err(CodecError::BadDiscriminant(0))
        ));
        // A member whose length prefix over-claims is truncated, and one
        // whose member bytes disagree with the length is rejected too.
        let mut frame = vec![Batch::FRAME_TAG, 0, 0, 0, 1];
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Batch::decode(&frame), Err(CodecError::Truncated)));
    }

    #[test]
    fn wire_kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for k in WireKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
