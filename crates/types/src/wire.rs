//! Wire messages and their binary codec.
//!
//! Three message kinds cross the network:
//!
//! * [`WireMessage::Msg`] — the paper's `(MSG, m, tag)`;
//! * [`WireMessage::Ack`] — the paper's `(ACK, m, tag, tag_ack)`
//!   (Algorithm 1) or `(ACK, m, tag, tag_ack, labels)` (Algorithm 2). Note
//!   the ACK carries the payload `m`, exactly as written in the paper —
//!   this is what enables the "fast deliver" behaviour of §III's remark
//!   (DESIGN.md D1).
//! * [`WireMessage::Heartbeat`] — used only by the *heartbeat-based*
//!   realistic failure-detector implementation in `urb-fd`; the oracle
//!   detectors send nothing.
//!
//! One protocol step often emits several messages at once (a MSG plus the
//! ACKs a Task-1 sweep re-broadcasts); the batched message plane moves them
//! as a single [`Batch`] frame — a length-prefixed sequence of messages
//! that preserves every member's [`WireMessage::retransmit_key`] identity,
//! so the channel layer's per-message fairness bookkeeping is unaffected by
//! batching (DESIGN.md D8).
//!
//! The codec is a hand-rolled length-prefixed binary format (via `bytes`),
//! because the simulator and runtime move millions of messages per run and
//! the format doubles as the unit the channel-loss layer hashes for its
//! fairness bookkeeping. `serde` derives exist as well, for trace export.
//!
//! Two codec paths exist (DESIGN.md §10). The **legacy** path allocates a
//! fresh buffer per frame ([`Batch::encode`]) and copies every payload out
//! on decode ([`Batch::decode`]). The **zero-copy** path encodes into a
//! reusable buffer — typically from a [`crate::BufPool`] — with no
//! per-message or per-frame allocation ([`Batch::encode_into`] /
//! [`encode_frame_into`]) and decodes payloads as refcounted slice views
//! of the frame itself ([`Batch::decode_shared`]). Both produce and accept
//! byte-identical frames; `urb_bench::compare` replays the same seeded
//! corpus through both and asserts it.

use crate::ids::{Label, LabelSet, Tag, TagAck, TopicId};
use crate::payload::Payload;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Discriminant of a wire message, used by metrics and loss bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireKind {
    /// An application message retransmission (`MSG`).
    Msg,
    /// An acknowledgment (`ACK`).
    Ack,
    /// A failure-detector heartbeat.
    Heartbeat,
}

impl WireKind {
    /// All kinds, in codec-tag order.
    pub const ALL: [WireKind; 3] = [WireKind::Msg, WireKind::Ack, WireKind::Heartbeat];

    /// Stable index for array-backed per-kind counters.
    pub fn index(self) -> usize {
        match self {
            WireKind::Msg => 0,
            WireKind::Ack => 1,
            WireKind::Heartbeat => 2,
        }
    }
}

impl fmt::Display for WireKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireKind::Msg => "MSG",
            WireKind::Ack => "ACK",
            WireKind::Heartbeat => "HB",
        };
        f.write_str(s)
    }
}

/// A message as it crosses the anonymous broadcast network.
///
/// Deliberately contains **no sender field**: receivers in the paper's model
/// cannot determine who sent a message, and the type system enforces that
/// here. (The simulator tracks provenance out-of-band, for metrics and the
/// fairness bookkeeping only — protocol code never sees it.)
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireMessage {
    /// `(MSG, m, tag)` — a message to be URB-delivered (Algorithm 1/2,
    /// Task 1 line 30/54).
    Msg {
        /// The sender-assigned unique random tag.
        tag: Tag,
        /// The application message `m`.
        payload: Payload,
    },
    /// `(ACK, m, tag, tag_ack[, labels])` — reception acknowledgment
    /// (Algorithm 1 lines 12/16, Algorithm 2 lines 15/20).
    Ack {
        /// Tag of the acknowledged message.
        tag: Tag,
        /// The acknowledger's unique random tag for this `(m, tag)`.
        tag_ack: TagAck,
        /// The acknowledged application message (piggybacked, per the paper).
        payload: Payload,
        /// Algorithm 2 only: the labels currently in the acknowledger's
        /// `a_theta`. `None` for Algorithm 1 ACKs.
        labels: Option<LabelSet>,
    },
    /// Failure-detector heartbeat (heartbeat implementation only).
    Heartbeat {
        /// The heartbeating process's current label.
        label: Label,
        /// Monotone sequence number (lets receivers ignore stale reordering).
        seq: u64,
    },
}

impl WireMessage {
    /// The message's kind discriminant.
    pub fn kind(&self) -> WireKind {
        match self {
            WireMessage::Msg { .. } => WireKind::Msg,
            WireMessage::Ack { .. } => WireKind::Ack,
            WireMessage::Heartbeat { .. } => WireKind::Heartbeat,
        }
    }

    /// The `tag` this message concerns, if any.
    pub fn tag(&self) -> Option<Tag> {
        match self {
            WireMessage::Msg { tag, .. } | WireMessage::Ack { tag, .. } => Some(*tag),
            WireMessage::Heartbeat { .. } => None,
        }
    }

    /// Serialized size in bytes (what [`encode`](Self::encode) will produce).
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMessage::Msg { payload, .. } => 1 + 16 + 4 + payload.len(),
            WireMessage::Ack {
                payload, labels, ..
            } => {
                1 + 16 + 16 + 4 + payload.len() + 1 + labels.as_ref().map_or(0, |l| 4 + 8 * l.len())
            }
            WireMessage::Heartbeat { .. } => 1 + 8 + 8,
        }
    }

    /// Encodes into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into an existing buffer (appends).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            WireMessage::Msg { tag, payload } => {
                buf.put_u8(0);
                buf.put_u128(tag.0);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
            }
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels,
            } => {
                buf.put_u8(1);
                buf.put_u128(tag.0);
                buf.put_u128(tag_ack.0);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
                match labels {
                    None => buf.put_u8(0),
                    Some(set) => {
                        buf.put_u8(1);
                        buf.put_u32(set.len() as u32);
                        for l in set.iter() {
                            buf.put_u64(l.0);
                        }
                    }
                }
            }
            WireMessage::Heartbeat { label, seq } => {
                buf.put_u8(2);
                buf.put_u64(label.0);
                buf.put_u64(*seq);
            }
        }
    }

    /// Decodes a message from a complete frame (copying the payload into
    /// fresh storage — the legacy path; [`Batch::decode_shared`] is the
    /// zero-copy one).
    pub fn decode(data: &[u8]) -> Result<WireMessage, CodecError> {
        let mut pos = 0usize;
        let msg = decode_message_at(data, &mut pos, &mut copy_payload)?;
        if pos != data.len() {
            return Err(CodecError::TrailingBytes(data.len() - pos));
        }
        Ok(msg)
    }

    /// A 64-bit content fingerprint, used by the bounded-loss channel mode to
    /// recognise retransmissions of "the same message" (the unit over which
    /// the fair-lossy Fairness axiom quantifies).
    pub fn content_hash(&self) -> u64 {
        // FNV-1a over the encoded form: stable, fast, good enough for
        // bookkeeping (not adversarial input).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            WireMessage::Msg { tag, payload } => {
                feed(&[0]);
                feed(&tag.0.to_le_bytes());
                feed(payload.as_slice());
            }
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels,
            } => {
                feed(&[1]);
                feed(&tag.0.to_le_bytes());
                feed(&tag_ack.0.to_le_bytes());
                feed(payload.as_slice());
                if let Some(set) = labels {
                    for l in set.iter() {
                        feed(&l.0.to_le_bytes());
                    }
                }
            }
            WireMessage::Heartbeat { label, seq } => {
                feed(&[2]);
                feed(&label.0.to_le_bytes());
                feed(&seq.to_le_bytes());
            }
        }
        hash
    }

    /// Retransmission identity: two sends count as retransmissions of the
    /// same message for the fairness axiom if they have the same
    /// [`retransmit_key`](Self::retransmit_key). This is the per-message
    /// unit of account the batched message plane preserves (DESIGN.md D8).
    ///
    /// For ACKs in Algorithm 2 the attached label set evolves between
    /// retransmissions while the paper still treats them as "the identical
    /// acknowledgment message"; the key therefore ignores labels (and
    /// heartbeat sequence numbers) and hashes only the stable identity.
    pub fn retransmit_key(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            WireMessage::Msg { tag, .. } => {
                feed(&[0]);
                feed(&tag.0.to_le_bytes());
            }
            WireMessage::Ack { tag, tag_ack, .. } => {
                feed(&[1]);
                feed(&tag.0.to_le_bytes());
                feed(&tag_ack.0.to_le_bytes());
            }
            WireMessage::Heartbeat { label, .. } => {
                feed(&[2]);
                feed(&label.0.to_le_bytes());
            }
        }
        hash
    }
}

// ---------------------------------------------------------------------
// Decode internals, shared by the copying and the zero-copy paths.
//
// Decoding walks the frame with an explicit cursor (`pos`) instead of a
// shrinking slice so that payload *offsets* survive: the zero-copy path
// turns `(offset, len)` into a refcounted [`bytes::Bytes::slice`] view of
// the frame, the legacy path copies the same range. Everything else —
// bounds checks, error taxonomy, field order — is one implementation.

/// Builds a payload from `data[off..off + len]`. The copying maker; the
/// zero-copy maker is a closure over the shared frame in
/// [`Batch::decode_shared`].
fn copy_payload(data: &[u8], off: usize, len: usize) -> Payload {
    Payload::copy_from_slice(&data[off..off + len])
}

fn need(data: &[u8], pos: usize, n: usize) -> Result<(), CodecError> {
    if data.len().saturating_sub(pos) < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn read_u8(data: &[u8], pos: &mut usize) -> u8 {
    let v = data[*pos];
    *pos += 1;
    v
}

fn read_u32(data: &[u8], pos: &mut usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&data[*pos..*pos + 4]);
    *pos += 4;
    u32::from_be_bytes(raw)
}

fn read_u64(data: &[u8], pos: &mut usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&data[*pos..*pos + 8]);
    *pos += 8;
    u64::from_be_bytes(raw)
}

fn read_u128(data: &[u8], pos: &mut usize) -> u128 {
    let mut raw = [0u8; 16];
    raw.copy_from_slice(&data[*pos..*pos + 16]);
    *pos += 16;
    u128::from_be_bytes(raw)
}

/// Decodes one message starting at `pos`, advancing the cursor.
/// `payload` materializes each payload range (copy or shared slice).
fn decode_message_at(
    data: &[u8],
    pos: &mut usize,
    payload: &mut dyn FnMut(&[u8], usize, usize) -> Payload,
) -> Result<WireMessage, CodecError> {
    need(data, *pos, 1)?;
    let kind = read_u8(data, pos);
    match kind {
        0 => {
            need(data, *pos, 16 + 4)?;
            let tag = Tag(read_u128(data, pos));
            let len = read_u32(data, pos) as usize;
            need(data, *pos, len)?;
            let body = payload(data, *pos, len);
            *pos += len;
            Ok(WireMessage::Msg { tag, payload: body })
        }
        1 => {
            need(data, *pos, 16 + 16 + 4)?;
            let tag = Tag(read_u128(data, pos));
            let tag_ack = TagAck(read_u128(data, pos));
            let len = read_u32(data, pos) as usize;
            need(data, *pos, len)?;
            let body = payload(data, *pos, len);
            *pos += len;
            need(data, *pos, 1)?;
            let labels = match read_u8(data, pos) {
                0 => None,
                1 => {
                    need(data, *pos, 4)?;
                    let n = read_u32(data, pos) as usize;
                    need(data, *pos, 8 * n)?;
                    let mut labels = Vec::with_capacity(n);
                    for _ in 0..n {
                        labels.push(Label(read_u64(data, pos)));
                    }
                    Some(LabelSet::from_iter(labels))
                }
                b => return Err(CodecError::BadDiscriminant(b)),
            };
            Ok(WireMessage::Ack {
                tag,
                tag_ack,
                payload: body,
                labels,
            })
        }
        2 => {
            need(data, *pos, 16)?;
            let label = Label(read_u64(data, pos));
            let seq = read_u64(data, pos);
            Ok(WireMessage::Heartbeat { label, seq })
        }
        b => Err(CodecError::BadDiscriminant(b)),
    }
}

/// Appends a complete batch frame for `msgs` to `buf` — the zero-copy
/// encode path's workhorse. Writes straight into the caller's buffer
/// (typically a [`crate::BufPool`] frame or a reused scratch), so a warm
/// buffer makes encoding allocate **nothing**: not per message, not per
/// frame. Byte-for-byte identical to [`Batch::encode`] over the same
/// messages (pinned by the codec-equivalence property tests).
pub fn encode_frame_into(msgs: &[WireMessage], buf: &mut BytesMut) {
    buf.put_u8(Batch::FRAME_TAG);
    buf.put_u32(msgs.len() as u32);
    for m in msgs {
        buf.put_u32(m.encoded_len() as u32);
        m.encode_into(buf);
    }
}

/// Decodes every member of a batch frame into `out` (cleared first),
/// materializing payloads through `payload`. Shared core of
/// [`Batch::decode`], [`Batch::decode_shared`] and
/// [`Batch::decode_shared_into`].
fn decode_members(
    data: &[u8],
    out: &mut Vec<WireMessage>,
    payload: &mut dyn FnMut(&[u8], usize, usize) -> Payload,
) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    need(data, pos, 1)?;
    let tag = read_u8(data, &mut pos);
    if tag != Batch::FRAME_TAG {
        return Err(CodecError::BadDiscriminant(tag));
    }
    need(data, pos, 4)?;
    let count = read_u32(data, &mut pos) as usize;
    for _ in 0..count {
        need(data, pos, 4)?;
        let len = read_u32(data, &mut pos) as usize;
        need(data, pos, len)?;
        // Each member must occupy exactly its declared length; decoding
        // against the prefix slice keeps absolute offsets valid while
        // bounding reads to the member.
        let member_end = pos + len;
        out.push(decode_message_at(&data[..member_end], &mut pos, payload)?);
        if pos != member_end {
            return Err(CodecError::TrailingBytes(member_end - pos));
        }
    }
    if pos != data.len() {
        return Err(CodecError::TrailingBytes(data.len() - pos));
    }
    Ok(())
}

impl fmt::Debug for WireMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireMessage::Msg { tag, payload } => write!(f, "MSG{{{tag:?}, {payload:?}}}"),
            WireMessage::Ack {
                tag,
                tag_ack,
                labels,
                ..
            } => match labels {
                Some(set) => write!(f, "ACK{{{tag:?}, {tag_ack:?}, labels={set:?}}}"),
                None => write!(f, "ACK{{{tag:?}, {tag_ack:?}}}"),
            },
            WireMessage::Heartbeat { label, seq } => write!(f, "HB{{{label:?}, seq={seq}}}"),
        }
    }
}

/// A batch frame: several wire messages moved as one unit of routing.
///
/// The engine drains a step's whole outbox into one `Batch`, so the
/// simulator schedules one delivery event (and the runtime performs one
/// channel send) per *step* instead of per message. Loss stays
/// per-message: the channel layer iterates [`Batch::messages`] and applies
/// its verdicts against each member's own
/// [`retransmit_key`](WireMessage::retransmit_key), which keeps the
/// fair-lossy Fairness axiom's unit of account unchanged.
///
/// Frame layout: `0x03` (frame tag, disjoint from the message
/// discriminants 0–2), a `u32` message count, then per message a `u32`
/// byte length followed by the message's own encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    messages: Vec<WireMessage>,
}

impl Batch {
    /// Frame-tag byte distinguishing a batch from a bare message frame.
    pub const FRAME_TAG: u8 = 3;

    /// An empty batch.
    pub fn new() -> Self {
        Batch {
            messages: Vec::new(),
        }
    }

    /// Builds a batch by draining `outbox` (leaves it empty, capacity
    /// retained — the engine's hot path).
    pub fn drain_from(outbox: &mut Vec<WireMessage>) -> Self {
        Batch {
            messages: std::mem::take(outbox),
        }
    }

    /// Wraps an owned message vector — the [`crate::BatchPool`] entry
    /// point: acquire a recycled vector, fill it, wrap it, and after the
    /// batch is consumed hand the vector back via
    /// [`crate::BatchPool::release`] (see [`Batch::into_messages`]).
    pub fn from_vec(messages: Vec<WireMessage>) -> Self {
        Batch { messages }
    }

    /// Appends one message.
    pub fn push(&mut self, msg: WireMessage) {
        self.messages.push(msg);
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The batched messages, in emission order.
    pub fn messages(&self) -> &[WireMessage] {
        &self.messages
    }

    /// Consumes the batch, yielding its messages.
    pub fn into_messages(self) -> Vec<WireMessage> {
        self.messages
    }

    /// Per-message retransmission identities, in order — the fairness
    /// bookkeeping unit is unchanged by batching.
    pub fn retransmit_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.messages.iter().map(|m| m.retransmit_key())
    }

    /// Serialized size in bytes (what [`encode`](Self::encode) produces).
    pub fn encoded_len(&self) -> usize {
        1 + 4
            + self
                .messages
                .iter()
                .map(|m| 4 + m.encoded_len())
                .sum::<usize>()
    }

    /// Encodes the frame into a freshly allocated buffer — the **legacy
    /// codec path** (one buffer allocation plus one freeze copy per
    /// frame). The hot paths use [`Batch::encode_into`] over a pooled
    /// buffer instead; `urb_bench::compare` replays both and asserts the
    /// zero-copy path produces byte-identical frames, faster.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the frame to an existing buffer — the zero-copy encode
    /// path. With a warm (pooled or reused) buffer this allocates
    /// nothing; see [`encode_frame_into`] for the free-function form the
    /// engine uses to encode an outbox without constructing a `Batch`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        encode_frame_into(&self.messages, buf);
    }

    /// Decodes a complete batch frame, copying every payload into fresh
    /// storage — the legacy path ([`Batch::decode_shared`] is the
    /// zero-copy one).
    pub fn decode(data: &[u8]) -> Result<Batch, CodecError> {
        let mut messages = Vec::new();
        decode_members(data, &mut messages, &mut copy_payload)?;
        Ok(Batch { messages })
    }

    /// Decodes a complete batch frame **without copying payloads**: each
    /// decoded [`Payload`] is a refcounted slice view of `frame` itself
    /// ([`bytes::Bytes::slice`]), so the frame's storage is shared by
    /// every message until the last reference drops. This is the receive
    /// path of the runtime's wire plane.
    pub fn decode_shared(frame: &Bytes) -> Result<Batch, CodecError> {
        let mut messages = Vec::new();
        Self::decode_shared_into(frame, &mut messages)?;
        Ok(Batch { messages })
    }

    /// [`Batch::decode_shared`] into a caller-supplied vector (cleared
    /// first, capacity retained) — pair with a [`crate::BatchPool`] for a
    /// decode path with no per-frame vector allocation either.
    pub fn decode_shared_into(frame: &Bytes, out: &mut Vec<WireMessage>) -> Result<(), CodecError> {
        decode_members(frame, out, &mut |_, off, len| {
            Payload::from_bytes(frame.slice(off..off + len))
        })
    }
}

impl FromIterator<WireMessage> for Batch {
    fn from_iter<I: IntoIterator<Item = WireMessage>>(iter: I) -> Self {
        Batch {
            messages: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Batch {
    type Item = WireMessage;
    type IntoIter = std::vec::IntoIter<WireMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.messages.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a WireMessage;
    type IntoIter = std::slice::Iter<'a, WireMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.messages.iter()
    }
}

/// A topic-lifecycle control operation, carried in the optional control
/// section of a [`MuxBatch`] frame (DESIGN.md §15).
///
/// Control operations ride the existing multiplexed wire format — a node
/// that wants to create, retire, subscribe to or unsubscribe from a topic
/// appends `TopicControl` entries to the frame it was going to send anyway
/// (or sends a control-only frame). The payload sub-batches and the control
/// section are independent: a frame may carry either, both, or (vacuously)
/// neither.
///
/// `Create` carries the algorithm to instantiate as an `(algorithm, param)`
/// code pair so receivers can materialize the correct protocol state
/// machine; the codes are assigned by `urb_core::Algorithm::to_wire` and
/// are opaque at this layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopicControl {
    /// Create `topic`, instantiating algorithm `(algorithm, param)` lazily
    /// on first receipt.
    Create {
        /// The topic to bring live.
        topic: TopicId,
        /// Algorithm code (see `urb_core::Algorithm::to_wire`).
        algorithm: u8,
        /// Algorithm parameter (threshold / backoff cap; 0 when unused).
        param: u32,
    },
    /// Retire `topic`: stop accepting broadcasts, drain in-flight tags,
    /// then reclaim the instance's state.
    Retire {
        /// The topic to retire.
        topic: TopicId,
    },
    /// Subscribe the sender to `topic`'s deliveries.
    Subscribe {
        /// The topic to subscribe to.
        topic: TopicId,
    },
    /// Drop the sender's subscription to `topic`.
    Unsubscribe {
        /// The topic to unsubscribe from.
        topic: TopicId,
    },
}

impl TopicControl {
    /// The topic this control operation concerns.
    pub fn topic(self) -> TopicId {
        match self {
            TopicControl::Create { topic, .. }
            | TopicControl::Retire { topic }
            | TopicControl::Subscribe { topic }
            | TopicControl::Unsubscribe { topic } => topic,
        }
    }

    /// Operation discriminant byte (codec order).
    fn op(self) -> u8 {
        match self {
            TopicControl::Create { .. } => 0,
            TopicControl::Retire { .. } => 1,
            TopicControl::Subscribe { .. } => 2,
            TopicControl::Unsubscribe { .. } => 3,
        }
    }

    /// Serialized size in bytes.
    pub fn encoded_len(self) -> usize {
        match self {
            TopicControl::Create { .. } => 1 + 4 + 1 + 4,
            _ => 1 + 4,
        }
    }

    fn encode_into(self, buf: &mut BytesMut) {
        buf.put_u8(self.op());
        buf.put_u32(self.topic().0);
        if let TopicControl::Create {
            algorithm, param, ..
        } = self
        {
            buf.put_u8(algorithm);
            buf.put_u32(param);
        }
    }

    fn decode_at(data: &[u8], pos: &mut usize) -> Result<TopicControl, CodecError> {
        need(data, *pos, 1 + 4)?;
        let op = read_u8(data, pos);
        let topic = TopicId(read_u32(data, pos));
        match op {
            0 => {
                need(data, *pos, 1 + 4)?;
                let algorithm = read_u8(data, pos);
                let param = read_u32(data, pos);
                Ok(TopicControl::Create {
                    topic,
                    algorithm,
                    param,
                })
            }
            1 => Ok(TopicControl::Retire { topic }),
            2 => Ok(TopicControl::Subscribe { topic }),
            3 => Ok(TopicControl::Unsubscribe { topic }),
            b => Err(CodecError::BadDiscriminant(b)),
        }
    }
}

impl fmt::Display for TopicControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicControl::Create {
                topic,
                algorithm,
                param,
            } => write!(f, "create({}, alg={algorithm}/{param})", topic.0),
            TopicControl::Retire { topic } => write!(f, "retire({})", topic.0),
            TopicControl::Subscribe { topic } => write!(f, "subscribe({})", topic.0),
            TopicControl::Unsubscribe { topic } => write!(f, "unsubscribe({})", topic.0),
        }
    }
}

/// A **multiplexed** batch frame: one topic-keyed sub-batch per URB
/// instance, moved as a single unit of routing (DESIGN.md §12).
///
/// Where [`Batch`] carries one instance's step output, a `MuxBatch`
/// carries the output of *every* topic instance a node stepped, so a
/// multi-topic node still schedules **one** routing event (one frame
/// send) per step instead of one per topic. Loss, metrics and fairness
/// bookkeeping stay per message — each member keeps its own
/// [`WireMessage::retransmit_key`], decorrelated across topics via
/// [`TopicId::mix`].
///
/// Frame layout: `0x04` (frame tag, disjoint from message discriminants
/// 0–2 and the [`Batch`] tag `0x03`), a `u32` sub-batch count, then per
/// sub-batch a `u32` topic id, a `u32` message count and the messages in
/// [`Batch`] member encoding (`u32` byte length + message bytes). A frame
/// may end with an **optional control section** (DESIGN.md §15): the
/// section tag [`MuxBatch::CONTROL_TAG`] (`0x05`), a `u32` control count,
/// then the [`TopicControl`] entries. The section is written only when at
/// least one control is present, so control-free frames are byte-identical
/// to the pre-lifecycle format. The zero-copy properties of the batch
/// codec carry over: encoding appends into a caller buffer with no
/// per-message allocation ([`MuxBatch::encode_into`]), and
/// [`MuxBatch::decode_shared_into`] decodes payloads as refcounted slice
/// views of the frame.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxBatch {
    /// `(topic, messages)` sub-batches, in emission order. Kept sorted by
    /// topic by [`MuxBatch::push`] (topics are stepped in ascending order,
    /// so pushes arrive sorted; the invariant is asserted in debug).
    subs: Vec<(TopicId, Vec<WireMessage>)>,
    /// Lifecycle control operations riding this frame, in emission order.
    /// Empty for pure payload frames (the static-topic byte-compat case).
    controls: Vec<TopicControl>,
}

impl MuxBatch {
    /// Frame-tag byte distinguishing a multiplexed frame from a [`Batch`]
    /// (`0x03`) and from bare messages (0–2).
    pub const FRAME_TAG: u8 = 4;

    /// Section-tag byte introducing the optional trailing [`TopicControl`]
    /// section of a multiplexed frame (disjoint from every other tag).
    pub const CONTROL_TAG: u8 = 5;

    /// An empty multiplexed batch.
    pub fn new() -> Self {
        MuxBatch {
            subs: Vec::new(),
            controls: Vec::new(),
        }
    }

    /// Appends one message to `topic`'s sub-batch, creating it on first
    /// use. Messages for one topic must arrive contiguously in ascending
    /// topic order (how every driver steps its topics).
    pub fn push(&mut self, topic: TopicId, msg: WireMessage) {
        match self.subs.last_mut() {
            Some((t, sub)) if *t == topic => sub.push(msg),
            _ => {
                debug_assert!(
                    self.subs.iter().all(|(t, _)| *t < topic),
                    "topics must be pushed in ascending order"
                );
                self.subs.push((topic, vec![msg]));
            }
        }
    }

    /// Builds a multiplexed batch from topic-tagged messages in ascending
    /// topic order (the shape the engine's mux outbox drains into).
    pub fn from_entries<'a, I: IntoIterator<Item = &'a (TopicId, WireMessage)>>(
        entries: I,
    ) -> Self {
        let mut mux = MuxBatch::new();
        for (topic, msg) in entries {
            mux.push(*topic, msg.clone());
        }
        mux
    }

    /// Appends one lifecycle control operation to the frame's control
    /// section.
    pub fn push_control(&mut self, ctl: TopicControl) {
        self.controls.push(ctl);
    }

    /// The lifecycle control operations riding this frame, in emission
    /// order (empty for pure payload frames).
    pub fn controls(&self) -> &[TopicControl] {
        &self.controls
    }

    /// The `(topic, messages)` sub-batches, ascending by topic.
    pub fn sub_batches(&self) -> &[(TopicId, Vec<WireMessage>)] {
        &self.subs
    }

    /// Number of sub-batches (distinct topics) in the frame.
    pub fn topic_count(&self) -> usize {
        self.subs.len()
    }

    /// Total messages across all sub-batches.
    pub fn len(&self) -> usize {
        self.subs.iter().map(|(_, sub)| sub.len()).sum()
    }

    /// True when no sub-batch carries anything **and** the control section
    /// is empty — a frame a driver can skip sending entirely.
    pub fn is_empty(&self) -> bool {
        self.subs.iter().all(|(_, sub)| sub.is_empty()) && self.controls.is_empty()
    }

    /// Iterates `(topic, &message)` pairs in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (TopicId, &WireMessage)> + '_ {
        self.subs
            .iter()
            .flat_map(|(t, sub)| sub.iter().map(move |m| (*t, m)))
    }

    /// Serialized size in bytes (what [`MuxBatch::encode`] produces).
    pub fn encoded_len(&self) -> usize {
        let controls = if self.controls.is_empty() {
            0
        } else {
            1 + 4 + self.controls.iter().map(|c| c.encoded_len()).sum::<usize>()
        };
        1 + 4
            + self
                .subs
                .iter()
                .map(|(_, sub)| 4 + 4 + sub.iter().map(|m| 4 + m.encoded_len()).sum::<usize>())
                .sum::<usize>()
            + controls
    }

    /// Encodes the frame into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the frame to an existing buffer — the zero-copy encode
    /// path (with a warm pooled buffer this allocates nothing, per
    /// message or per frame; pinned by the mux codec property tests).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(MuxBatch::FRAME_TAG);
        buf.put_u32(self.subs.len() as u32);
        for (topic, sub) in &self.subs {
            buf.put_u32(topic.0);
            buf.put_u32(sub.len() as u32);
            for m in sub {
                buf.put_u32(m.encoded_len() as u32);
                m.encode_into(buf);
            }
        }
        encode_control_section_into(&self.controls, buf);
    }

    /// Decodes a complete multiplexed frame, copying payloads into fresh
    /// storage (the legacy path; [`MuxBatch::decode_shared`] is the
    /// zero-copy one).
    pub fn decode(data: &[u8]) -> Result<MuxBatch, CodecError> {
        decode_mux(data, &mut copy_payload)
    }

    /// Decodes a complete multiplexed frame **without copying payloads**:
    /// every decoded [`Payload`] is a refcounted slice view of `frame`
    /// itself — the receive path of the runtime's sharded wire plane.
    pub fn decode_shared(frame: &Bytes) -> Result<MuxBatch, CodecError> {
        decode_mux(frame, &mut |_, off, len| {
            Payload::from_bytes(frame.slice(off..off + len))
        })
    }

    /// [`MuxBatch::decode_shared`] into a caller-supplied entry vector
    /// (cleared first, capacity retained) — the steady-state-zero-
    /// allocation ingress path: pair with a recycled
    /// [`crate::MuxPool`] vector and nothing is allocated per frame.
    ///
    /// A trailing control section, if present, is validated and then
    /// **discarded**; callers that act on lifecycle controls use
    /// [`MuxBatch::decode_shared_with_controls_into`].
    pub fn decode_shared_into(
        frame: &Bytes,
        out: &mut Vec<(TopicId, WireMessage)>,
    ) -> Result<(), CodecError> {
        let mut controls = Vec::new();
        Self::decode_shared_with_controls_into(frame, out, &mut controls)
    }

    /// [`MuxBatch::decode_shared_into`] that additionally surfaces the
    /// frame's [`TopicControl`] section into `controls` (cleared first;
    /// left empty for control-free frames) — the ingress path of drivers
    /// that implement the dynamic topic lifecycle (DESIGN.md §15).
    pub fn decode_shared_with_controls_into(
        frame: &Bytes,
        out: &mut Vec<(TopicId, WireMessage)>,
        controls: &mut Vec<TopicControl>,
    ) -> Result<(), CodecError> {
        decode_mux_entries_and_controls(frame, out, controls, &mut |_, off, len| {
            Payload::from_bytes(frame.slice(off..off + len))
        })
    }
}

/// Encodes topic-tagged messages (ascending topic order) as one
/// multiplexed frame appended to `buf` — the free-function twin of
/// [`MuxBatch::encode_into`] for callers holding a flat entry slice (the
/// engine's mux outbox) rather than a built [`MuxBatch`]. Byte-identical
/// to building the `MuxBatch` and encoding it.
pub fn encode_mux_frame_into(entries: &[(TopicId, WireMessage)], buf: &mut BytesMut) {
    encode_mux_frame_with_controls_into(entries, &[], buf);
}

/// [`encode_mux_frame_into`] with a [`TopicControl`] section appended when
/// `controls` is non-empty. With `controls` empty the output is
/// byte-identical to [`encode_mux_frame_into`] — the static-topic
/// byte-compat guarantee (DESIGN.md §15).
pub fn encode_mux_frame_with_controls_into(
    entries: &[(TopicId, WireMessage)],
    controls: &[TopicControl],
    buf: &mut BytesMut,
) {
    buf.put_u8(MuxBatch::FRAME_TAG);
    // First pass: count sub-batch boundaries (entries are grouped in
    // ascending topic order, so a boundary is any topic change).
    let sub_count = entries
        .iter()
        .zip(entries.iter().skip(1))
        .filter(|((a, _), (b, _))| a != b)
        .count() as u32
        + u32::from(!entries.is_empty());
    buf.put_u32(sub_count);
    let mut i = 0;
    while i < entries.len() {
        let topic = entries[i].0;
        let end = entries[i..]
            .iter()
            .position(|(t, _)| *t != topic)
            .map_or(entries.len(), |p| i + p);
        debug_assert!(
            entries[end..].iter().all(|(t, _)| *t > topic),
            "entries must be grouped in ascending topic order"
        );
        buf.put_u32(topic.0);
        buf.put_u32((end - i) as u32);
        for (_, m) in &entries[i..end] {
            buf.put_u32(m.encoded_len() as u32);
            m.encode_into(buf);
        }
        i = end;
    }
    encode_control_section_into(controls, buf);
}

/// Appends the optional control section: written only when `controls` is
/// non-empty, so control-free frames keep the pre-lifecycle byte layout.
fn encode_control_section_into(controls: &[TopicControl], buf: &mut BytesMut) {
    if controls.is_empty() {
        return;
    }
    buf.put_u8(MuxBatch::CONTROL_TAG);
    buf.put_u32(controls.len() as u32);
    for c in controls {
        c.encode_into(buf);
    }
}

/// Shared mux decode core (structured form).
fn decode_mux(
    data: &[u8],
    payload: &mut dyn FnMut(&[u8], usize, usize) -> Payload,
) -> Result<MuxBatch, CodecError> {
    let mut entries = Vec::new();
    let mut controls = Vec::new();
    decode_mux_entries_and_controls(data, &mut entries, &mut controls, payload)?;
    let mut mux = MuxBatch::new();
    for (t, m) in entries {
        mux.push(t, m);
    }
    mux.controls = controls;
    Ok(mux)
}

/// Shared mux decode core (flat-entry form; `out` and `controls` are
/// cleared first).
fn decode_mux_entries_and_controls(
    data: &[u8],
    out: &mut Vec<(TopicId, WireMessage)>,
    controls: &mut Vec<TopicControl>,
    payload: &mut dyn FnMut(&[u8], usize, usize) -> Payload,
) -> Result<(), CodecError> {
    out.clear();
    controls.clear();
    let mut pos = 0usize;
    need(data, pos, 1)?;
    let tag = read_u8(data, &mut pos);
    if tag != MuxBatch::FRAME_TAG {
        return Err(CodecError::BadDiscriminant(tag));
    }
    need(data, pos, 4)?;
    let sub_count = read_u32(data, &mut pos) as usize;
    let mut last_topic: Option<u32> = None;
    for _ in 0..sub_count {
        need(data, pos, 4 + 4)?;
        let topic = read_u32(data, &mut pos);
        if last_topic.is_some_and(|prev| topic <= prev) {
            return Err(CodecError::UnorderedTopics);
        }
        last_topic = Some(topic);
        let count = read_u32(data, &mut pos) as usize;
        for _ in 0..count {
            need(data, pos, 4)?;
            let len = read_u32(data, &mut pos) as usize;
            need(data, pos, len)?;
            let member_end = pos + len;
            let msg = decode_message_at(&data[..member_end], &mut pos, payload)?;
            if pos != member_end {
                return Err(CodecError::TrailingBytes(member_end - pos));
            }
            out.push((TopicId(topic), msg));
        }
    }
    // Optional trailing control section (DESIGN.md §15).
    if pos < data.len() && data[pos] == MuxBatch::CONTROL_TAG {
        pos += 1;
        need(data, pos, 4)?;
        let n = read_u32(data, &mut pos) as usize;
        for _ in 0..n {
            controls.push(TopicControl::decode_at(data, &mut pos)?);
        }
    }
    if pos != data.len() {
        return Err(CodecError::TrailingBytes(data.len() - pos));
    }
    Ok(())
}

/// Errors produced by [`WireMessage::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The frame ended before the message was complete.
    Truncated,
    /// An enum discriminant byte had an unknown value.
    BadDiscriminant(u8),
    /// The frame contained bytes after a complete message.
    TrailingBytes(usize),
    /// A multiplexed frame's sub-batches were not in strictly ascending
    /// topic order (every consumer indexes per-topic state by it).
    UnorderedTopics,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadDiscriminant(b) => write!(f, "unknown discriminant byte {b:#x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            CodecError::UnorderedTopics => {
                write!(f, "mux frame sub-batches not in ascending topic order")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u128, body: &str) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from(body),
        }
    }

    fn ack(tag: u128, ta: u128, body: &str, labels: Option<&[u64]>) -> WireMessage {
        WireMessage::Ack {
            tag: Tag(tag),
            tag_ack: TagAck(ta),
            payload: Payload::from(body),
            labels: labels.map(|ls| LabelSet::from_iter(ls.iter().map(|&l| Label(l)))),
        }
    }

    #[test]
    fn roundtrip_msg() {
        let m = msg(0xDEAD_BEEF, "payload!");
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        assert_eq!(WireMessage::decode(&enc).unwrap(), m);
    }

    #[test]
    fn roundtrip_ack_without_labels() {
        let m = ack(1, 2, "m", None);
        assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn roundtrip_ack_with_labels() {
        let m = ack(u128::MAX, 7, "", Some(&[3, 1, 2]));
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        let back = WireMessage::decode(&enc).unwrap();
        assert_eq!(back, m);
        if let WireMessage::Ack {
            labels: Some(set), ..
        } = back
        {
            let v: Vec<Label> = set.iter().collect();
            assert_eq!(v, vec![Label(1), Label(2), Label(3)], "labels sorted");
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn roundtrip_heartbeat() {
        let m = WireMessage::Heartbeat {
            label: Label(99),
            seq: u64::MAX,
        };
        assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let m = ack(11, 22, "hello world", Some(&[5, 6]));
        let enc = m.encode();
        for cut in 0..enc.len() {
            let err = WireMessage::decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated),
                "prefix {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = msg(1, "x").encode().to_vec();
        enc.push(0);
        assert!(matches!(
            WireMessage::decode(&enc),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn decode_rejects_bad_discriminant() {
        assert!(matches!(
            WireMessage::decode(&[9]),
            Err(CodecError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn kind_and_tag_accessors() {
        assert_eq!(msg(5, "a").kind(), WireKind::Msg);
        assert_eq!(msg(5, "a").tag(), Some(Tag(5)));
        let hb = WireMessage::Heartbeat {
            label: Label(1),
            seq: 0,
        };
        assert_eq!(hb.kind(), WireKind::Heartbeat);
        assert_eq!(hb.tag(), None);
    }

    #[test]
    fn content_hash_distinguishes_label_sets_but_retransmit_key_does_not() {
        let a = ack(1, 2, "m", Some(&[1]));
        let b = ack(1, 2, "m", Some(&[1, 2]));
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.retransmit_key(),
            b.retransmit_key(),
            "retransmissions of the same ACK with evolved labels share identity"
        );
        let c = ack(1, 3, "m", Some(&[1]));
        assert_ne!(a.retransmit_key(), c.retransmit_key());
    }

    #[test]
    fn batch_roundtrip_empty_single_many() {
        for msgs in [
            vec![],
            vec![msg(1, "solo")],
            vec![
                msg(1, "a"),
                ack(1, 2, "a", None),
                ack(1, 3, "a", Some(&[9, 7])),
                WireMessage::Heartbeat {
                    label: Label(4),
                    seq: 5,
                },
                msg(2, ""),
            ],
        ] {
            let batch: Batch = msgs.iter().cloned().collect();
            let enc = batch.encode();
            assert_eq!(enc.len(), batch.encoded_len());
            let back = Batch::decode(&enc).unwrap();
            assert_eq!(back, batch);
            assert_eq!(back.messages(), &msgs[..]);
        }
    }

    #[test]
    fn batch_preserves_per_message_retransmit_keys() {
        let msgs = [msg(1, "a"), ack(1, 2, "a", Some(&[1])), msg(3, "b")];
        let batch: Batch = msgs.iter().cloned().collect();
        let keys: Vec<u64> = batch.retransmit_keys().collect();
        let direct: Vec<u64> = msgs.iter().map(|m| m.retransmit_key()).collect();
        assert_eq!(keys, direct, "batching must not launder message identity");
    }

    #[test]
    fn batch_drain_from_empties_and_keeps_capacity() {
        let mut outbox = Vec::with_capacity(16);
        outbox.push(msg(1, "x"));
        outbox.push(msg(2, "y"));
        let batch = Batch::drain_from(&mut outbox);
        assert_eq!(batch.len(), 2);
        assert!(outbox.is_empty());
    }

    #[test]
    fn batch_decode_rejects_malformed_frames() {
        let batch: Batch = vec![msg(7, "hello")].into_iter().collect();
        let enc = batch.encode();
        // Every strict prefix is truncated.
        for cut in 0..enc.len() {
            assert!(
                matches!(Batch::decode(&enc[..cut]), Err(CodecError::Truncated)),
                "prefix {cut}"
            );
        }
        // Trailing garbage is rejected.
        let mut long = enc.to_vec();
        long.push(0);
        assert!(matches!(
            Batch::decode(&long),
            Err(CodecError::TrailingBytes(1))
        ));
        // A bare-message frame is not a batch.
        assert!(matches!(
            Batch::decode(&msg(1, "m").encode()),
            Err(CodecError::BadDiscriminant(0))
        ));
        // A member whose length prefix over-claims is truncated, and one
        // whose member bytes disagree with the length is rejected too.
        let mut frame = vec![Batch::FRAME_TAG, 0, 0, 0, 1];
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Batch::decode(&frame), Err(CodecError::Truncated)));
    }

    #[test]
    fn mux_roundtrip_and_entry_encoding_agree() {
        let entries = vec![
            (TopicId(0), msg(1, "a")),
            (TopicId(0), ack(1, 2, "a", Some(&[3]))),
            (TopicId(2), msg(9, "topic two")),
            (
                TopicId(2),
                WireMessage::Heartbeat {
                    label: Label(7),
                    seq: 1,
                },
            ),
            (TopicId(5), msg(11, "")),
        ];
        let mux = MuxBatch::from_entries(&entries);
        assert_eq!(mux.topic_count(), 3);
        assert_eq!(mux.len(), 5);
        let enc = mux.encode();
        assert_eq!(enc.len(), mux.encoded_len());
        // Structured and flat-entry encoders produce identical bytes.
        let mut flat = BytesMut::new();
        encode_frame_via_entries(&entries, &mut flat);
        assert_eq!(&enc[..], &flat[..]);
        // Both decode paths reproduce the original.
        assert_eq!(MuxBatch::decode(&enc).unwrap(), mux);
        let shared = MuxBatch::decode_shared(&enc).unwrap();
        assert_eq!(shared, mux);
        let mut out = Vec::new();
        MuxBatch::decode_shared_into(&enc, &mut out).unwrap();
        assert_eq!(out, entries);
    }

    fn encode_frame_via_entries(entries: &[(TopicId, WireMessage)], buf: &mut BytesMut) {
        encode_mux_frame_into(entries, buf);
    }

    #[test]
    fn mux_single_topic_zero_is_the_degenerate_frame() {
        let mux = MuxBatch::from_entries(&[(TopicId::ZERO, msg(3, "only"))]);
        let enc = mux.encode();
        assert_eq!(enc[0], MuxBatch::FRAME_TAG);
        let back = MuxBatch::decode(&enc).unwrap();
        assert_eq!(back.sub_batches().len(), 1);
        assert_eq!(back.sub_batches()[0].0, TopicId::ZERO);
        // A mux frame is NOT a batch frame and vice versa — the tags are
        // disjoint, so a receiver can dispatch on the first byte.
        assert!(matches!(
            Batch::decode(&enc),
            Err(CodecError::BadDiscriminant(4))
        ));
        let batch: Batch = vec![msg(3, "only")].into_iter().collect();
        assert!(matches!(
            MuxBatch::decode(&batch.encode()),
            Err(CodecError::BadDiscriminant(3))
        ));
    }

    #[test]
    fn mux_decode_rejects_malformed_frames() {
        let mux = MuxBatch::from_entries(&[
            (TopicId(1), msg(1, "x")),
            (TopicId(3), ack(1, 2, "x", None)),
        ]);
        let enc = mux.encode();
        for cut in 0..enc.len() {
            assert!(
                matches!(MuxBatch::decode(&enc[..cut]), Err(CodecError::Truncated)),
                "prefix {cut}"
            );
        }
        let mut long = enc.to_vec();
        long.push(0);
        assert!(matches!(
            MuxBatch::decode(&long),
            Err(CodecError::TrailingBytes(1))
        ));
        // Duplicate / descending topics are rejected.
        let dup = MuxBatch::from_entries(&[(TopicId(2), msg(1, "a"))]);
        let mut bytes = dup.encode().to_vec();
        // Patch the sub-count to 2 and append a second sub-batch with a
        // smaller topic id.
        bytes[1..5].copy_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes()); // topic 1 < 2
        bytes.extend_from_slice(&0u32.to_be_bytes()); // empty sub-batch
        assert!(matches!(
            MuxBatch::decode(&bytes),
            Err(CodecError::UnorderedTopics)
        ));
    }

    #[test]
    fn mux_preserves_per_message_identity_across_topics() {
        // The same wire message on two topics keeps distinct fairness
        // identities once the topic is mixed in — and topic 0 mixes to
        // the legacy key exactly.
        let m = msg(42, "same");
        let k = m.retransmit_key();
        assert_eq!(TopicId::ZERO.mix(k), k);
        assert_ne!(TopicId(1).mix(k), TopicId(2).mix(k));
    }

    #[test]
    fn mux_control_section_roundtrips_and_is_absent_when_empty() {
        let controls = [
            TopicControl::Create {
                topic: TopicId(7),
                algorithm: 2,
                param: 0,
            },
            TopicControl::Subscribe { topic: TopicId(7) },
            TopicControl::Retire { topic: TopicId(3) },
            TopicControl::Unsubscribe { topic: TopicId(1) },
        ];
        // Payload + control frame.
        let entries = vec![(TopicId(0), msg(1, "a")), (TopicId(7), msg(2, "b"))];
        let mut mux = MuxBatch::from_entries(&entries);
        for c in controls {
            mux.push_control(c);
        }
        let enc = mux.encode();
        assert_eq!(enc.len(), mux.encoded_len());
        let back = MuxBatch::decode(&enc).unwrap();
        assert_eq!(back, mux);
        assert_eq!(back.controls(), &controls);
        // Entry decode surfaces the controls...
        let shared = Bytes::from(enc.to_vec());
        let (mut out, mut ctl) = (Vec::new(), Vec::new());
        MuxBatch::decode_shared_with_controls_into(&shared, &mut out, &mut ctl).unwrap();
        assert_eq!(out, entries);
        assert_eq!(ctl, controls);
        // ...and the control-blind path validates but discards them.
        MuxBatch::decode_shared_into(&shared, &mut out).unwrap();
        assert_eq!(out, entries);
        // Free-function encoder with controls is byte-identical.
        let mut flat = BytesMut::new();
        encode_mux_frame_with_controls_into(&entries, &controls, &mut flat);
        assert_eq!(&enc[..], &flat[..]);
        // Control-only frame: non-empty, sendable, decodes.
        let mut only = MuxBatch::new();
        only.push_control(controls[0]);
        assert!(!only.is_empty());
        assert_eq!(only.len(), 0);
        let back = MuxBatch::decode(&only.encode()).unwrap();
        assert_eq!(back.controls(), &controls[..1]);
        // Static-topic byte-compat: no controls → no section byte.
        let plain = MuxBatch::from_entries(&entries);
        let mut with_empty = BytesMut::new();
        encode_mux_frame_with_controls_into(&entries, &[], &mut with_empty);
        assert_eq!(&plain.encode()[..], &with_empty[..]);
    }

    #[test]
    fn mux_control_section_rejects_truncation_and_bad_ops() {
        let mut mux = MuxBatch::new();
        mux.push(TopicId(0), msg(1, "x"));
        mux.push_control(TopicControl::Create {
            topic: TopicId(4),
            algorithm: 0,
            param: 3,
        });
        let enc = mux.encode();
        let ctl = TopicControl::Create {
            topic: TopicId(4),
            algorithm: 0,
            param: 3,
        };
        let section_len = 1 + 4 + ctl.encoded_len();
        for cut in 0..enc.len() {
            let decoded = MuxBatch::decode(&enc[..cut]);
            if cut == enc.len() - section_len {
                // Cutting the whole control section cleanly yields a valid
                // (control-free) frame — the section is optional.
                assert_eq!(decoded.unwrap().controls(), &[]);
                continue;
            }
            let err = decoded.unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::TrailingBytes(_)),
                "prefix {cut} gave {err:?}"
            );
        }
        // An unknown control op byte is rejected.
        let mut bad = enc.to_vec();
        let op_pos = enc.len() - ctl.encoded_len();
        bad[op_pos] = 9;
        assert!(matches!(
            MuxBatch::decode(&bad),
            Err(CodecError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn wire_kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for k in WireKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
