//! Fuzz-style property tests for the wire codec.
//!
//! The codec is the trust boundary of the runtime (frames arrive from the
//! network); it must never panic, never allocate absurdly, and roundtrip
//! every valid message bit-exactly.

use proptest::prelude::*;
use urb_types::{
    Batch, CodecError, Label, LabelSet, MuxBatch, Payload, Tag, TagAck, TopicId, WireMessage,
};

fn arb_payload() -> impl Strategy<Value = Payload> {
    proptest::collection::vec(any::<u8>(), 0..512).prop_map(Payload::from)
}

fn arb_labels() -> impl Strategy<Value = Option<LabelSet>> {
    proptest::option::of(
        proptest::collection::btree_set(any::<u64>(), 0..16)
            .prop_map(|s| LabelSet::from_iter(s.into_iter().map(Label))),
    )
}

fn arb_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        (any::<u128>(), arb_payload()).prop_map(|(t, p)| WireMessage::Msg {
            tag: Tag(t),
            payload: p,
        }),
        (any::<u128>(), any::<u128>(), arb_payload(), arb_labels()).prop_map(|(t, ta, p, ls)| {
            WireMessage::Ack {
                tag: Tag(t),
                tag_ack: TagAck(ta),
                payload: p,
                labels: ls,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(l, s)| WireMessage::Heartbeat {
            label: Label(l),
            seq: s,
        }),
    ]
}

proptest! {
    /// Every message roundtrips bit-exactly and reports its encoded length
    /// correctly.
    #[test]
    fn roundtrip_any_message(msg in arb_message()) {
        let enc = msg.encode();
        prop_assert_eq!(enc.len(), msg.encoded_len());
        let back = WireMessage::decode(&enc).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics — it returns a message or a
    /// structured error.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = WireMessage::decode(&bytes); // must not panic
    }

    /// Every strict prefix of a valid frame fails with `Truncated` (no
    /// partial message is ever accepted as complete).
    #[test]
    fn prefixes_are_rejected(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let enc = msg.encode();
        if enc.len() > 1 {
            let cut = ((enc.len() - 1) as f64 * cut_frac) as usize;
            let err = WireMessage::decode(&enc[..cut]).unwrap_err();
            prop_assert!(matches!(err, CodecError::Truncated), "got {err:?}");
        }
    }

    /// A frame with trailing garbage is rejected (frame boundaries are
    /// exact).
    #[test]
    fn trailing_garbage_rejected(msg in arb_message(), junk in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut enc = msg.encode().to_vec();
        enc.extend_from_slice(&junk);
        let err = WireMessage::decode(&enc).unwrap_err();
        prop_assert!(
            matches!(err, CodecError::TrailingBytes(_) | CodecError::BadDiscriminant(_) | CodecError::Truncated),
            "got {err:?}"
        );
    }

    /// Distinct messages have distinct encodings (the codec is injective).
    #[test]
    fn encoding_is_injective(a in arb_message(), b in arb_message()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    /// Batch frames round-trip bit-exactly for any member set (including
    /// empty), report their encoded length correctly, and preserve every
    /// member's retransmission identity in order.
    #[test]
    fn batch_roundtrip_any_members(msgs in proptest::collection::vec(arb_message(), 0..24)) {
        let batch: Batch = msgs.iter().cloned().collect();
        let enc = batch.encode();
        prop_assert_eq!(enc.len(), batch.encoded_len());
        let back = Batch::decode(&enc).unwrap();
        prop_assert_eq!(back.messages(), &msgs[..]);
        let keys: Vec<u64> = back.retransmit_keys().collect();
        let direct: Vec<u64> = msgs.iter().map(|m| m.retransmit_key()).collect();
        prop_assert_eq!(keys, direct);
    }

    /// Decoding arbitrary bytes as a batch never panics.
    #[test]
    fn batch_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Batch::decode(&bytes); // must not panic
    }

    /// Multiplexed frames round-trip bit-exactly for any topic-grouped
    /// entry set: structured and flat decode paths agree, the encoded
    /// length is reported correctly, and the ascending topic grouping
    /// survives (DESIGN.md §12).
    #[test]
    fn mux_roundtrip_any_entries(
        groups in proptest::collection::vec(
            (0u32..9, proptest::collection::vec(arb_message(), 1..6)),
            0..5,
        ),
    ) {
        // Deduplicate and sort topics to satisfy the ascending-grouping
        // wire invariant (the shape every engine outbox has).
        let mut by_topic: std::collections::BTreeMap<u32, Vec<WireMessage>> = Default::default();
        for (t, msgs) in groups {
            by_topic.entry(t).or_default().extend(msgs);
        }
        let entries: Vec<(TopicId, WireMessage)> = by_topic
            .into_iter()
            .flat_map(|(t, msgs)| msgs.into_iter().map(move |m| (TopicId(t), m)))
            .collect();
        let mux = MuxBatch::from_entries(&entries);
        let enc = mux.encode();
        prop_assert_eq!(enc.len(), mux.encoded_len());
        let back = MuxBatch::decode(&enc).unwrap();
        prop_assert_eq!(&back, &mux);
        let mut flat = Vec::new();
        MuxBatch::decode_shared_into(&enc, &mut flat).unwrap();
        prop_assert_eq!(flat, entries);
    }

    /// Decoding arbitrary bytes as a mux frame never panics.
    #[test]
    fn mux_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = MuxBatch::decode(&bytes); // must not panic
    }

    /// Every strict prefix of a valid mux frame is rejected.
    #[test]
    fn mux_prefixes_are_rejected(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let entries: Vec<(TopicId, WireMessage)> =
            msgs.into_iter().map(|m| (TopicId(1), m)).collect();
        let mux = MuxBatch::from_entries(&entries);
        let enc = mux.encode();
        let cut = ((enc.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(MuxBatch::decode(&enc[..cut]).is_err());
    }

    /// Every strict prefix of a valid batch frame is rejected (with
    /// `Truncated`, or `BadDiscriminant` for the zero-length prefix path
    /// that exposes a member's first byte — never accepted).
    #[test]
    fn batch_prefixes_are_rejected(msgs in proptest::collection::vec(arb_message(), 1..8), cut_frac in 0.0f64..1.0) {
        let batch: Batch = msgs.into_iter().collect();
        let enc = batch.encode();
        let cut = ((enc.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(Batch::decode(&enc[..cut]).is_err());
    }

    /// A batch frame with trailing garbage is rejected.
    #[test]
    fn batch_trailing_garbage_rejected(msgs in proptest::collection::vec(arb_message(), 0..8), junk in proptest::collection::vec(any::<u8>(), 1..16)) {
        let batch: Batch = msgs.into_iter().collect();
        let mut enc = batch.encode().to_vec();
        enc.extend_from_slice(&junk);
        prop_assert!(Batch::decode(&enc).is_err());
    }

    /// The retransmission key is stable across label-set evolution for
    /// ACKs, and contents-sensitive otherwise (what the fairness
    /// bookkeeping relies on).
    #[test]
    fn retransmit_key_ignores_ack_labels(
        tag in any::<u128>(),
        ta in any::<u128>(),
        payload in arb_payload(),
        ls1 in arb_labels(),
        ls2 in arb_labels(),
    ) {
        let mk = |ls: Option<LabelSet>| WireMessage::Ack {
            tag: Tag(tag),
            tag_ack: TagAck(ta),
            payload: payload.clone(),
            labels: ls,
        };
        prop_assert_eq!(mk(ls1).retransmit_key(), mk(ls2).retransmit_key());
    }
}

/// Deterministic corner cases that proptest might miss.
#[test]
fn corner_cases() {
    // Empty payload, empty label set.
    let m = WireMessage::Ack {
        tag: Tag(0),
        tag_ack: TagAck(0),
        payload: Payload::empty(),
        labels: Some(LabelSet::new()),
    };
    assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);

    // Max-valued fields.
    let m = WireMessage::Heartbeat {
        label: Label(u64::MAX),
        seq: u64::MAX,
    };
    assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);

    // Zero-length input.
    assert!(matches!(
        WireMessage::decode(&[]),
        Err(CodecError::Truncated)
    ));
}

/// A hostile length prefix (huge claimed payload) must fail cleanly, not
/// attempt a giant allocation.
#[test]
fn hostile_length_prefix() {
    let mut frame = vec![0u8]; // MSG discriminant
    frame.extend_from_slice(&0u128.to_be_bytes()); // tag
    frame.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd length
    frame.extend_from_slice(&[0u8; 64]); // far fewer bytes than claimed
    assert!(matches!(
        WireMessage::decode(&frame),
        Err(CodecError::Truncated)
    ));

    // Same for the label count of an ACK.
    let mut frame = vec![1u8];
    frame.extend_from_slice(&0u128.to_be_bytes());
    frame.extend_from_slice(&0u128.to_be_bytes());
    frame.extend_from_slice(&0u32.to_be_bytes()); // empty payload
    frame.push(1); // labels present
    frame.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd label count
    assert!(matches!(
        WireMessage::decode(&frame),
        Err(CodecError::Truncated)
    ));
}
