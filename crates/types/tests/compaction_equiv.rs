//! Compaction-equivalence property suite (DESIGN.md §14).
//!
//! The memory plane's core claim: ack-prefix compaction is **delivery
//! invisible**. For any workload interleaving, running the same protocol
//! with a [`MemoryConfig`] armed (compaction sweep after every tick)
//! must produce, at every process, the *identical delivery sequence* —
//! same tags, same payloads, same order — as the unbounded run, because
//! compaction only reclaims tags that are provably stable at every
//! correct process and tombstones make late copies inert.
//!
//! Quiescence (Theorem 3) is preserved the same way: for Algorithm 2 the
//! two runs must reach the same verdict; for Algorithm 1 — non-quiescent
//! by design (its Task 1 rebroadcasts forever) — reclaiming a fully
//! acknowledged tag's `MSG` entry silences it, so bounded Algorithm 1
//! may quiesce where unbounded never does (the documented deviation),
//! but never the reverse.
//!
//! The harness is the soak plane's lockstep model in miniature: direct
//! protocol stepping, instant lossless flooding of every emission to all
//! `n` processes, and a static full-membership detector view (which
//! satisfies both the `AΘ` delivery condition and the `AP*` prune rule).

use proptest::prelude::*;
use urb_core::Algorithm;
use urb_types::{
    Context, FdPair, FdSnapshot, FdView, Label, MemoryConfig, Payload, SpillPolicy, SplitMix64,
    Tag, WireMessage,
};

/// One run's observable outcome: per-process delivery sequences plus the
/// end-state quiescence verdict.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    deliveries: Vec<Vec<(Tag, String)>>,
    quiescent: bool,
    reclaimed: usize,
}

/// Executes `script` — `(broadcaster, ticks_after)` pairs — on a fresh
/// lossless lockstep cluster and drains it. Deterministic per
/// `(alg, n, seed, script, memory)`.
fn run(
    alg: Algorithm,
    n: usize,
    seed: u64,
    script: &[(usize, u8)],
    memory: Option<MemoryConfig>,
) -> Outcome {
    let seed_mix = SplitMix64::new(seed ^ 0xC0_FFEE);
    let mut procs: Vec<_> = (0..n).map(|_| alg.instantiate(n)).collect();
    let mut rngs: Vec<SplitMix64> = (0..n).map(|i| seed_mix.split(i as u64)).collect();
    if let Some(cfg) = memory {
        for p in &mut procs {
            p.configure_memory(cfg);
        }
    }
    // Static converged detector view: one label every correct process
    // knows, so `counter(label) == number == n` holds for AΘ delivery
    // and the AP* prune rule sees a stable label set. Algorithm 1 reads
    // neither view.
    let fd = match alg {
        Algorithm::Quiescent => {
            let view = FdView::from_pairs([FdPair {
                label: Label(0xEA57),
                number: n as u32,
            }]);
            FdSnapshot::new(view.clone(), view)
        }
        _ => FdSnapshot::none(),
    };

    let mut queue: std::collections::VecDeque<WireMessage> = Default::default();
    let mut deliveries: Vec<Vec<(Tag, String)>> = vec![Vec::new(); n];
    let mut outbox = Vec::new();
    let mut step_deliveries = Vec::new();
    let mut reclaimed = 0usize;

    // Every emission reaches every process, in FIFO order — the lossless
    // instant-flood medium under which stability is reachable fast.
    macro_rules! flood {
        () => {
            while let Some(msg) = queue.pop_front() {
                for pid in 0..n {
                    procs[pid].on_receive(
                        msg.clone(),
                        &mut Context::new(&mut rngs[pid], &fd, &mut outbox, &mut step_deliveries),
                    );
                    queue.extend(outbox.drain(..));
                    for d in step_deliveries.drain(..) {
                        deliveries[pid].push((d.tag, d.payload.as_text()));
                    }
                }
            }
        };
    }
    macro_rules! sweep {
        () => {
            for pid in 0..n {
                procs[pid].on_tick(&mut Context::new(
                    &mut rngs[pid],
                    &fd,
                    &mut outbox,
                    &mut step_deliveries,
                ));
                queue.extend(outbox.drain(..));
                for d in step_deliveries.drain(..) {
                    deliveries[pid].push((d.tag, d.payload.as_text()));
                }
            }
            flood!();
            if memory.is_some() {
                for p in &mut procs {
                    reclaimed += p.compact(&fd).reclaimed;
                }
            }
        };
    }

    for (k, &(broadcaster, ticks)) in script.iter().enumerate() {
        let pid = broadcaster % n;
        let payload = Payload::from(format!("m{k}").as_str());
        procs[pid].urb_broadcast(
            payload,
            &mut Context::new(&mut rngs[pid], &fd, &mut outbox, &mut step_deliveries),
        );
        queue.extend(outbox.drain(..));
        for d in step_deliveries.drain(..) {
            deliveries[pid].push((d.tag, d.payload.as_text()));
        }
        flood!();
        for _ in 0..(ticks % 3) {
            sweep!();
        }
    }
    // Drain until the cluster goes quiet or a generous round budget runs
    // out (Algorithm 1 legitimately never quiets down unbounded).
    let mut quiescent = false;
    for _ in 0..60 {
        sweep!();
        if queue.is_empty() && procs.iter().all(|p| p.is_quiescent()) {
            quiescent = true;
            break;
        }
    }
    Outcome {
        deliveries,
        quiescent,
        reclaimed,
    }
}

fn memory_strategy() -> impl Strategy<Value = MemoryConfig> {
    (
        0u32..3,
        any::<bool>(),
        proptest::option::of(50usize..400),
        any::<bool>(),
    )
        .prop_map(
            |(grace_ticks, conservative, ceiling, spill_tomb)| MemoryConfig {
                grace_ticks,
                conservative,
                tombstones: 64,
                ceiling,
                spill: if spill_tomb {
                    SpillPolicy::Tombstones
                } else {
                    SpillPolicy::StableOnly
                },
            },
        )
}

fn script_strategy() -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0usize..8, any::<u8>()), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Algorithm 2: identical delivery sequences AND identical
    /// quiescence verdict (Theorem 3 is insensitive to compaction).
    #[test]
    fn quiescent_compaction_is_delivery_and_quiescence_invisible(
        n in 3usize..6,
        seed in any::<u64>(),
        script in script_strategy(),
        memory in memory_strategy(),
    ) {
        let unbounded = run(Algorithm::Quiescent, n, seed, &script, None);
        let bounded = run(Algorithm::Quiescent, n, seed, &script, Some(memory));
        prop_assert_eq!(&bounded.deliveries, &unbounded.deliveries);
        prop_assert_eq!(bounded.quiescent, unbounded.quiescent);
        // Under the lossless full-view medium the drain budget always
        // suffices: Theorem 3's verdict itself must hold.
        prop_assert!(bounded.quiescent, "Algorithm 2 must go quiescent");
        // URB agreement sanity on the harness: everyone delivered the
        // same message set.
        let reference: std::collections::BTreeSet<_> =
            bounded.deliveries[0].iter().cloned().collect();
        for pid in 1..n {
            let set: std::collections::BTreeSet<_> =
                bounded.deliveries[pid].iter().cloned().collect();
            prop_assert_eq!(&set, &reference, "pid {} delivery set diverged", pid);
        }
    }

    /// Algorithm 1: identical delivery sequences; quiescence implies
    /// one way only (bounded may quiesce, unbounded never retires its
    /// Task-1 entries).
    #[test]
    fn majority_compaction_is_delivery_invisible(
        n in 3usize..6,
        seed in any::<u64>(),
        script in script_strategy(),
        memory in memory_strategy(),
    ) {
        let unbounded = run(Algorithm::Majority, n, seed, &script, None);
        let bounded = run(Algorithm::Majority, n, seed, &script, Some(memory));
        prop_assert_eq!(&bounded.deliveries, &unbounded.deliveries);
        prop_assert!(
            !unbounded.quiescent || bounded.quiescent,
            "compaction may only add quiescence, never remove it"
        );
        prop_assert!(
            !unbounded.quiescent,
            "unbounded Algorithm 1 never stops rebroadcasting"
        );
    }

    /// Compaction genuinely reclaims state on a sustained workload —
    /// the equivalence above is not vacuous.
    #[test]
    fn quiescent_compaction_reclaims_state(
        n in 3usize..5,
        seed in any::<u64>(),
    ) {
        let script: Vec<(usize, u8)> = (0..8).map(|k| (k % n, 1u8)).collect();
        let bounded = run(
            Algorithm::Quiescent,
            n,
            seed,
            &script,
            Some(MemoryConfig { grace_ticks: 1, ..MemoryConfig::default() }),
        );
        let unbounded = run(Algorithm::Quiescent, n, seed, &script, None);
        prop_assert_eq!(&bounded.deliveries, &unbounded.deliveries);
        prop_assert!(bounded.quiescent);
        prop_assert!(bounded.reclaimed > 0, "compaction reclaimed nothing");
        prop_assert_eq!(unbounded.reclaimed, 0, "unbounded run must never compact");
    }
}
