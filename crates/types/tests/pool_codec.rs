//! Codec-equivalence and pool-reuse property tests (DESIGN.md §10).
//!
//! The zero-copy batch codec is only a *performance* plane: it must be
//! observationally identical to the legacy path. These properties pin
//! that down — byte-identical frames, identical decodes (shared-payload
//! or copied), and a frame-buffer pool that stops allocating once warm.

use bytes::Bytes;
use proptest::prelude::*;
use urb_types::{
    encode_frame_into, Batch, BatchPool, BufPool, Label, LabelSet, Payload, Tag, TagAck,
    WireMessage,
};

fn arb_payload() -> impl Strategy<Value = Payload> {
    proptest::collection::vec(any::<u8>(), 0..256).prop_map(Payload::from)
}

fn arb_labels() -> impl Strategy<Value = Option<LabelSet>> {
    proptest::option::of(
        proptest::collection::btree_set(any::<u64>(), 0..12)
            .prop_map(|s| LabelSet::from_iter(s.into_iter().map(Label))),
    )
}

fn arb_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        (any::<u128>(), arb_payload()).prop_map(|(t, p)| WireMessage::Msg {
            tag: Tag(t),
            payload: p,
        }),
        (any::<u128>(), any::<u128>(), arb_payload(), arb_labels()).prop_map(|(t, ta, p, ls)| {
            WireMessage::Ack {
                tag: Tag(t),
                tag_ack: TagAck(ta),
                payload: p,
                labels: ls,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(l, s)| WireMessage::Heartbeat {
            label: Label(l),
            seq: s,
        }),
    ]
}

proptest! {
    /// The zero-copy encode path (`encode_into` over a reused buffer, and
    /// the outbox-slice form `encode_frame_into`) produces frames
    /// byte-identical to the legacy `encode()` for any member set.
    #[test]
    fn zero_copy_and_legacy_frames_are_byte_identical(
        msgs in proptest::collection::vec(arb_message(), 0..24),
    ) {
        let batch: Batch = msgs.iter().cloned().collect();
        let legacy = batch.encode();

        let pool = BufPool::default();
        let mut pooled = pool.acquire();
        batch.encode_into(&mut pooled);
        prop_assert_eq!(&pooled[..], &legacy[..]);

        let mut from_slice = pool.acquire();
        encode_frame_into(&msgs, &mut from_slice);
        prop_assert_eq!(&from_slice[..], &legacy[..]);
    }

    /// Both decode paths accept the frame and agree on every message —
    /// shared-payload decoding changes storage, never values. All
    /// `WireMessage` variants round-trip (the generator covers MSG, ACK
    /// with and without labels, and heartbeats).
    #[test]
    fn shared_and_copying_decodes_agree(
        msgs in proptest::collection::vec(arb_message(), 0..24),
    ) {
        let batch: Batch = msgs.iter().cloned().collect();
        let frame: Bytes = batch.encode();

        let copied = Batch::decode(&frame).unwrap();
        let shared = Batch::decode_shared(&frame).unwrap();
        prop_assert_eq!(&copied, &shared);
        prop_assert_eq!(shared.messages(), &msgs[..]);

        // The pooled-vector decode form agrees too.
        let mut out = vec![WireMessage::Heartbeat { label: Label(0), seq: 0 }];
        Batch::decode_shared_into(&frame, &mut out).unwrap();
        prop_assert_eq!(&out[..], &msgs[..]);
    }

    /// Malformed frames are rejected identically by both decode paths
    /// (same error taxonomy at the same cut).
    #[test]
    fn decode_paths_reject_identically(
        msgs in proptest::collection::vec(arb_message(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let batch: Batch = msgs.into_iter().collect();
        let enc = batch.encode();
        let cut = ((enc.len() - 1) as f64 * cut_frac) as usize;
        let prefix = Bytes::copy_from_slice(&enc[..cut]);
        prop_assert_eq!(
            Batch::decode(&prefix).unwrap_err(),
            Batch::decode_shared(&prefix).unwrap_err()
        );
    }

    /// Steady-state encode over a warm pool performs zero buffer
    /// allocations: after the first acquisition, every further frame is
    /// served from the recycled buffer.
    #[test]
    fn warm_pool_stops_creating_buffers(
        msgs in proptest::collection::vec(arb_message(), 1..16),
    ) {
        let pool = BufPool::new(4);
        let batch: Batch = msgs.into_iter().collect();
        for _ in 0..32 {
            let mut frame = pool.acquire();
            batch.encode_into(&mut frame);
        }
        let s = pool.stats();
        prop_assert_eq!(s.created, 1, "only the cold-start allocation");
        prop_assert_eq!(s.recycled, 31);
        prop_assert_eq!(s.discarded, 0);
    }
}

/// Shared-payload decoding really does share: the decoded payloads alias
/// the frame's storage (zero copies), while the legacy path's do not.
#[test]
fn decode_shared_payloads_alias_the_frame() {
    let batch: Batch = vec![
        WireMessage::Msg {
            tag: Tag(1),
            payload: Payload::from("first payload"),
        },
        WireMessage::Ack {
            tag: Tag(1),
            tag_ack: TagAck(2),
            payload: Payload::from("second payload"),
            labels: Some(LabelSet::from_iter([Label(9)])),
        },
    ]
    .into_iter()
    .collect();
    let frame = batch.encode();
    let shared = Batch::decode_shared(&frame).unwrap();
    for (m, original) in shared.messages().iter().zip(batch.messages()) {
        if let (
            Some(WireMessage::Msg { payload, .. } | WireMessage::Ack { payload, .. }),
            Some(WireMessage::Msg { payload: orig, .. } | WireMessage::Ack { payload: orig, .. }),
        ) = (Some(m), Some(original))
        {
            assert_eq!(payload, orig, "values agree");
            // Aliasing check: the shared payload's bytes live inside the
            // frame's address range; a copied payload's do not.
            let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
            let p = payload.as_slice().as_ptr() as usize;
            assert!(
                payload.is_empty() || frame_range.contains(&p),
                "shared payload must alias the frame storage"
            );
            let copied = Batch::decode(&frame).unwrap();
            if let WireMessage::Msg { payload: c, .. } | WireMessage::Ack { payload: c, .. } =
                &copied.messages()[0]
            {
                let cp = c.as_slice().as_ptr() as usize;
                assert!(
                    c.is_empty() || !frame_range.contains(&cp),
                    "copied payload must not alias the frame"
                );
            }
        }
    }
}

/// A `BatchPool`-backed decode loop reuses one vector for every frame.
#[test]
fn batch_pool_decode_loop_is_allocation_flat() {
    let pool = BatchPool::new(2);
    let batch: Batch = (0..8u128)
        .map(|i| WireMessage::Msg {
            tag: Tag(i),
            payload: Payload::from("p"),
        })
        .collect();
    let frame = batch.encode();
    for _ in 0..50 {
        let mut msgs = pool.acquire();
        Batch::decode_shared_into(&frame, &mut msgs).unwrap();
        assert_eq!(msgs.len(), 8);
        pool.release(msgs);
    }
    let s = pool.stats();
    assert_eq!(s.created, 1, "one vector serves the whole loop");
    assert_eq!(s.recycled, 49);
}
