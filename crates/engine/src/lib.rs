//! # `urb-engine`
//!
//! The backend-agnostic per-node driving engine of the `anon-urb`
//! workspace.
//!
//! Three drivers execute the paper's protocols: the discrete-event
//! simulator (`urb-sim`), the threaded runtime (`urb-runtime`) and the
//! single-process test harness (`urb_core::harness`). Before this crate
//! existed each of them re-implemented the same cycle — take a
//! failure-detector snapshot, run one protocol step through the sans-io
//! [`AnonProcess`] trait, collect the URB deliveries, drain the outbox
//! toward the network. The engine owns that cycle once:
//!
//! * [`drive_step`] — the single implementation of "one protocol step":
//!   every backend funnels through this function, so a step is *provably
//!   identical* across the simulator, the runtime and the harness;
//! * [`StepBuffers`] — the reusable outbox/delivery buffers a step fills
//!   (drivers keep one per node or one per loop and reuse it, so the hot
//!   path performs no steady-state allocation);
//! * [`NodeEngine`] — the owning wrapper used by the multi-node drivers:
//!   protocol instance + deterministic RNG stream + cumulative
//!   [`EngineCounters`] + [`ProcessStats`] access;
//! * the **batched message plane** (DESIGN.md D8):
//!   [`StepBuffers::take_batch`] drains a step's whole outbox into one
//!   [`urb_types::Batch`] frame, so routing cost scales with steps, not
//!   messages, while per-message `retransmit_key` identity (the
//!   fair-lossy bookkeeping unit) is preserved;
//! * the **wire-frame plane** (DESIGN.md §10): for backends that cross a
//!   real serialization boundary, [`StepBuffers::take_wire_frame`]
//!   encodes the outbox straight into a pooled buffer (zero per-message
//!   allocation) and [`NodeEngine::receive_frame`] decodes incoming
//!   frames with shared payloads into persistent scratch.
//!
//! What stays backend-specific is exactly what *differs* between backends:
//! where the [`FdSnapshot`] comes from (oracle/heartbeat service keyed by
//! simulated time, membership registry keyed by wall-clock time, or a
//! scripted snapshot in tests) and what happens to the drained batch
//! (event-queue scheduling, channel send, or test inspection).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bytes::Bytes;
use std::collections::{BTreeSet, HashMap};
use urb_types::snapshot::unseal;
use urb_types::{
    encode_frame_into, encode_mux_frame_with_controls_into, AnonProcess, Batch, BufPool,
    CodecError, CompactionReport, Context, Delivery, FdSnapshot, MemoryConfig, MuxBatch, Payload,
    PooledBuf, ProcessStats, RandomSource, SnapshotError, SnapshotReader, SnapshotWriter,
    SplitMix64, Tag, TopicControl, TopicId, WireMessage,
};

/// One input to a protocol step — the three entry points of the paper's
/// pseudocode.
#[derive(Clone, Debug)]
pub enum StepInput {
    /// One Task-1 sweep (the `repeat forever` body).
    Tick,
    /// One incoming wire message (`receive_i`).
    Receive(WireMessage),
    /// An application-level `URB_broadcast(payload)` invocation.
    Broadcast(Payload),
}

/// Reusable buffers one protocol step fills.
///
/// Drivers allocate one of these per node (or per loop) and reuse it for
/// every step; [`drive_step`] clears it first, so after the call it holds
/// exactly what *this* step emitted.
#[derive(Debug, Default)]
pub struct StepBuffers {
    /// Messages the step broadcast (the paper's `broadcast_i`), in order.
    pub outbox: Vec<WireMessage>,
    /// URB-deliveries the step produced, in order.
    pub deliveries: Vec<Delivery>,
}

impl StepBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        StepBuffers::default()
    }

    /// Drains the outbox into one [`Batch`] frame — the batched message
    /// plane. Returns `None` when the step broadcast nothing (no frame,
    /// no routing work). The outbox keeps its allocation.
    pub fn take_batch(&mut self) -> Option<Batch> {
        if self.outbox.is_empty() {
            None
        } else {
            Some(Batch::drain_from(&mut self.outbox))
        }
    }

    /// Encodes and drains the outbox as one **wire frame** through the
    /// zero-copy codec (DESIGN.md §10): acquires a recycled buffer from
    /// `pool`, writes the length-prefixed batch frame with no per-message
    /// allocation, and clears the outbox in place (capacity retained).
    /// Returns `None` when the step broadcast nothing. This is the
    /// serialization-boundary twin of [`StepBuffers::take_batch`], used by
    /// backends that move bytes (the runtime's router) rather than
    /// in-memory batches (the simulator's event queue).
    pub fn take_wire_frame(&mut self, pool: &BufPool) -> Option<PooledBuf> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut frame = pool.acquire();
        encode_frame_into(&self.outbox, &mut frame);
        self.outbox.clear();
        Some(frame)
    }

    /// True when the step neither broadcast nor delivered anything.
    pub fn is_silent(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty()
    }
}

/// Observer of the **choice points** one protocol step opens up.
///
/// Every effect a step produces is a point where a scheduler may later
/// interpose nondeterministically: each emitted wire message becomes a
/// future delivery (or adversarial-drop) decision, and each URB-delivery
/// is where crash-on-delivery adversaries arm. Backends that merely
/// *execute* a schedule (the simulator's event queue, the runtime's
/// channels) drain [`StepBuffers`] wholesale and never need this; the
/// systematic explorer (`urb-check`) hooks it to register every effect as
/// an explorable choice the moment [`drive_step_observed`] surfaces it.
pub trait StepObserver {
    /// One message left the step's outbox (in emission order).
    fn on_emit(&mut self, msg: &WireMessage);
    /// One URB-delivery fired during the step (in delivery order).
    fn on_deliver(&mut self, delivery: &Delivery);
}

/// Executes one protocol step. **The** shared implementation: every
/// backend's step goes through this function.
///
/// Clears `buf`, builds the paper-shaped [`Context`] over it, dispatches
/// `input` to the matching [`AnonProcess`] entry point and returns the
/// assigned [`Tag`] for broadcast inputs (`None` otherwise). The caller
/// supplies the [`FdSnapshot`] taken immediately before the step — the
/// paper's read-only detector variable semantics — because *where* the
/// snapshot comes from is the one genuinely backend-specific part of the
/// cycle.
pub fn drive_step(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
) -> Option<Tag> {
    buf.outbox.clear();
    buf.deliveries.clear();
    let mut ctx = Context::new(rng, fd, &mut buf.outbox, &mut buf.deliveries);
    match input {
        StepInput::Tick => {
            proc.on_tick(&mut ctx);
            None
        }
        StepInput::Receive(msg) => {
            proc.on_receive(msg, &mut ctx);
            None
        }
        StepInput::Broadcast(payload) => Some(proc.urb_broadcast(payload, &mut ctx)),
    }
}

/// [`drive_step`] with choice-point hooks: after the step executes, every
/// emission and delivery it produced is surfaced to `obs`, in order,
/// while the buffers still hold exactly this step's output. This is the
/// engine-level entry point of the exploration plane (DESIGN.md §11):
/// the explorer turns each observed emission into a pending
/// deliver-or-drop choice and each observed delivery into a potential
/// crash point.
pub fn drive_step_observed(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
    obs: &mut dyn StepObserver,
) -> Option<Tag> {
    let tag = drive_step(proc, input, fd, rng, buf);
    surface_effects(buf, obs);
    tag
}

/// Surfaces one finished step's buffered effects to an observer, in
/// order. The one definition both observed entry points share.
fn surface_effects(buf: &StepBuffers, obs: &mut dyn StepObserver) {
    for m in &buf.outbox {
        obs.on_emit(m);
    }
    for d in &buf.deliveries {
        obs.on_deliver(d);
    }
}

/// Cumulative per-node activity counters maintained by [`NodeEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total protocol steps executed.
    pub steps: u64,
    /// Task-1 sweeps among them.
    pub ticks: u64,
    /// Messages received and processed.
    pub receives: u64,
    /// `URB_broadcast` invocations.
    pub broadcasts: u64,
    /// Messages emitted to the outbox across all steps.
    pub messages_out: u64,
    /// URB-deliveries produced across all steps.
    pub deliveries: u64,
    /// Compaction sweeps executed ([`TopicEngine::compact_all`] calls).
    pub compactions: u64,
    /// State entries reclaimed by compaction, in [`ProcessStats::total`]
    /// units (summed over every sweep and topic).
    pub reclaimed: u64,
    /// Tags moved into tombstone rings by compaction.
    pub tombstoned: u64,
    /// Topic instances brought live at runtime
    /// ([`TopicEngine::create_topic`] successes; the statically configured
    /// instances are not counted).
    pub topics_created: u64,
    /// Topics whose retirement drain was initiated
    /// ([`TopicEngine::retire_topic`] successes).
    pub topics_retired: u64,
    /// Retired topic instances whose state was fully reclaimed after the
    /// drain (DESIGN.md §15: every reclaimed instance was retired first).
    pub topics_reclaimed: u64,
}

/// Reusable buffers for the **multiplexed topic plane** (DESIGN.md §12):
/// what [`StepBuffers`] is to one protocol instance, `MuxBuffers` is to a
/// whole [`TopicEngine`] — every emission and delivery carries the
/// [`TopicId`] of the instance that produced it, and the outbox drains as
/// one multiplexed frame regardless of how many topics contributed.
#[derive(Debug, Default)]
pub struct MuxBuffers {
    /// Topic-tagged emissions, grouped in ascending topic order.
    pub outbox: Vec<(TopicId, WireMessage)>,
    /// Topic-tagged URB-deliveries, in production order.
    pub deliveries: Vec<(TopicId, Delivery)>,
    /// Lifecycle control operations (DESIGN.md §15). On egress, a driver
    /// pushes the controls it wants to gossip here and
    /// [`MuxBuffers::take_mux_frame`] rides them on the next frame; on
    /// ingress, [`TopicEngine::receive_mux_frame`] surfaces the received
    /// frame's control section here for the driver to apply (the engine
    /// itself cannot instantiate algorithms — that is driver policy).
    pub controls: Vec<TopicControl>,
}

impl MuxBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        MuxBuffers::default()
    }

    /// Clears all buffers (capacity retained).
    pub fn clear(&mut self) {
        self.outbox.clear();
        self.deliveries.clear();
        self.controls.clear();
    }

    /// True when nothing was emitted and nothing delivered. (Pending
    /// controls do not count: lifecycle operations are driver intent, not
    /// protocol activity — but [`MuxBuffers::take_mux_frame`] still sends
    /// a control-only frame.)
    pub fn is_silent(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty()
    }

    /// Encodes and drains the outbox (plus any pending controls) as one
    /// **multiplexed wire frame** through the zero-copy codec: acquires a
    /// recycled buffer from `pool`, writes the topic-keyed sub-batches
    /// with no per-message allocation
    /// ([`urb_types::encode_mux_frame_with_controls_into`]) and clears the
    /// outbox in place. Returns `None` when nothing was emitted and no
    /// control is pending. With no controls the frame bytes are identical
    /// to the pre-lifecycle format — the static-topic byte-compat
    /// guarantee. The topic-plane twin of [`StepBuffers::take_wire_frame`]:
    /// however many topics a node stepped, one frame leaves.
    pub fn take_mux_frame(&mut self, pool: &BufPool) -> Option<PooledBuf> {
        if self.outbox.is_empty() && self.controls.is_empty() {
            return None;
        }
        let mut frame = pool.acquire();
        encode_mux_frame_with_controls_into(&self.outbox, &self.controls, &mut frame);
        self.outbox.clear();
        self.controls.clear();
        Some(frame)
    }
}

/// The owning per-node engine of the **topic plane**: one protocol
/// instance per [`TopicId`], all sharing a single deterministic RNG
/// stream and one failure-detector view, plus cumulative counters.
///
/// The paper's protocols are per-instance state machines; a node serving
/// many topics runs one instance each and multiplexes their traffic over
/// the shared links (DESIGN.md §12). `TopicEngine` owns that map. With
/// exactly one topic it is bit-for-bit the old single-instance engine —
/// same RNG consumption, same counters — which is what keeps every
/// single-topic artifact byte-identical ([`NodeEngine`] is now a thin
/// wrapper over a one-topic `TopicEngine`).
///
/// Since the dynamic topic control plane (DESIGN.md §15) the map is an
/// interned **slot map**: a sorted directory of `TopicId → slot` entries
/// instead of a dense `Vec` indexed by id. Statically configured engines
/// still get dense ids `0..n` and behave identically; at runtime a driver
/// may [`create_topic`](TopicEngine::create_topic) new instances lazily
/// and [`retire_topic`](TopicEngine::retire_topic) old ones. Retirement is
/// graceful: the slot enters a **draining** state in which it no longer
/// accepts broadcasts but keeps retransmitting (Task 1) until it is
/// quiescent — or a drain budget expires — at which point
/// [`reap_drained`](TopicEngine::reap_drained) pushes its remaining state
/// through the PR-8 compaction path and frees the slot, leaving only a
/// retired-id tombstone.
pub struct TopicEngine {
    /// Live and draining topic instances, sorted ascending by topic id —
    /// the interned slot map. Statically configured engines hold dense
    /// ids `0..n` here. Ordered traversals (ticks, fingerprints,
    /// snapshots, mux encoding) walk this vector; point lookups go
    /// through `directory`.
    slots: Vec<TopicSlot>,
    /// The O(1) id → slot/tombstone directory (DESIGN.md §16), maintained
    /// incrementally by create/retire/reap and rebuilt on restore.
    directory: TopicDirectory,
    /// Tombstones of reaped topics: traffic addressed to these ids is
    /// dropped inert instead of erroring as unknown.
    retired: BTreeSet<TopicId>,
    /// Topics this node has subscribed to (delivery-interest bookkeeping
    /// for drivers; the engine itself delivers per instance regardless).
    subscriptions: BTreeSet<TopicId>,
    /// Remembered memory configuration, applied to late-created instances
    /// so they compact like the statically configured ones.
    memory: Option<MemoryConfig>,
    /// Drain budget: a draining slot that is still not quiescent after
    /// this many [`reap_drained`](TopicEngine::reap_drained) sweeps is
    /// reaped anyway (DESIGN.md §15 quiescence rule).
    drain_limit: u32,
    /// The algorithm name, captured at construction (stable even after
    /// every slot is reaped).
    alg_name: &'static str,
    rng: SplitMix64,
    counters: EngineCounters,
    /// Persistent per-message scratch for the batch/frame ingress paths,
    /// so receive loops allocate nothing in steady state.
    batch_scratch: StepBuffers,
    /// Persistent decoded-message scratch for [`NodeEngine::receive_frame`].
    frame_scratch: Vec<WireMessage>,
    /// Persistent decoded-entry scratch for
    /// [`TopicEngine::receive_mux_frame`].
    mux_scratch: Vec<(TopicId, WireMessage)>,
    /// Persistent decoded-control scratch for
    /// [`TopicEngine::receive_mux_frame`].
    control_scratch: Vec<TopicControl>,
}

/// One entry of the interned topic directory.
struct TopicSlot {
    /// The topic this slot serves.
    topic: TopicId,
    /// The protocol instance.
    proc: Box<dyn AnonProcess + Send>,
    /// True once retirement was requested: no new broadcasts, keep
    /// retransmitting until quiescent or the drain budget expires.
    draining: bool,
    /// Drain sweeps survived so far (compared against
    /// [`TopicEngine::drain_limit`]).
    drain_ticks: u32,
}

/// Default drain budget: a draining topic gets this many reap sweeps to
/// reach quiescence before its state is reclaimed regardless.
pub const DEFAULT_DRAIN_LIMIT: u32 = 32;

/// Directory entry sentinel: the id was never created (or was created and
/// later re-created — entries always reflect the *current* lifecycle).
const DIR_ABSENT: u32 = u32::MAX;
/// Directory entry sentinel: the id was retired and its instance
/// reclaimed — traffic drops inert (the tombstone verdict, one probe).
const DIR_RETIRED: u32 = u32::MAX - 1;
/// How far past the current dense range a new id may land while still
/// growing the dense array instead of falling into the hash-map lane.
/// Ascending creation (the 100k-topics pattern) therefore stays dense
/// end to end; a genuinely sparse id (say `0xDEAD_BEEF` on a 10-topic
/// node) costs one hash probe instead of 4 GiB of array.
const DENSE_DIRECTORY_SLACK: u32 = 4096;

/// The O(1) topic directory (DESIGN.md §16): one entry per known topic
/// id, mapping straight to the slot index — with the retired-tombstone
/// verdict folded into the *same* entry, so the dispatch hot path does
/// exactly one probe where it used to do a binary search over the slot
/// vector plus a `BTreeSet` probe for tombstones (~17 probes at the
/// ROADMAP's 100k-topic target).
///
/// Layout: ids below `dense.len()` live in a dense array (statically
/// configured engines and ascending runtime creation both land here);
/// larger ids fall back to a hash map. Entries are slot indices, or the
/// [`DIR_ABSENT`]/[`DIR_RETIRED`] sentinels. The sorted slot vector
/// remains the source of truth for everything *ordered* — ticks,
/// fingerprints, snapshots, mux encoding — the directory only answers
/// point lookups, and create/retire/reap maintain it incrementally.
struct TopicDirectory {
    /// Entries for the dense id range `0..dense.len()`.
    dense: Vec<u32>,
    /// Fallback entries for ids beyond the dense range. Never iterated —
    /// all ordered traversal goes over the slot vector — so map order
    /// cannot leak into any deterministic artifact.
    sparse: HashMap<u32, u32>,
}

impl TopicDirectory {
    /// Directory for a statically configured engine: dense ids `0..n`,
    /// each mapped to its own slot index.
    fn with_dense(n: usize) -> Self {
        TopicDirectory {
            dense: (0..n as u32).collect(),
            sparse: HashMap::new(),
        }
    }

    /// The single hot-path probe: slot index, [`DIR_RETIRED`] or
    /// [`DIR_ABSENT`].
    #[inline]
    fn entry(&self, id: u32) -> u32 {
        match self.dense.get(id as usize) {
            Some(&e) => e,
            None => self.sparse.get(&id).copied().unwrap_or(DIR_ABSENT),
        }
    }

    /// Writes one entry, growing the dense range when `id` lands within
    /// [`DENSE_DIRECTORY_SLACK`] of it (migrating any hash-map entries the
    /// growth swallows). Control-plane only — the hot path never writes.
    fn set(&mut self, id: u32, entry: u32) {
        if (id as usize) < self.dense.len() {
            self.dense[id as usize] = entry;
        } else if entry == DIR_ABSENT {
            self.sparse.remove(&id);
        } else if (id as u64) < self.dense.len() as u64 + DENSE_DIRECTORY_SLACK as u64 {
            let new_len = id as usize + 1;
            self.dense.resize(new_len, DIR_ABSENT);
            if !self.sparse.is_empty() {
                let swallowed: Vec<u32> = self
                    .sparse
                    .keys()
                    .copied()
                    .filter(|k| (*k as usize) < new_len)
                    .collect();
                for k in swallowed {
                    let v = self.sparse.remove(&k).expect("key just listed");
                    self.dense[k as usize] = v;
                }
            }
            self.dense[id as usize] = entry;
        } else {
            self.sparse.insert(id, entry);
        }
    }

    /// Rebuilds the directory from scratch — the snapshot-restore path,
    /// where the retired set is replaced wholesale.
    fn rebuild(slots: &[TopicSlot], retired: &BTreeSet<TopicId>) -> Self {
        let mut dir = TopicDirectory {
            dense: Vec::new(),
            sparse: HashMap::new(),
        };
        for (i, s) in slots.iter().enumerate() {
            dir.set(s.topic.0, i as u32);
        }
        for t in retired {
            dir.set(t.0, DIR_RETIRED);
        }
        dir
    }
}

/// What one directory probe says about a topic id — the four lifecycle
/// verdicts of DESIGN.md §15, resolved in O(1) (DESIGN.md §16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopicState {
    /// A live instance exists at this slot index (accepts broadcasts).
    Live(usize),
    /// A draining instance exists at this slot index (still receives and
    /// retransmits, refuses new broadcasts).
    Draining(usize),
    /// The id was retired and reclaimed: traffic drops inert.
    Retired,
    /// The engine has never known this id.
    Unknown,
}

impl TopicEngine {
    /// Builds an engine over `instances` (index = topic id), sharing one
    /// RNG stream across every instance — the per-node randomness budget
    /// does not grow with topic count, and a one-topic engine consumes
    /// the stream exactly like the pre-topic [`NodeEngine`].
    pub fn new(instances: Vec<Box<dyn AnonProcess + Send>>, rng: SplitMix64) -> Self {
        assert!(!instances.is_empty(), "an engine needs at least one topic");
        let alg_name = instances[0].algorithm_name();
        let directory = TopicDirectory::with_dense(instances.len());
        TopicEngine {
            directory,
            slots: instances
                .into_iter()
                .enumerate()
                .map(|(t, proc)| TopicSlot {
                    topic: TopicId(t as u32),
                    proc,
                    draining: false,
                    drain_ticks: 0,
                })
                .collect(),
            retired: BTreeSet::new(),
            subscriptions: BTreeSet::new(),
            memory: None,
            drain_limit: DEFAULT_DRAIN_LIMIT,
            alg_name,
            rng,
            counters: EngineCounters::default(),
            batch_scratch: StepBuffers::new(),
            frame_scratch: Vec::new(),
            mux_scratch: Vec::new(),
            control_scratch: Vec::new(),
        }
    }

    /// Single-topic convenience constructor.
    pub fn single(proc: Box<dyn AnonProcess + Send>, rng: SplitMix64) -> Self {
        TopicEngine::new(vec![proc], rng)
    }

    /// Number of topic instances this engine currently holds (live plus
    /// draining; reaped topics no longer count).
    pub fn topic_count(&self) -> usize {
        self.slots.len()
    }

    /// Slot index of `topic`, if an instance (live or draining) exists.
    /// One directory probe (DESIGN.md §16) — this used to be a binary
    /// search over the slot vector.
    #[inline]
    fn slot_index(&self, topic: TopicId) -> Option<usize> {
        let e = self.directory.entry(topic.0);
        if e < DIR_RETIRED {
            Some(e as usize)
        } else {
            None
        }
    }

    /// Resolves `topic`'s full lifecycle verdict in one directory probe:
    /// live/draining (with the slot index), retired tombstone, or never
    /// known. This is the dispatch hot path's entire lookup — and the
    /// surface the equivalence tests and A/B benches compare against a
    /// binary-search model.
    #[inline]
    pub fn resolve(&self, topic: TopicId) -> TopicState {
        match self.directory.entry(topic.0) {
            DIR_ABSENT => TopicState::Unknown,
            DIR_RETIRED => TopicState::Retired,
            i => {
                let i = i as usize;
                if self.slots[i].draining {
                    TopicState::Draining(i)
                } else {
                    TopicState::Live(i)
                }
            }
        }
    }

    /// Slot index of `topic`, panicking when absent — the contract of the
    /// stepping APIs: drivers route only to topics they know are present.
    fn slot_index_or_panic(&self, topic: TopicId) -> usize {
        self.slot_index(topic).unwrap_or_else(|| {
            panic!("engine serves no instance for {topic} (not created, or already reclaimed)")
        })
    }

    // ---- dynamic lifecycle (DESIGN.md §15) --------------------------

    /// True when `topic` has a **live** instance: created (statically or
    /// dynamically), not retired. Draining topics are no longer live —
    /// they accept no new broadcasts.
    pub fn is_live(&self, topic: TopicId) -> bool {
        self.slot_index(topic)
            .is_some_and(|i| !self.slots[i].draining)
    }

    /// True when `topic` holds an instance at all — live or draining.
    /// Draining instances still receive and retransmit (that is the point
    /// of the drain), they just refuse new broadcasts.
    pub fn has_instance(&self, topic: TopicId) -> bool {
        self.slot_index(topic).is_some()
    }

    /// True when `topic` was retired and its instance reclaimed (the
    /// tombstone state; cleared if the id is later re-created). One
    /// directory probe — the ordered `retired` set is kept only for
    /// fingerprints and snapshots, which need ascending iteration.
    pub fn is_retired(&self, topic: TopicId) -> bool {
        self.directory.entry(topic.0) == DIR_RETIRED
    }

    /// The live topic ids, ascending (draining topics excluded).
    pub fn live_topics(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.slots.iter().filter(|s| !s.draining).map(|s| s.topic)
    }

    /// Every topic currently holding an instance — live **and** draining —
    /// ascending. This is the driver's sweep directory: Task-1 ticks must
    /// cover draining instances too (retransmission is what drains them),
    /// so sweeping `live_topics` alone would starve the drain.
    pub fn instance_topics(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.slots.iter().map(|s| s.topic)
    }

    /// Sets the drain budget (sweeps a draining topic may survive without
    /// reaching quiescence before it is reaped anyway).
    pub fn set_drain_limit(&mut self, limit: u32) {
        self.drain_limit = limit;
    }

    /// Brings `topic` live with the given protocol instance — the lazy
    /// instantiation entry point of the control plane. Returns `false`
    /// (and drops `proc`) when an instance already exists, live or
    /// draining: creates are idempotent. A previously retired id is
    /// **re-created clean**: the tombstone is cleared and the fresh
    /// instance starts with empty state. The engine's remembered memory
    /// configuration (if any) is applied so late instances compact like
    /// static ones.
    pub fn create_topic(&mut self, topic: TopicId, proc: Box<dyn AnonProcess + Send>) -> bool {
        match self.slots.binary_search_by_key(&topic, |s| s.topic) {
            Ok(_) => false,
            Err(at) => {
                let mut proc = proc;
                if let Some(cfg) = self.memory {
                    proc.configure_memory(cfg);
                }
                self.retired.remove(&topic);
                self.slots.insert(
                    at,
                    TopicSlot {
                        topic,
                        proc,
                        draining: false,
                        drain_ticks: 0,
                    },
                );
                // Incremental directory maintenance: the new id maps to
                // its slot (clearing any tombstone entry), and every slot
                // the insertion shifted right is re-pointed. Ascending
                // creation inserts at the end, so the fix-up loop is
                // empty on the 100k-topics growth pattern.
                self.directory.set(topic.0, at as u32);
                for j in (at + 1)..self.slots.len() {
                    self.directory.set(self.slots[j].topic.0, j as u32);
                }
                self.counters.topics_created += 1;
                true
            }
        }
    }

    /// Initiates `topic`'s retirement: the instance stops accepting
    /// broadcasts and enters the **draining** state, in which it keeps
    /// retransmitting (Task 1 still sweeps it) until it is quiescent or
    /// the drain budget expires; [`reap_drained`](TopicEngine::reap_drained)
    /// then reclaims its state. Returns `false` when `topic` has no live
    /// instance (absent, already draining, or already reclaimed).
    pub fn retire_topic(&mut self, topic: TopicId) -> bool {
        match self.slot_index(topic) {
            Some(i) if !self.slots[i].draining => {
                self.slots[i].draining = true;
                self.slots[i].drain_ticks = 0;
                self.counters.topics_retired += 1;
                true
            }
            _ => false,
        }
    }

    /// Reaps every draining slot that is quiescent — or has exhausted the
    /// drain budget — under the caller's failure-detector snapshot: the
    /// instance's remaining state is pushed through the PR-8 compaction
    /// path ([`AnonProcess::compact`]), whatever survives is counted as
    /// reclaimed, and the slot is freed, leaving a retired-id tombstone.
    /// Returns the number of instances reclaimed. Called automatically at
    /// the end of every [`tick_all`](TopicEngine::tick_all); a no-op (and
    /// zero cost) for engines with nothing draining.
    pub fn reap_drained(&mut self, fd: &FdSnapshot) -> usize {
        if self.slots.iter().all(|s| !s.draining) {
            return 0;
        }
        let drain_limit = self.drain_limit;
        let mut reaped = 0usize;
        let mut i = 0usize;
        while i < self.slots.len() {
            if !self.slots[i].draining {
                i += 1;
                continue;
            }
            let slot = &mut self.slots[i];
            slot.drain_ticks += 1;
            if !slot.proc.is_quiescent() && slot.drain_ticks <= drain_limit {
                i += 1;
                continue;
            }
            // Quiescent (the drain succeeded) or out of budget: compact,
            // count what is left, free the slot.
            let report = slot.proc.compact(fd);
            let remaining = slot.proc.stats().total();
            self.counters.reclaimed += (report.reclaimed + remaining) as u64;
            self.counters.tombstoned += report.tombstoned as u64;
            self.counters.topics_reclaimed += 1;
            let slot = self.slots.remove(i);
            self.retired.insert(slot.topic);
            self.subscriptions.remove(&slot.topic);
            // Incremental directory maintenance: the reaped id becomes a
            // tombstone entry and every slot the removal shifted left is
            // re-pointed.
            self.directory.set(slot.topic.0, DIR_RETIRED);
            for j in i..self.slots.len() {
                self.directory.set(self.slots[j].topic.0, j as u32);
            }
            reaped += 1;
        }
        reaped
    }

    /// Records this node's delivery interest in `topic`. Pure
    /// bookkeeping at the engine level (drivers decide what subscription
    /// means for routing); returns `false` when already subscribed.
    pub fn subscribe(&mut self, topic: TopicId) -> bool {
        self.subscriptions.insert(topic)
    }

    /// Drops this node's delivery interest in `topic`; returns `false`
    /// when there was no subscription.
    pub fn unsubscribe(&mut self, topic: TopicId) -> bool {
        self.subscriptions.remove(&topic)
    }

    /// True when this node recorded delivery interest in `topic`.
    pub fn is_subscribed(&self, topic: TopicId) -> bool {
        self.subscriptions.contains(&topic)
    }

    /// Runs one step of `topic`'s instance (see [`drive_step`]) and
    /// updates the counters. Panics when `topic` has no instance — the
    /// stepping APIs are for topics the driver knows are present
    /// (lifecycle-aware drivers consult [`TopicEngine::is_live`] /
    /// [`TopicEngine::has_instance`] first).
    pub fn step(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        let i = self.slot_index_or_panic(topic);
        self.step_slot(i, input, fd, buf)
    }

    /// [`TopicEngine::step`] with the slot already resolved — the
    /// directory-bypassing core every batched path funnels through once
    /// it has probed (or run-length-cached) the slot index. Counter and
    /// RNG behavior are exactly `step`'s.
    fn step_slot(
        &mut self,
        i: usize,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        self.counters.steps += 1;
        match &input {
            StepInput::Tick => self.counters.ticks += 1,
            StepInput::Receive(_) => self.counters.receives += 1,
            StepInput::Broadcast(_) => self.counters.broadcasts += 1,
        }
        let proc = self.slots[i].proc.as_mut();
        let tag = drive_step(proc, input, fd, &mut self.rng, buf);
        self.counters.messages_out += buf.outbox.len() as u64;
        self.counters.deliveries += buf.deliveries.len() as u64;
        tag
    }

    /// [`TopicEngine::step`] through the choice-point hooks of
    /// [`drive_step_observed`]: counters update exactly as for `step`,
    /// and every emission/delivery of the step is surfaced to `obs`.
    pub fn step_observed(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
        obs: &mut dyn StepObserver,
    ) -> Option<Tag> {
        let tag = self.step(topic, input, fd, buf);
        surface_effects(buf, obs);
        tag
    }

    /// Steps `topic` and appends its tagged effects to `mux` (which is
    /// *not* cleared — successive topic steps accumulate into one
    /// multiplexed outbox, drained by [`MuxBuffers::take_mux_frame`]).
    pub fn step_mux(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        mux: &mut MuxBuffers,
    ) -> Option<Tag> {
        let i = self.slot_index_or_panic(topic);
        self.step_mux_slot(i, topic, input, fd, mux)
    }

    /// [`TopicEngine::step_mux`] with the slot already resolved (see
    /// [`TopicEngine::step_slot`]).
    fn step_mux_slot(
        &mut self,
        i: usize,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        mux: &mut MuxBuffers,
    ) -> Option<Tag> {
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        let tag = self.step_slot(i, input, fd, &mut scratch);
        mux.outbox
            .extend(scratch.outbox.drain(..).map(|m| (topic, m)));
        mux.deliveries
            .extend(scratch.deliveries.drain(..).map(|d| (topic, d)));
        self.batch_scratch = scratch;
        tag
    }

    /// One Task-1 sweep of **every** topic instance — live *and* draining
    /// (a draining instance keeps retransmitting; that is what drains it)
    /// — ascending by topic, all effects accumulated into `mux` (cleared
    /// first). This is "one node tick" on the topic plane: however many
    /// instances swept, the caller drains exactly one multiplexed frame.
    /// Finishes with a [`reap_drained`](TopicEngine::reap_drained) sweep,
    /// which is free when nothing is draining.
    pub fn tick_all(&mut self, fd: &FdSnapshot, mux: &mut MuxBuffers) {
        mux.clear();
        // Slots are walked by index — the sweep *is* the directory, no
        // per-topic lookup needed (nothing reshapes the slot vector
        // mid-sweep; the reap below runs after).
        let mut i = 0;
        while i < self.slots.len() {
            let topic = self.slots[i].topic;
            self.step_mux_slot(i, topic, StepInput::Tick, fd, mux);
            i += 1;
        }
        self.reap_drained(fd);
    }

    /// Feeds every entry of a received **multiplexed frame** through the
    /// matching topic instance: decodes with shared payloads into a
    /// persistent scratch (zero copies, zero steady-state allocation),
    /// then steps per message. `before_each` runs before each step and
    /// supplies the failure-detector snapshot it must observe. Effects
    /// accumulate into `mux` (cleared first).
    ///
    /// Lifecycle interplay (DESIGN.md §15):
    /// * entries addressed to a **retired** topic are dropped inert — a
    ///   reclaimed instance has no state to consult, and late
    ///   retransmissions from slower peers are expected;
    /// * entries addressed to a topic this engine has **never known** are
    ///   a routing bug (or a create that has not landed yet), reported as
    ///   [`MuxIngressError::UnknownTopic`] before any message is stepped —
    ///   lossy-tolerant drivers treat the whole frame like a lost message
    ///   and rely on retransmission;
    /// * the frame's [`TopicControl`] section is surfaced into
    ///   [`MuxBuffers::controls`] for the driver to apply — instantiation
    ///   policy (which `Algorithm`, whether to honor a create) lives in
    ///   the driver, not the engine.
    pub fn receive_mux_frame(
        &mut self,
        frame: &Bytes,
        mux: &mut MuxBuffers,
        mut before_each: impl FnMut(TopicId, &WireMessage) -> FdSnapshot,
    ) -> Result<(), MuxIngressError> {
        let mut entries = std::mem::take(&mut self.mux_scratch);
        let mut controls = std::mem::take(&mut self.control_scratch);
        if let Err(e) =
            MuxBatch::decode_shared_with_controls_into(frame, &mut entries, &mut controls)
        {
            self.mux_scratch = entries;
            self.control_scratch = controls;
            return Err(MuxIngressError::Codec(e));
        }
        // Pre-pass: reject a frame addressing a never-known topic before
        // any message is stepped. MuxBatch sub-batches are ascending by
        // topic, so consecutive entries share their topic in runs — one
        // directory probe per run, not per entry (DESIGN.md §16).
        let mut run: Option<(TopicId, u32)> = None;
        for &(topic, _) in entries.iter() {
            let entry = match run {
                Some((t, e)) if t == topic => e,
                _ => {
                    let e = self.directory.entry(topic.0);
                    run = Some((topic, e));
                    e
                }
            };
            if entry == DIR_ABSENT {
                self.mux_scratch = entries;
                self.control_scratch = controls;
                return Err(MuxIngressError::UnknownTopic(topic));
            }
        }
        mux.clear();
        // Stepping loop: the same run-length rule resolves each
        // sub-batch's slot once; retired runs drop inert without a step.
        let mut run: Option<(TopicId, u32)> = None;
        for (topic, msg) in entries.drain(..) {
            let entry = match run {
                Some((t, e)) if t == topic => e,
                _ => {
                    let e = self.directory.entry(topic.0);
                    run = Some((topic, e));
                    e
                }
            };
            if entry >= DIR_RETIRED {
                // Retired: drop inert.
                continue;
            }
            let fd = before_each(topic, &msg);
            self.step_mux_slot(entry as usize, topic, StepInput::Receive(msg), &fd, mux);
        }
        mux.controls.append(&mut controls);
        self.mux_scratch = entries;
        self.control_scratch = controls;
        Ok(())
    }

    /// True when **every** topic instance is quiescent. A draining,
    /// not-yet-reaped instance blocks quiescence exactly like a live one
    /// (the drain is bounded by the drain budget, so this resolves).
    pub fn is_quiescent(&self) -> bool {
        self.slots
            .iter()
            .all(|s| !s.draining && s.proc.is_quiescent())
    }

    /// One topic's quiescence predicate (panics when `topic` has no
    /// instance).
    pub fn topic_is_quiescent(&self, topic: TopicId) -> bool {
        self.slots[self.slot_index_or_panic(topic)]
            .proc
            .is_quiescent()
    }

    /// Aggregate state-size snapshot: the field-wise sum over every topic
    /// instance (single topic: exactly that instance's stats). Reclaimed
    /// instances contribute nothing — that is the point of reclamation.
    pub fn stats(&self) -> ProcessStats {
        let mut total = ProcessStats::default();
        for slot in &self.slots {
            let s = slot.proc.stats();
            total.msg_set += s.msg_set;
            total.my_acks += s.my_acks;
            total.all_ack_entries += s.all_ack_entries;
            total.delivered += s.delivered;
            total.label_counters += s.label_counters;
        }
        total
    }

    /// One topic instance's state-size snapshot (panics when `topic` has
    /// no instance).
    pub fn stats_for(&self, topic: TopicId) -> ProcessStats {
        self.slots[self.slot_index_or_panic(topic)].proc.stats()
    }

    /// The wrapped protocol's short name (all topics run the same
    /// algorithm; captured at construction, stable under reclamation).
    pub fn algorithm_name(&self) -> &'static str {
        self.alg_name
    }

    /// Cumulative activity counters, aggregated across topics.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Direct access to one topic's protocol instance (diagnostics only;
    /// stepping must go through [`TopicEngine::step`]). Panics when
    /// `topic` has no instance.
    pub fn protocol(&self, topic: TopicId) -> &dyn AnonProcess {
        self.slots[self.slot_index_or_panic(topic)].proc.as_ref()
    }

    /// A deterministic digest of this engine's *semantic* state across
    /// every topic instance: per-topic [`ProcessStats`], quiescence and
    /// the algorithm name — deliberately **not** the history counters, so
    /// two engines that converged to the same protocol state through
    /// different schedules digest equally. The exploration plane folds
    /// these per-node digests (plus its own pending-message and crash-set
    /// hashes) into the state hash it prunes on (DESIGN.md §11). The
    /// digest is approximate: distinct internal states with equal sizes
    /// can collide, which makes pruning coarser but never suppresses a
    /// violation checked before pruning.
    pub fn fingerprint(&self) -> u64 {
        fn fold(h: &mut u64, word: u64) {
            for b in word.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.algorithm_name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for slot in &self.slots {
            let s = slot.proc.stats();
            // For a statically configured engine the topic ids are dense
            // (slot.topic.0 == index), so this folds exactly the bytes
            // the pre-lifecycle digest folded — static digests (and the
            // explorer's persistent state-hash caches) are unchanged.
            fold(&mut h, slot.topic.0 as u64);
            for field in [
                s.msg_set,
                s.my_acks,
                s.all_ack_entries,
                s.delivered,
                s.label_counters,
            ] {
                fold(&mut h, field as u64);
            }
            fold(&mut h, u64::from(slot.proc.is_quiescent()));
            if slot.draining {
                // Folded only for draining slots, so static engines (and
                // dynamic ones before any retirement) digest as before.
                fold(&mut h, 0xD12A_113B_u64);
                fold(&mut h, slot.drain_ticks as u64);
            }
        }
        for t in &self.retired {
            fold(&mut h, 0x2E71_12ED_u64);
            fold(&mut h, t.0 as u64);
        }
        h
    }

    /// Switches **every** topic instance into bounded-memory mode
    /// (DESIGN.md §14). Call before stepping begins; with no call, the
    /// engine never compacts and behaves byte-identically to the
    /// pre-memory-plane engine.
    pub fn configure_memory(&mut self, cfg: MemoryConfig) {
        self.memory = Some(cfg);
        for slot in &mut self.slots {
            slot.proc.configure_memory(cfg);
        }
    }

    /// One compaction sweep over every topic instance, under the caller's
    /// current failure-detector snapshot. Drivers call this after their
    /// per-topic Task-1 sweeps; an engine whose memory mode was never
    /// configured reports an all-zero sweep and changes nothing. Totals
    /// accumulate into [`EngineCounters::reclaimed`] /
    /// [`EngineCounters::tombstoned`].
    pub fn compact_all(&mut self, fd: &FdSnapshot) -> CompactionReport {
        let mut total = CompactionReport::default();
        for slot in &mut self.slots {
            total.absorb(slot.proc.compact(fd));
        }
        self.counters.compactions += 1;
        self.counters.reclaimed += total.reclaimed as u64;
        self.counters.tombstoned += total.tombstoned as u64;
        total
    }

    /// Serializes the whole engine — algorithm, per-topic protocol state,
    /// the shared RNG stream position and the cumulative counters — into a
    /// sealed snapshot envelope (DESIGN.md §14). Byte-deterministic: two
    /// engines with equal state produce identical bytes.
    ///
    /// Errors with [`SnapshotError::Malformed`] when the wrapped algorithm
    /// does not support snapshots (the baseline broadcasts keep no
    /// reconstructible state).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_str(self.algorithm_name());
        w.put_u64(self.slots.len() as u64);
        w.put_u64(self.rng.state());
        let c = self.counters;
        for v in [
            c.steps,
            c.ticks,
            c.receives,
            c.broadcasts,
            c.messages_out,
            c.deliveries,
            c.compactions,
            c.reclaimed,
            c.tombstoned,
            c.topics_created,
            c.topics_retired,
            c.topics_reclaimed,
        ] {
            w.put_u64(v);
        }
        for slot in &self.slots {
            let body = slot.proc.save_state().ok_or_else(|| {
                SnapshotError::Malformed(format!(
                    "algorithm {:?} (topic {}) does not support snapshots",
                    self.algorithm_name(),
                    slot.topic
                ))
            })?;
            w.put_u64(slot.topic.0 as u64);
            w.put_u64(u64::from(slot.draining));
            w.put_u64(slot.drain_ticks as u64);
            w.put_bytes(&body);
        }
        w.put_u64(self.retired.len() as u64);
        for t in &self.retired {
            w.put_u64(t.0 as u64);
        }
        w.put_u64(self.subscriptions.len() as u64);
        for t in &self.subscriptions {
            w.put_u64(t.0 as u64);
        }
        Ok(w.into_envelope())
    }

    /// Restores a snapshot written by [`TopicEngine::save_snapshot`] into
    /// this engine, which must have been **freshly built with the same
    /// configuration** (same algorithm, same topic count, same
    /// [`TopicEngine::configure_memory`] call if any — the memory config
    /// is deployment configuration, not persisted state). The RNG resumes
    /// at the exact saved stream position, so a restored engine draws the
    /// same randomness the crashed one would have.
    ///
    /// On error the engine may be partially overwritten and must be
    /// discarded — drivers always restore into a throwaway fresh engine.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let body = unseal(bytes)?;
        let mut r = SnapshotReader::new(body);
        let alg = r.get_str()?;
        if alg != self.algorithm_name() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot is for algorithm {alg:?}, engine runs {:?}",
                self.algorithm_name()
            )));
        }
        let topics = r.get_u64()? as usize;
        if topics != self.slots.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {topics} topics, engine serves {}",
                self.slots.len()
            )));
        }
        let rng_state = r.get_u64()?;
        let mut counters = EngineCounters::default();
        for slot in [
            &mut counters.steps,
            &mut counters.ticks,
            &mut counters.receives,
            &mut counters.broadcasts,
            &mut counters.messages_out,
            &mut counters.deliveries,
            &mut counters.compactions,
            &mut counters.reclaimed,
            &mut counters.tombstoned,
            &mut counters.topics_created,
            &mut counters.topics_retired,
            &mut counters.topics_reclaimed,
        ] {
            *slot = r.get_u64()?;
        }
        for i in 0..self.slots.len() {
            let topic = TopicId(r.get_u64()? as u32);
            if self.slots[i].topic != topic {
                // The engine must be rebuilt with the snapshot's exact
                // topic directory; drivers reconstruct dynamic instances
                // (via the control journal) before restoring.
                return Err(SnapshotError::Malformed(format!(
                    "snapshot slot {i} is {topic}, engine has {}",
                    self.slots[i].topic
                )));
            }
            let draining = r.get_u64()? != 0;
            let drain_ticks = r.get_u64()? as u32;
            self.slots[i].proc.restore_state(r.get_bytes()?)?;
            self.slots[i].draining = draining;
            self.slots[i].drain_ticks = drain_ticks;
        }
        let retired = r.get_u64()? as usize;
        let mut retired_set = BTreeSet::new();
        for _ in 0..retired {
            retired_set.insert(TopicId(r.get_u64()? as u32));
        }
        let subs = r.get_u64()? as usize;
        let mut sub_set = BTreeSet::new();
        for _ in 0..subs {
            sub_set.insert(TopicId(r.get_u64()? as u32));
        }
        r.finish()?;
        self.rng = SplitMix64::from_state(rng_state);
        self.counters = counters;
        // The retired set was replaced wholesale: rebuild the O(1)
        // directory so every tombstone (and every slot) resolves again.
        self.directory = TopicDirectory::rebuild(&self.slots, &retired_set);
        self.retired = retired_set;
        self.subscriptions = sub_set;
        Ok(())
    }
}

impl std::fmt::Debug for TopicEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopicEngine")
            .field("algorithm", &self.algorithm_name())
            .field("topics", &self.slots.len())
            .field("retired", &self.retired.len())
            .field("counters", &self.counters)
            .finish()
    }
}

/// Errors of the multiplexed ingress path
/// ([`TopicEngine::receive_mux_frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxIngressError {
    /// The frame bytes were malformed.
    Codec(CodecError),
    /// The frame addressed a topic this engine does not serve (a routing
    /// bug — lanes are supposed to shard by topic).
    UnknownTopic(TopicId),
}

impl std::fmt::Display for MuxIngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxIngressError::Codec(e) => write!(f, "mux frame codec error: {e}"),
            MuxIngressError::UnknownTopic(t) => write!(f, "mux frame for unserved topic {t}"),
        }
    }
}

impl std::error::Error for MuxIngressError {}

/// The owning per-node engine used by single-instance drivers: one
/// protocol instance, its deterministic RNG stream, and counters.
///
/// Since the topic plane (DESIGN.md §12) this is a thin wrapper over a
/// one-topic [`TopicEngine`] — there is exactly one stepping
/// implementation — kept because most call sites (the test harness, the
/// exploration plane's single-topic scenarios, the A/B codec harness)
/// genuinely drive one instance and should not spell `TopicId::ZERO`.
pub struct NodeEngine {
    inner: TopicEngine,
}

impl NodeEngine {
    /// Wraps a protocol instance with its own seeded RNG stream.
    pub fn new(proc: Box<dyn AnonProcess + Send>, rng: SplitMix64) -> Self {
        NodeEngine {
            inner: TopicEngine::single(proc, rng),
        }
    }

    /// Runs one step (see [`drive_step`]) and updates the counters.
    pub fn step(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        self.inner.step(TopicId::ZERO, input, fd, buf)
    }

    /// [`NodeEngine::step`] through the choice-point hooks of
    /// [`drive_step_observed`]: counters update exactly as for `step`,
    /// and every emission/delivery of the step is surfaced to `obs`.
    pub fn step_observed(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
        obs: &mut dyn StepObserver,
    ) -> Option<Tag> {
        self.inner.step_observed(TopicId::ZERO, input, fd, buf, obs)
    }

    /// A deterministic digest of this engine's *semantic* state (see
    /// [`TopicEngine::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    /// Feeds every message of a received batch through the engine,
    /// accumulating all emissions into `buf` (which is cleared once, up
    /// front). `before_each` runs before each message's step — backends
    /// use it to update their failure-detector service and return the
    /// fresh snapshot the step must observe.
    pub fn receive_batch(
        &mut self,
        batch: Batch,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) {
        buf.outbox.clear();
        buf.deliveries.clear();
        // Reuse the engine-owned scratch (moved out for the loop so `step`
        // can borrow `self` mutably, moved back after — capacity is kept).
        let mut scratch = std::mem::take(&mut self.inner.batch_scratch);
        for msg in batch {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.inner.batch_scratch = scratch;
    }

    /// Feeds every message of a received **wire frame** through the
    /// engine: decodes the frame with shared payloads (zero copies — each
    /// decoded payload is a refcounted view of `frame`, see
    /// [`Batch::decode_shared_into`]) into a persistent scratch vector,
    /// then steps exactly like [`NodeEngine::receive_batch`]. The
    /// serialization-boundary ingress twin of
    /// [`StepBuffers::take_wire_frame`]; in steady state the whole
    /// decode-and-step loop allocates only what the protocol itself
    /// retains.
    ///
    /// Errors only on a malformed frame, which in-process backends treat
    /// as a bug (their frames come from [`StepBuffers::take_wire_frame`]).
    pub fn receive_frame(
        &mut self,
        frame: &Bytes,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) -> Result<(), CodecError> {
        let mut msgs = std::mem::take(&mut self.inner.frame_scratch);
        if let Err(e) = Batch::decode_shared_into(frame, &mut msgs) {
            self.inner.frame_scratch = msgs;
            return Err(e);
        }
        buf.outbox.clear();
        buf.deliveries.clear();
        let mut scratch = std::mem::take(&mut self.inner.batch_scratch);
        for msg in msgs.drain(..) {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.inner.batch_scratch = scratch;
        self.inner.frame_scratch = msgs;
        Ok(())
    }

    /// The wrapped protocol's quiescence predicate.
    pub fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }

    /// The wrapped protocol's state-size snapshot (experiment E9).
    pub fn stats(&self) -> ProcessStats {
        self.inner.stats()
    }

    /// The wrapped protocol's short name.
    pub fn algorithm_name(&self) -> &'static str {
        self.inner.algorithm_name()
    }

    /// Cumulative activity counters.
    pub fn counters(&self) -> EngineCounters {
        self.inner.counters()
    }

    /// Direct access to the protocol instance (diagnostics only; stepping
    /// must go through [`NodeEngine::step`]).
    pub fn protocol(&self) -> &dyn AnonProcess {
        self.inner.protocol(TopicId::ZERO)
    }

    /// Switches the instance into bounded-memory mode (see
    /// [`TopicEngine::configure_memory`]).
    pub fn configure_memory(&mut self, cfg: MemoryConfig) {
        self.inner.configure_memory(cfg);
    }

    /// One compaction sweep (see [`TopicEngine::compact_all`]).
    pub fn compact(&mut self, fd: &FdSnapshot) -> CompactionReport {
        self.inner.compact_all(fd)
    }

    /// Serializes the engine (see [`TopicEngine::save_snapshot`]).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.inner.save_snapshot()
    }

    /// Restores a snapshot into this freshly-built engine (see
    /// [`TopicEngine::restore_snapshot`]).
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.restore_snapshot(bytes)
    }
}

impl std::fmt::Debug for NodeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeEngine")
            .field("algorithm", &self.inner.algorithm_name())
            .field("counters", &self.inner.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{Label, LabelSet, TagAck, WireKind};

    /// A scripted protocol: acks every MSG, re-broadcasts on tick.
    struct Scripted {
        pending: Vec<WireMessage>,
    }

    impl AnonProcess for Scripted {
        fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
            let tag = Tag::random(ctx.rng);
            let msg = WireMessage::Msg { tag, payload };
            self.pending.push(msg.clone());
            ctx.broadcast(msg);
            tag
        }

        fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
            if let WireMessage::Msg { tag, payload } = msg {
                let tag_ack = TagAck::random(ctx.rng);
                ctx.broadcast(WireMessage::Ack {
                    tag,
                    tag_ack,
                    payload: payload.clone(),
                    labels: Some(LabelSet::from_iter([Label(1)])),
                });
                ctx.deliver(tag, payload, false);
            }
        }

        fn on_tick(&mut self, ctx: &mut Context<'_>) {
            for m in &self.pending {
                ctx.broadcast(m.clone());
            }
        }

        fn is_quiescent(&self) -> bool {
            self.pending.is_empty()
        }

        fn stats(&self) -> ProcessStats {
            ProcessStats {
                msg_set: self.pending.len(),
                ..ProcessStats::default()
            }
        }

        fn algorithm_name(&self) -> &'static str {
            "scripted"
        }

        fn compact(&mut self, _fd: &FdSnapshot) -> CompactionReport {
            // Scripted "stability": every pending message is reclaimable.
            let reclaimed = self.pending.len();
            self.pending.clear();
            CompactionReport {
                reclaimed,
                tombstoned: reclaimed,
            }
        }

        fn save_state(&self) -> Option<Vec<u8>> {
            let mut w = SnapshotWriter::new();
            w.put_u64(self.pending.len() as u64);
            for m in &self.pending {
                if let WireMessage::Msg { tag, payload } = m {
                    w.put_u128(tag.0);
                    w.put_bytes(payload.as_slice());
                }
            }
            Some(w.into_body())
        }

        fn restore_state(&mut self, body: &[u8]) -> Result<(), SnapshotError> {
            let mut r = SnapshotReader::new(body);
            let len = r.get_u64()? as usize;
            self.pending.clear();
            for _ in 0..len {
                let tag = Tag(r.get_u128()?);
                let payload = Payload::copy_from_slice(r.get_bytes()?);
                self.pending.push(WireMessage::Msg { tag, payload });
            }
            r.finish()
        }
    }

    /// A protocol with no snapshot support (keeps the trait defaults).
    struct Opaque;

    impl AnonProcess for Opaque {
        fn urb_broadcast(&mut self, _payload: Payload, ctx: &mut Context<'_>) -> Tag {
            Tag::random(ctx.rng)
        }
        fn on_receive(&mut self, _msg: WireMessage, _ctx: &mut Context<'_>) {}
        fn on_tick(&mut self, _ctx: &mut Context<'_>) {}
        fn is_quiescent(&self) -> bool {
            true
        }
        fn stats(&self) -> ProcessStats {
            ProcessStats::default()
        }
        fn algorithm_name(&self) -> &'static str {
            "opaque"
        }
    }

    fn engine() -> NodeEngine {
        NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        )
    }

    #[test]
    fn drive_step_clears_buffers_between_steps() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let tag = e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert!(tag.is_some());
        assert_eq!(buf.outbox.len(), 1);
        // A silent step leaves empty buffers, not the previous contents.
        let mut silent = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(8),
        );
        silent.step(StepInput::Tick, &fd, &mut buf);
        assert!(buf.is_silent());
    }

    #[test]
    fn identical_input_sequences_produce_identical_output() {
        // The cross-backend guarantee in miniature: same seed, same inputs
        // => byte-identical emissions, whichever driver calls drive_step.
        let fd = FdSnapshot::none();
        let run = || {
            let mut e = engine();
            let mut buf = StepBuffers::new();
            let mut log: Vec<WireMessage> = Vec::new();
            e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            e.step(
                StepInput::Receive(WireMessage::Msg {
                    tag: Tag(9),
                    payload: Payload::from("x"),
                }),
                &fd,
                &mut buf,
            );
            log.extend(buf.outbox.iter().cloned());
            e.step(StepInput::Tick, &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_batch_moves_the_whole_outbox() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("a")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        let batch = buf.take_batch().expect("tick re-broadcasts");
        assert_eq!(batch.len(), 1);
        assert!(buf.take_batch().is_none(), "outbox drained");
    }

    #[test]
    fn receive_batch_accumulates_across_members() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let batch: Batch = (0..3u128)
            .map(|i| WireMessage::Msg {
                tag: Tag(i),
                payload: Payload::from("p"),
            })
            .collect();
        let mut snapshots = 0;
        e.receive_batch(batch, &mut buf, |_| {
            snapshots += 1;
            FdSnapshot::none()
        });
        assert_eq!(snapshots, 3, "one snapshot per member, as unbatched");
        assert_eq!(buf.deliveries.len(), 3);
        assert_eq!(buf.outbox.len(), 3);
        assert!(buf.outbox.iter().all(|m| m.kind() == WireKind::Ack));
    }

    #[test]
    fn wire_frame_round_trip_matches_in_memory_plane() {
        // Drive two identical engines, one over the in-memory batch plane
        // and one over the wire-frame plane: same emissions, same
        // deliveries, and the frame path's pool stops allocating.
        let fd = FdSnapshot::none();
        let pool = BufPool::new(4);
        let mut sender = engine();
        let mut mem_rx = engine();
        let mut wire_rx = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        );
        let mut buf = StepBuffers::new();
        let mut mem_out = StepBuffers::new();
        let mut wire_out = StepBuffers::new();
        for round in 0..8u32 {
            sender.step(
                StepInput::Broadcast(Payload::from(format!("m{round}").as_str())),
                &fd,
                &mut buf,
            );
            let batch = Batch::drain_from(&mut buf.outbox.clone());
            let frame = buf.take_wire_frame(&pool).expect("broadcast emits");
            assert!(buf.outbox.is_empty(), "frame drained the outbox");
            let bytes = Bytes::copy_from_slice(&frame);
            drop(frame); // back to the pool
            mem_rx.receive_batch(batch, &mut mem_out, |_| FdSnapshot::none());
            wire_rx
                .receive_frame(&bytes, &mut wire_out, |_| FdSnapshot::none())
                .expect("well-formed frame");
            assert_eq!(mem_out.outbox, wire_out.outbox, "round {round}");
            assert_eq!(mem_out.deliveries.len(), wire_out.deliveries.len());
        }
        let s = pool.stats();
        assert_eq!(s.created, 1, "one pooled frame buffer serves every step");
        assert_eq!(s.recycled, 7);
        assert_eq!(mem_rx.counters().receives, wire_rx.counters().receives);
    }

    #[test]
    fn receive_frame_rejects_garbage_and_keeps_scratch() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let garbage = Bytes::copy_from_slice(&[0x42, 0, 1]);
        assert!(e
            .receive_frame(&garbage, &mut buf, |_| FdSnapshot::none())
            .is_err());
        // The engine remains usable after a bad frame.
        let ok: Batch = std::iter::once(WireMessage::Msg {
            tag: Tag(5),
            payload: Payload::from("x"),
        })
        .collect();
        let frame = ok.encode();
        e.receive_frame(&frame, &mut buf, |_| FdSnapshot::none())
            .unwrap();
        assert_eq!(buf.deliveries.len(), 1);
    }

    /// Collects observed effects for the hook tests.
    #[derive(Default)]
    struct Log {
        emits: Vec<WireMessage>,
        delivers: usize,
    }

    impl StepObserver for Log {
        fn on_emit(&mut self, msg: &WireMessage) {
            self.emits.push(msg.clone());
        }
        fn on_deliver(&mut self, _d: &Delivery) {
            self.delivers += 1;
        }
    }

    #[test]
    fn observed_step_surfaces_every_effect_in_order() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let mut log = Log::default();
        e.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut buf,
            &mut log,
        );
        e.step_observed(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(3),
                payload: Payload::from("x"),
            }),
            &fd,
            &mut buf,
            &mut log,
        );
        assert_eq!(log.emits.len(), 2, "MSG then ACK observed");
        assert_eq!(log.emits[0].kind(), WireKind::Msg);
        assert_eq!(log.emits[1].kind(), WireKind::Ack);
        assert_eq!(log.delivers, 1);
        // The hook observes, it does not consume: the buffers still hold
        // the last step's output for the backend to drain.
        assert_eq!(buf.outbox.len(), 1);
        assert_eq!(buf.deliveries.len(), 1);
    }

    #[test]
    fn observed_and_plain_steps_are_identical() {
        let fd = FdSnapshot::none();
        let mut plain = engine();
        let mut observed = engine();
        let mut a = StepBuffers::new();
        let mut b = StepBuffers::new();
        let mut log = Log::default();
        plain.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut a);
        observed.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut b,
            &mut log,
        );
        assert_eq!(a.outbox, b.outbox);
        assert_eq!(plain.counters(), observed.counters());
        assert_eq!(log.emits, b.outbox);
    }

    #[test]
    fn fingerprint_tracks_semantic_state_not_history() {
        let fd = FdSnapshot::none();
        let mut a = engine();
        let mut b = engine();
        let fresh = a.fingerprint();
        assert_eq!(fresh, b.fingerprint(), "equal states digest equally");
        let mut buf = StepBuffers::new();
        a.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert_ne!(a.fingerprint(), fresh, "pending message changes the digest");
        // History alone (a silent tick) leaves the digest unchanged even
        // though the counters moved.
        let before = b.fingerprint();
        b.step(StepInput::Tick, &fd, &mut buf);
        assert_eq!(b.fingerprint(), before);
        assert_ne!(b.counters().steps, 0);
    }

    fn topic_engine(topics: usize, seed: u64) -> TopicEngine {
        TopicEngine::new(
            (0..topics)
                .map(|_| {
                    Box::new(Scripted {
                        pending: Vec::new(),
                    }) as Box<dyn AnonProcess + Send>
                })
                .collect(),
            SplitMix64::new(seed),
        )
    }

    #[test]
    fn one_topic_engine_is_bit_identical_to_node_engine() {
        // The byte-compatibility cornerstone: a single-topic TopicEngine
        // consumes the RNG stream exactly like the wrapped NodeEngine.
        let fd = FdSnapshot::none();
        let mut node = engine();
        let mut topic = topic_engine(1, 7);
        let mut a = StepBuffers::new();
        let mut b = StepBuffers::new();
        for round in 0..4u32 {
            let payload = Payload::from(format!("m{round}").as_str());
            let ta = node.step(StepInput::Broadcast(payload.clone()), &fd, &mut a);
            let tb = topic.step(TopicId::ZERO, StepInput::Broadcast(payload), &fd, &mut b);
            assert_eq!(ta, tb, "round {round}");
            assert_eq!(a.outbox, b.outbox);
            node.step(StepInput::Tick, &fd, &mut a);
            topic.step(TopicId::ZERO, StepInput::Tick, &fd, &mut b);
            assert_eq!(a.outbox, b.outbox);
        }
        assert_eq!(node.counters(), topic.counters());
        assert_eq!(node.fingerprint(), topic.fingerprint());
    }

    #[test]
    fn topic_instances_are_isolated_but_share_the_rng() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(3, 9);
        let mut mux = MuxBuffers::new();
        let t1 = e
            .step_mux(
                TopicId(1),
                StepInput::Broadcast(Payload::from("one")),
                &fd,
                &mut mux,
            )
            .expect("tag");
        let t2 = e
            .step_mux(
                TopicId(2),
                StepInput::Broadcast(Payload::from("two")),
                &fd,
                &mut mux,
            )
            .expect("tag");
        assert_ne!(t1, t2, "shared stream, distinct draws");
        assert_eq!(mux.outbox.len(), 2);
        assert_eq!(mux.outbox[0].0, TopicId(1));
        assert_eq!(mux.outbox[1].0, TopicId(2));
        // Topic 0 never broadcast: it stays quiescent while 1 and 2 hold
        // pending messages.
        assert!(e.topic_is_quiescent(TopicId(0)));
        assert!(!e.topic_is_quiescent(TopicId(1)));
        assert!(!e.is_quiescent());
        assert_eq!(e.stats().msg_set, 2, "aggregate across topics");
        assert_eq!(e.stats_for(TopicId(1)).msg_set, 1);
    }

    #[test]
    fn tick_all_sweeps_every_topic_into_one_frame() {
        let fd = FdSnapshot::none();
        let pool = BufPool::new(2);
        let mut e = topic_engine(2, 11);
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("a")),
            &fd,
            &mut mux,
        );
        e.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("b")),
            &fd,
            &mut mux,
        );
        mux.clear();
        e.tick_all(&fd, &mut mux);
        assert_eq!(mux.outbox.len(), 2, "each topic re-broadcasts one MSG");
        let frame = mux.take_mux_frame(&pool).expect("emissions present");
        let decoded = MuxBatch::decode_shared(&Bytes::copy_from_slice(&frame)).unwrap();
        assert_eq!(decoded.topic_count(), 2);
        assert!(mux.outbox.is_empty(), "frame drained the outbox");
        assert!(mux.take_mux_frame(&pool).is_none());
    }

    #[test]
    fn mux_frame_round_trip_delivers_to_matching_topics() {
        let fd = FdSnapshot::none();
        let pool = BufPool::new(2);
        let mut sender = topic_engine(2, 5);
        let mut receiver = topic_engine(2, 6);
        let mut mux = MuxBuffers::new();
        sender.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("t0")),
            &fd,
            &mut mux,
        );
        sender.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("t1")),
            &fd,
            &mut mux,
        );
        let frame = mux.take_mux_frame(&pool).unwrap();
        let bytes = Bytes::copy_from_slice(&frame);
        drop(frame);
        let mut observed = Vec::new();
        let mut rx_mux = MuxBuffers::new();
        receiver
            .receive_mux_frame(&bytes, &mut rx_mux, |topic, msg| {
                observed.push((topic, msg.kind()));
                FdSnapshot::none()
            })
            .expect("well-formed frame");
        assert_eq!(
            observed,
            vec![(TopicId(0), WireKind::Msg), (TopicId(1), WireKind::Msg)]
        );
        // The scripted protocol delivers + ACKs per received MSG, per topic.
        assert_eq!(rx_mux.deliveries.len(), 2);
        assert_eq!(rx_mux.deliveries[0].0, TopicId(0));
        assert_eq!(rx_mux.deliveries[1].0, TopicId(1));
        assert!(rx_mux.outbox.iter().all(|(_, m)| m.kind() == WireKind::Ack));
    }

    #[test]
    fn mux_ingress_rejects_garbage_and_unknown_topics() {
        let mut e = topic_engine(1, 3);
        let mut mux = MuxBuffers::new();
        let garbage = Bytes::copy_from_slice(&[0x42, 0, 1]);
        assert!(matches!(
            e.receive_mux_frame(&garbage, &mut mux, |_, _| FdSnapshot::none()),
            Err(MuxIngressError::Codec(_))
        ));
        // A frame for topic 7 cannot land on a 1-topic engine.
        let foreign = MuxBatch::from_entries(&[(
            TopicId(7),
            WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("x"),
            },
        )]);
        let err = e
            .receive_mux_frame(&foreign.encode(), &mut mux, |_, _| FdSnapshot::none())
            .unwrap_err();
        assert_eq!(err, MuxIngressError::UnknownTopic(TopicId(7)));
        // The engine stays usable.
        let ok = MuxBatch::from_entries(&[(
            TopicId::ZERO,
            WireMessage::Msg {
                tag: Tag(2),
                payload: Payload::from("y"),
            },
        )]);
        e.receive_mux_frame(&ok.encode(), &mut mux, |_, _| FdSnapshot::none())
            .unwrap();
        assert_eq!(mux.deliveries.len(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        e.step(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("z"),
            }),
            &fd,
            &mut buf,
        );
        let c = e.counters();
        assert_eq!(c.steps, 3);
        assert_eq!(c.ticks, 1);
        assert_eq!(c.broadcasts, 1);
        assert_eq!(c.receives, 1);
        assert_eq!(c.deliveries, 1);
        assert_eq!(c.messages_out, 3, "MSG + tick re-send + ACK");
        assert!(!e.is_quiescent());
        assert_eq!(e.stats().msg_set, 1);
        assert_eq!(e.algorithm_name(), "scripted");
    }

    // ---- dynamic topic control plane (DESIGN.md §15) -------------------

    fn scripted() -> Box<dyn AnonProcess + Send> {
        Box::new(Scripted {
            pending: Vec::new(),
        })
    }

    #[test]
    fn create_is_lazy_idempotent_and_inherits_memory_config() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(1, 40);
        e.configure_memory(MemoryConfig::default());
        assert!(!e.has_instance(TopicId(5)));
        assert!(e.create_topic(TopicId(5), scripted()));
        assert!(!e.create_topic(TopicId(5), scripted()), "idempotent");
        assert!(e.is_live(TopicId(5)));
        assert_eq!(e.topic_count(), 2);
        assert_eq!(e.counters().topics_created, 1);
        // The late instance participates in ticks and compaction sweeps.
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(5),
            StepInput::Broadcast(Payload::from("dyn")),
            &fd,
            &mut mux,
        );
        assert_eq!(e.stats_for(TopicId(5)).msg_set, 1);
        let report = e.compact_all(&fd);
        assert_eq!(report.reclaimed, 1, "memory config reached the instance");
    }

    #[test]
    fn retire_drains_then_reaps_and_counts_reclaimed() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 41);
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("pending")),
            &fd,
            &mut mux,
        );
        assert!(e.retire_topic(TopicId(1)));
        assert!(!e.retire_topic(TopicId(1)), "already draining");
        assert!(!e.is_live(TopicId(1)), "draining topics take no broadcasts");
        assert!(e.has_instance(TopicId(1)), "but the instance still exists");
        assert!(!e.is_quiescent(), "draining state blocks quiescence");
        // Scripted never becomes quiescent on its own (pending retained),
        // so the drain budget decides.
        e.set_drain_limit(2);
        e.tick_all(&fd, &mut mux); // drain sweep 1
        assert!(e.has_instance(TopicId(1)));
        e.tick_all(&fd, &mut mux); // drain sweep 2
        e.tick_all(&fd, &mut mux); // budget exceeded: reaped
        assert!(!e.has_instance(TopicId(1)));
        assert!(e.is_retired(TopicId(1)));
        assert_eq!(e.topic_count(), 1);
        let c = e.counters();
        assert_eq!(c.topics_retired, 1);
        assert_eq!(c.topics_reclaimed, 1);
        assert!(c.reclaimed >= 1, "the pending entry was reclaimed");
        assert_eq!(e.live_topics().collect::<Vec<_>>(), vec![TopicId(0)]);
    }

    #[test]
    fn retired_topic_traffic_is_dropped_inert_and_recreate_starts_clean() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(1, 42);
        assert!(e.create_topic(TopicId(3), scripted()));
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(3),
            StepInput::Broadcast(Payload::from("old-life")),
            &fd,
            &mut mux,
        );
        e.retire_topic(TopicId(3));
        e.set_drain_limit(0);
        e.tick_all(&fd, &mut mux);
        assert!(e.is_retired(TopicId(3)));
        // A late retransmission for the retired topic is dropped inert —
        // not an error, no step, no delivery.
        let late = MuxBatch::from_entries(&[(
            TopicId(3),
            WireMessage::Msg {
                tag: Tag(77),
                payload: Payload::from("late"),
            },
        )]);
        let receives_before = e.counters().receives;
        e.receive_mux_frame(&late.encode(), &mut mux, |_, _| FdSnapshot::none())
            .expect("retired traffic is inert, not an error");
        assert!(mux.deliveries.is_empty());
        assert_eq!(e.counters().receives, receives_before, "no step ran");
        // A never-known topic still errors.
        let foreign = MuxBatch::from_entries(&[(
            TopicId(9),
            WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("x"),
            },
        )]);
        assert_eq!(
            e.receive_mux_frame(&foreign.encode(), &mut mux, |_, _| FdSnapshot::none())
                .unwrap_err(),
            MuxIngressError::UnknownTopic(TopicId(9))
        );
        // Re-creating the retired id clears the tombstone and starts clean.
        assert!(e.create_topic(TopicId(3), scripted()));
        assert!(!e.is_retired(TopicId(3)));
        assert!(e.is_live(TopicId(3)));
        assert_eq!(e.stats_for(TopicId(3)).msg_set, 0, "no state carried over");
    }

    #[test]
    fn quiescent_drain_reaps_before_the_budget() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 43);
        // Topic 1 never broadcast: it is quiescent, so retirement reaps it
        // on the very next sweep regardless of the (large) budget.
        assert!(e.retire_topic(TopicId(1)));
        let mut mux = MuxBuffers::new();
        e.tick_all(&fd, &mut mux);
        assert!(!e.has_instance(TopicId(1)));
        assert_eq!(e.counters().topics_reclaimed, 1);
    }

    #[test]
    fn controls_surface_on_ingress_and_ride_on_egress() {
        let fd = FdSnapshot::none();
        let pool = BufPool::new(2);
        let mut sender = topic_engine(1, 44);
        let mut mux = MuxBuffers::new();
        sender.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("payload")),
            &fd,
            &mut mux,
        );
        let ctl = TopicControl::Create {
            topic: TopicId(2),
            algorithm: 0,
            param: 0,
        };
        mux.controls.push(ctl);
        let frame = mux.take_mux_frame(&pool).expect("payload + control");
        let bytes = Bytes::copy_from_slice(&frame);
        drop(frame);
        assert!(mux.controls.is_empty(), "controls drained with the frame");
        let mut receiver = topic_engine(1, 45);
        let mut rx = MuxBuffers::new();
        receiver
            .receive_mux_frame(&bytes, &mut rx, |_, _| FdSnapshot::none())
            .unwrap();
        assert_eq!(rx.controls, vec![ctl], "driver sees the control section");
        assert_eq!(rx.deliveries.len(), 1, "payload stepped as usual");
        // Control-only frame: no payload entries at all.
        mux.clear();
        mux.controls
            .push(TopicControl::Retire { topic: TopicId(0) });
        let frame = mux.take_mux_frame(&pool).expect("control-only frame");
        let bytes = Bytes::copy_from_slice(&frame);
        drop(frame);
        receiver
            .receive_mux_frame(&bytes, &mut rx, |_, _| FdSnapshot::none())
            .unwrap();
        assert_eq!(
            rx.controls,
            vec![TopicControl::Retire { topic: TopicId(0) }]
        );
        assert!(rx.is_silent());
    }

    // ---- O(1) topic directory (DESIGN.md §16) --------------------------

    #[test]
    fn resolve_reports_the_full_lifecycle_in_one_probe() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 60);
        assert_eq!(e.resolve(TopicId(0)), TopicState::Live(0));
        assert_eq!(e.resolve(TopicId(1)), TopicState::Live(1));
        assert_eq!(e.resolve(TopicId(9)), TopicState::Unknown);
        e.retire_topic(TopicId(0));
        assert_eq!(e.resolve(TopicId(0)), TopicState::Draining(0));
        let mut mux = MuxBuffers::new();
        e.set_drain_limit(0);
        e.tick_all(&fd, &mut mux);
        assert_eq!(e.resolve(TopicId(0)), TopicState::Retired);
        // The survivor shifted left; the directory followed.
        assert_eq!(e.resolve(TopicId(1)), TopicState::Live(0));
        // Re-creation clears the tombstone entry.
        assert!(e.create_topic(TopicId(0), scripted()));
        assert_eq!(e.resolve(TopicId(0)), TopicState::Live(0));
        assert_eq!(e.resolve(TopicId(1)), TopicState::Live(1));
    }

    #[test]
    fn directory_handles_sparse_ids_and_dense_growth_migration() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(1, 61);
        // Far beyond the dense slack: lands in the hash-map lane.
        let sparse = TopicId(0x00FF_0000);
        assert!(e.create_topic(sparse, scripted()));
        assert_eq!(e.resolve(sparse), TopicState::Live(1));
        assert!(e.is_live(sparse));
        // Ascending creation grows the dense range; when it eventually
        // swallows a sparse id the entry must migrate, not vanish. Force
        // that with an id just past the slack boundary, then fill up to it.
        let edge = TopicId(DENSE_DIRECTORY_SLACK + 2);
        assert!(e.create_topic(edge, scripted()));
        for t in 1..=DENSE_DIRECTORY_SLACK + 1 {
            assert!(e.create_topic(TopicId(t), scripted()));
        }
        assert!(e.is_live(edge), "sparse entry survived dense growth");
        assert!(e.is_live(sparse));
        // Retire + reap a sparse id: the tombstone verdict also lives in
        // the hash lane.
        assert!(e.retire_topic(sparse));
        let mut mux = MuxBuffers::new();
        e.set_drain_limit(0);
        e.tick_all(&fd, &mut mux);
        assert_eq!(e.resolve(sparse), TopicState::Retired);
        assert!(e.is_retired(sparse));
        assert!(!e.has_instance(sparse));
    }

    #[test]
    fn mux_ingress_resolves_once_per_run_with_identical_verdicts() {
        // Three entries on one topic arrive as one ascending run: the
        // directory is probed once per run but every message still steps
        // (and the retired-run drop stays per-entry inert).
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 62);
        let entries: Vec<(TopicId, WireMessage)> = (0..3u128)
            .map(|i| {
                (
                    TopicId(1),
                    WireMessage::Msg {
                        tag: Tag(i),
                        payload: Payload::from("run"),
                    },
                )
            })
            .collect();
        let frame = MuxBatch::from_entries(&entries).encode();
        let mut mux = MuxBuffers::new();
        e.receive_mux_frame(&frame, &mut mux, |_, _| FdSnapshot::none())
            .unwrap();
        assert_eq!(mux.deliveries.len(), 3, "every entry of the run stepped");
        assert_eq!(e.counters().receives, 3);
        // Retire topic 1 and reap it: the same run now drops inert.
        e.retire_topic(TopicId(1));
        e.set_drain_limit(0);
        e.tick_all(&fd, &mut mux);
        let receives_before = e.counters().receives;
        e.receive_mux_frame(&frame, &mut mux, |_, _| FdSnapshot::none())
            .unwrap();
        assert!(mux.deliveries.is_empty());
        assert_eq!(e.counters().receives, receives_before);
    }

    #[test]
    fn subscriptions_are_bookkeeping() {
        let mut e = topic_engine(1, 46);
        assert!(!e.is_subscribed(TopicId(0)));
        assert!(e.subscribe(TopicId(0)));
        assert!(!e.subscribe(TopicId(0)), "second subscribe is a no-op");
        assert!(e.is_subscribed(TopicId(0)));
        assert!(e.unsubscribe(TopicId(0)));
        assert!(!e.unsubscribe(TopicId(0)));
    }

    #[test]
    fn lifecycle_changes_the_fingerprint_but_static_engines_digest_stably() {
        let fd = FdSnapshot::none();
        let a = topic_engine(2, 47);
        let b = topic_engine(2, 48);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "digest covers state, not seed"
        );
        let mut c = topic_engine(2, 47);
        let base = c.fingerprint();
        c.create_topic(TopicId(7), scripted());
        let created = c.fingerprint();
        assert_ne!(base, created, "a live instance is semantic state");
        c.retire_topic(TopicId(7));
        let draining = c.fingerprint();
        assert_ne!(created, draining, "draining is semantic state");
        let mut mux = MuxBuffers::new();
        c.set_drain_limit(0);
        c.tick_all(&fd, &mut mux);
        let retired = c.fingerprint();
        assert_ne!(draining, retired, "the tombstone is semantic state");
        assert_ne!(base, retired, "retired ≠ never-created");
    }

    #[test]
    fn snapshot_round_trips_lifecycle_state() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 49);
        e.create_topic(TopicId(4), scripted());
        e.subscribe(TopicId(4));
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(4),
            StepInput::Broadcast(Payload::from("dyn")),
            &fd,
            &mut mux,
        );
        e.retire_topic(TopicId(1));
        e.set_drain_limit(0);
        e.tick_all(&fd, &mut mux);
        assert!(e.is_retired(TopicId(1)));
        let bytes = e.save_snapshot().unwrap();
        // The restore target must present the same topic directory.
        let mut back = topic_engine(2, 50);
        back.set_drain_limit(0);
        assert!(matches!(
            back.restore_snapshot(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
        let mut back = topic_engine(1, 50);
        back.create_topic(TopicId(4), scripted());
        back.restore_snapshot(&bytes).unwrap();
        assert_eq!(back.fingerprint(), e.fingerprint());
        assert_eq!(back.counters(), e.counters());
        assert!(back.is_retired(TopicId(1)));
        assert!(back.is_subscribed(TopicId(4)));
        assert_eq!(back.stats_for(TopicId(4)).msg_set, 1);
    }

    // ---- memory plane (DESIGN.md §14) ----------------------------------

    #[test]
    fn compact_all_sweeps_every_topic_and_accumulates_counters() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 13);
        let mut mux = MuxBuffers::new();
        for t in 0..2u32 {
            e.step_mux(
                TopicId(t),
                StepInput::Broadcast(Payload::from("m")),
                &fd,
                &mut mux,
            );
        }
        assert_eq!(e.stats().msg_set, 2);
        let report = e.compact_all(&fd);
        assert_eq!(report.reclaimed, 2, "one pending message per topic");
        assert_eq!(report.tombstoned, 2);
        assert_eq!(e.stats().msg_set, 0);
        let c = e.counters();
        assert_eq!(c.compactions, 1);
        assert_eq!(c.reclaimed, 2);
        assert_eq!(c.tombstoned, 2);
        // A second sweep finds nothing but still counts as a sweep.
        let empty = e.compact_all(&fd);
        assert_eq!(empty.reclaimed, 0);
        assert_eq!(e.counters().compactions, 2);
        assert_eq!(e.counters().reclaimed, 2);
    }

    #[test]
    fn snapshot_round_trip_restores_state_counters_and_rng() {
        let fd = FdSnapshot::none();
        let mut original = topic_engine(2, 21);
        let mut mux = MuxBuffers::new();
        original.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("alpha")),
            &fd,
            &mut mux,
        );
        original.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("beta")),
            &fd,
            &mut mux,
        );
        original.tick_all(&fd, &mut mux);
        let bytes = original
            .save_snapshot()
            .expect("scripted supports snapshots");
        assert_eq!(
            bytes,
            original.save_snapshot().unwrap(),
            "byte-deterministic serialization"
        );
        // Restore into a fresh engine built with a *different* seed: the
        // snapshot carries the exact RNG stream position.
        let mut restored = topic_engine(2, 999);
        restored.restore_snapshot(&bytes).expect("round trip");
        assert_eq!(restored.fingerprint(), original.fingerprint());
        assert_eq!(restored.counters(), original.counters());
        assert_eq!(restored.stats().msg_set, 2);
        // Both engines continue identically — same draws, same emissions.
        let ta = original.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("next")),
            &fd,
            &mut mux,
        );
        let mut mux2 = MuxBuffers::new();
        let tb = restored.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("next")),
            &fd,
            &mut mux2,
        );
        assert_eq!(ta, tb, "restored RNG resumes the exact stream");
    }

    #[test]
    fn restore_rejects_mismatch_and_corruption() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 3);
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("x")),
            &fd,
            &mut mux,
        );
        let bytes = e.save_snapshot().unwrap();
        // Topic-count mismatch.
        let mut narrow = topic_engine(1, 3);
        assert!(matches!(
            narrow.restore_snapshot(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
        // Algorithm mismatch.
        let mut other = TopicEngine::new(
            vec![
                Box::new(Opaque) as Box<dyn AnonProcess + Send>,
                Box::new(Opaque),
            ],
            SplitMix64::new(3),
        );
        assert!(matches!(
            other.restore_snapshot(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
        // Bit-flip in the body fails the checksum before any decoding.
        let mut flipped = bytes.clone();
        let mid = 16 + (flipped.len() - 24) / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            topic_engine(2, 3).restore_snapshot(&flipped),
            Err(SnapshotError::Checksum { .. })
        ));
        // Garbage is not a snapshot at all.
        assert!(matches!(
            topic_engine(2, 3).restore_snapshot(b"nope"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn save_snapshot_errors_for_unsupported_algorithms() {
        let e = TopicEngine::single(Box::new(Opaque), SplitMix64::new(1));
        assert!(matches!(
            e.save_snapshot(),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn node_engine_forwards_the_memory_plane() {
        let fd = FdSnapshot::none();
        let mut node = engine();
        node.configure_memory(MemoryConfig::default());
        let mut buf = StepBuffers::new();
        node.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        let bytes = node.save_snapshot().unwrap();
        let report = node.compact(&fd);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(node.counters().compactions, 1);
        let mut back = engine();
        back.restore_snapshot(&bytes).unwrap();
        assert_eq!(back.stats().msg_set, 1, "snapshot predates the sweep");
    }
}
