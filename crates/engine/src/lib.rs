//! # `urb-engine`
//!
//! The backend-agnostic per-node driving engine of the `anon-urb`
//! workspace.
//!
//! Three drivers execute the paper's protocols: the discrete-event
//! simulator (`urb-sim`), the threaded runtime (`urb-runtime`) and the
//! single-process test harness (`urb_core::harness`). Before this crate
//! existed each of them re-implemented the same cycle — take a
//! failure-detector snapshot, run one protocol step through the sans-io
//! [`AnonProcess`] trait, collect the URB deliveries, drain the outbox
//! toward the network. The engine owns that cycle once:
//!
//! * [`drive_step`] — the single implementation of "one protocol step":
//!   every backend funnels through this function, so a step is *provably
//!   identical* across the simulator, the runtime and the harness;
//! * [`StepBuffers`] — the reusable outbox/delivery buffers a step fills
//!   (drivers keep one per node or one per loop and reuse it, so the hot
//!   path performs no steady-state allocation);
//! * [`NodeEngine`] — the owning wrapper used by the multi-node drivers:
//!   protocol instance + deterministic RNG stream + cumulative
//!   [`EngineCounters`] + [`ProcessStats`] access;
//! * the **batched message plane** (DESIGN.md D8):
//!   [`StepBuffers::take_batch`] drains a step's whole outbox into one
//!   [`urb_types::Batch`] frame, so routing cost scales with steps, not
//!   messages, while per-message `retransmit_key` identity (the
//!   fair-lossy bookkeeping unit) is preserved;
//! * the **wire-frame plane** (DESIGN.md §10): for backends that cross a
//!   real serialization boundary, [`StepBuffers::take_wire_frame`]
//!   encodes the outbox straight into a pooled buffer (zero per-message
//!   allocation) and [`NodeEngine::receive_frame`] decodes incoming
//!   frames with shared payloads into persistent scratch.
//!
//! What stays backend-specific is exactly what *differs* between backends:
//! where the [`FdSnapshot`] comes from (oracle/heartbeat service keyed by
//! simulated time, membership registry keyed by wall-clock time, or a
//! scripted snapshot in tests) and what happens to the drained batch
//! (event-queue scheduling, channel send, or test inspection).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bytes::Bytes;
use urb_types::{
    encode_frame_into, AnonProcess, Batch, BufPool, CodecError, Context, Delivery, FdSnapshot,
    Payload, PooledBuf, ProcessStats, RandomSource, SplitMix64, Tag, WireMessage,
};

/// One input to a protocol step — the three entry points of the paper's
/// pseudocode.
#[derive(Clone, Debug)]
pub enum StepInput {
    /// One Task-1 sweep (the `repeat forever` body).
    Tick,
    /// One incoming wire message (`receive_i`).
    Receive(WireMessage),
    /// An application-level `URB_broadcast(payload)` invocation.
    Broadcast(Payload),
}

/// Reusable buffers one protocol step fills.
///
/// Drivers allocate one of these per node (or per loop) and reuse it for
/// every step; [`drive_step`] clears it first, so after the call it holds
/// exactly what *this* step emitted.
#[derive(Debug, Default)]
pub struct StepBuffers {
    /// Messages the step broadcast (the paper's `broadcast_i`), in order.
    pub outbox: Vec<WireMessage>,
    /// URB-deliveries the step produced, in order.
    pub deliveries: Vec<Delivery>,
}

impl StepBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        StepBuffers::default()
    }

    /// Drains the outbox into one [`Batch`] frame — the batched message
    /// plane. Returns `None` when the step broadcast nothing (no frame,
    /// no routing work). The outbox keeps its allocation.
    pub fn take_batch(&mut self) -> Option<Batch> {
        if self.outbox.is_empty() {
            None
        } else {
            Some(Batch::drain_from(&mut self.outbox))
        }
    }

    /// Encodes and drains the outbox as one **wire frame** through the
    /// zero-copy codec (DESIGN.md §10): acquires a recycled buffer from
    /// `pool`, writes the length-prefixed batch frame with no per-message
    /// allocation, and clears the outbox in place (capacity retained).
    /// Returns `None` when the step broadcast nothing. This is the
    /// serialization-boundary twin of [`StepBuffers::take_batch`], used by
    /// backends that move bytes (the runtime's router) rather than
    /// in-memory batches (the simulator's event queue).
    pub fn take_wire_frame(&mut self, pool: &BufPool) -> Option<PooledBuf> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut frame = pool.acquire();
        encode_frame_into(&self.outbox, &mut frame);
        self.outbox.clear();
        Some(frame)
    }

    /// True when the step neither broadcast nor delivered anything.
    pub fn is_silent(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty()
    }
}

/// Observer of the **choice points** one protocol step opens up.
///
/// Every effect a step produces is a point where a scheduler may later
/// interpose nondeterministically: each emitted wire message becomes a
/// future delivery (or adversarial-drop) decision, and each URB-delivery
/// is where crash-on-delivery adversaries arm. Backends that merely
/// *execute* a schedule (the simulator's event queue, the runtime's
/// channels) drain [`StepBuffers`] wholesale and never need this; the
/// systematic explorer (`urb-check`) hooks it to register every effect as
/// an explorable choice the moment [`drive_step_observed`] surfaces it.
pub trait StepObserver {
    /// One message left the step's outbox (in emission order).
    fn on_emit(&mut self, msg: &WireMessage);
    /// One URB-delivery fired during the step (in delivery order).
    fn on_deliver(&mut self, delivery: &Delivery);
}

/// Executes one protocol step. **The** shared implementation: every
/// backend's step goes through this function.
///
/// Clears `buf`, builds the paper-shaped [`Context`] over it, dispatches
/// `input` to the matching [`AnonProcess`] entry point and returns the
/// assigned [`Tag`] for broadcast inputs (`None` otherwise). The caller
/// supplies the [`FdSnapshot`] taken immediately before the step — the
/// paper's read-only detector variable semantics — because *where* the
/// snapshot comes from is the one genuinely backend-specific part of the
/// cycle.
pub fn drive_step(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
) -> Option<Tag> {
    buf.outbox.clear();
    buf.deliveries.clear();
    let mut ctx = Context::new(rng, fd, &mut buf.outbox, &mut buf.deliveries);
    match input {
        StepInput::Tick => {
            proc.on_tick(&mut ctx);
            None
        }
        StepInput::Receive(msg) => {
            proc.on_receive(msg, &mut ctx);
            None
        }
        StepInput::Broadcast(payload) => Some(proc.urb_broadcast(payload, &mut ctx)),
    }
}

/// [`drive_step`] with choice-point hooks: after the step executes, every
/// emission and delivery it produced is surfaced to `obs`, in order,
/// while the buffers still hold exactly this step's output. This is the
/// engine-level entry point of the exploration plane (DESIGN.md §11):
/// the explorer turns each observed emission into a pending
/// deliver-or-drop choice and each observed delivery into a potential
/// crash point.
pub fn drive_step_observed(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
    obs: &mut dyn StepObserver,
) -> Option<Tag> {
    let tag = drive_step(proc, input, fd, rng, buf);
    surface_effects(buf, obs);
    tag
}

/// Surfaces one finished step's buffered effects to an observer, in
/// order. The one definition both observed entry points share.
fn surface_effects(buf: &StepBuffers, obs: &mut dyn StepObserver) {
    for m in &buf.outbox {
        obs.on_emit(m);
    }
    for d in &buf.deliveries {
        obs.on_deliver(d);
    }
}

/// Cumulative per-node activity counters maintained by [`NodeEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total protocol steps executed.
    pub steps: u64,
    /// Task-1 sweeps among them.
    pub ticks: u64,
    /// Messages received and processed.
    pub receives: u64,
    /// `URB_broadcast` invocations.
    pub broadcasts: u64,
    /// Messages emitted to the outbox across all steps.
    pub messages_out: u64,
    /// URB-deliveries produced across all steps.
    pub deliveries: u64,
}

/// The owning per-node engine used by the simulator and the runtime: one
/// protocol instance, its deterministic RNG stream, and counters.
pub struct NodeEngine {
    proc: Box<dyn AnonProcess + Send>,
    rng: SplitMix64,
    counters: EngineCounters,
    /// Persistent per-message scratch for [`NodeEngine::receive_batch`],
    /// so batch processing allocates nothing in steady state.
    batch_scratch: StepBuffers,
    /// Persistent decoded-message scratch for
    /// [`NodeEngine::receive_frame`] (same steady-state-zero-allocation
    /// goal, for the wire-frame ingress path).
    frame_scratch: Vec<WireMessage>,
}

impl NodeEngine {
    /// Wraps a protocol instance with its own seeded RNG stream.
    pub fn new(proc: Box<dyn AnonProcess + Send>, rng: SplitMix64) -> Self {
        NodeEngine {
            proc,
            rng,
            counters: EngineCounters::default(),
            batch_scratch: StepBuffers::new(),
            frame_scratch: Vec::new(),
        }
    }

    /// Runs one step (see [`drive_step`]) and updates the counters.
    pub fn step(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        self.counters.steps += 1;
        match &input {
            StepInput::Tick => self.counters.ticks += 1,
            StepInput::Receive(_) => self.counters.receives += 1,
            StepInput::Broadcast(_) => self.counters.broadcasts += 1,
        }
        let tag = drive_step(self.proc.as_mut(), input, fd, &mut self.rng, buf);
        self.counters.messages_out += buf.outbox.len() as u64;
        self.counters.deliveries += buf.deliveries.len() as u64;
        tag
    }

    /// [`NodeEngine::step`] through the choice-point hooks of
    /// [`drive_step_observed`]: counters update exactly as for `step`,
    /// and every emission/delivery of the step is surfaced to `obs`.
    pub fn step_observed(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
        obs: &mut dyn StepObserver,
    ) -> Option<Tag> {
        let tag = self.step(input, fd, buf);
        surface_effects(buf, obs);
        tag
    }

    /// A deterministic digest of this engine's *semantic* state: the
    /// protocol's state-size snapshot ([`ProcessStats`]), its quiescence
    /// predicate and the algorithm name — deliberately **not** the
    /// history counters, so two engines that converged to the same
    /// protocol state through different schedules digest equally. The
    /// exploration plane folds these per-node digests (plus its own
    /// pending-message and crash-set hashes) into the state hash it
    /// prunes on (DESIGN.md §11). The digest is approximate: distinct
    /// internal states with equal sizes can collide, which makes pruning
    /// coarser but never suppresses a violation checked before pruning.
    pub fn fingerprint(&self) -> u64 {
        fn fold(h: &mut u64, word: u64) {
            for b in word.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let s = self.proc.stats();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.proc.algorithm_name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for field in [
            s.msg_set,
            s.my_acks,
            s.all_ack_entries,
            s.delivered,
            s.label_counters,
        ] {
            fold(&mut h, field as u64);
        }
        fold(&mut h, u64::from(self.proc.is_quiescent()));
        h
    }

    /// Feeds every message of a received batch through the engine,
    /// accumulating all emissions into `buf` (which is cleared once, up
    /// front). `before_each` runs before each message's step — backends
    /// use it to update their failure-detector service and return the
    /// fresh snapshot the step must observe.
    pub fn receive_batch(
        &mut self,
        batch: Batch,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) {
        buf.outbox.clear();
        buf.deliveries.clear();
        // Reuse the engine-owned scratch (moved out for the loop so `step`
        // can borrow `self` mutably, moved back after — capacity is kept).
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        for msg in batch {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.batch_scratch = scratch;
    }

    /// Feeds every message of a received **wire frame** through the
    /// engine: decodes the frame with shared payloads (zero copies — each
    /// decoded payload is a refcounted view of `frame`, see
    /// [`Batch::decode_shared_into`]) into a persistent scratch vector,
    /// then steps exactly like [`NodeEngine::receive_batch`]. The
    /// serialization-boundary ingress twin of
    /// [`StepBuffers::take_wire_frame`]; in steady state the whole
    /// decode-and-step loop allocates only what the protocol itself
    /// retains.
    ///
    /// Errors only on a malformed frame, which in-process backends treat
    /// as a bug (their frames come from [`StepBuffers::take_wire_frame`]).
    pub fn receive_frame(
        &mut self,
        frame: &Bytes,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) -> Result<(), CodecError> {
        let mut msgs = std::mem::take(&mut self.frame_scratch);
        if let Err(e) = Batch::decode_shared_into(frame, &mut msgs) {
            self.frame_scratch = msgs;
            return Err(e);
        }
        buf.outbox.clear();
        buf.deliveries.clear();
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        for msg in msgs.drain(..) {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.batch_scratch = scratch;
        self.frame_scratch = msgs;
        Ok(())
    }

    /// The wrapped protocol's quiescence predicate.
    pub fn is_quiescent(&self) -> bool {
        self.proc.is_quiescent()
    }

    /// The wrapped protocol's state-size snapshot (experiment E9).
    pub fn stats(&self) -> ProcessStats {
        self.proc.stats()
    }

    /// The wrapped protocol's short name.
    pub fn algorithm_name(&self) -> &'static str {
        self.proc.algorithm_name()
    }

    /// Cumulative activity counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Direct access to the protocol instance (diagnostics only; stepping
    /// must go through [`NodeEngine::step`]).
    pub fn protocol(&self) -> &dyn AnonProcess {
        self.proc.as_ref()
    }
}

impl std::fmt::Debug for NodeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeEngine")
            .field("algorithm", &self.proc.algorithm_name())
            .field("counters", &self.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{Label, LabelSet, TagAck, WireKind};

    /// A scripted protocol: acks every MSG, re-broadcasts on tick.
    struct Scripted {
        pending: Vec<WireMessage>,
    }

    impl AnonProcess for Scripted {
        fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
            let tag = Tag::random(ctx.rng);
            let msg = WireMessage::Msg { tag, payload };
            self.pending.push(msg.clone());
            ctx.broadcast(msg);
            tag
        }

        fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
            if let WireMessage::Msg { tag, payload } = msg {
                let tag_ack = TagAck::random(ctx.rng);
                ctx.broadcast(WireMessage::Ack {
                    tag,
                    tag_ack,
                    payload: payload.clone(),
                    labels: Some(LabelSet::from_iter([Label(1)])),
                });
                ctx.deliver(tag, payload, false);
            }
        }

        fn on_tick(&mut self, ctx: &mut Context<'_>) {
            for m in &self.pending {
                ctx.broadcast(m.clone());
            }
        }

        fn is_quiescent(&self) -> bool {
            self.pending.is_empty()
        }

        fn stats(&self) -> ProcessStats {
            ProcessStats {
                msg_set: self.pending.len(),
                ..ProcessStats::default()
            }
        }

        fn algorithm_name(&self) -> &'static str {
            "scripted"
        }
    }

    fn engine() -> NodeEngine {
        NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        )
    }

    #[test]
    fn drive_step_clears_buffers_between_steps() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let tag = e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert!(tag.is_some());
        assert_eq!(buf.outbox.len(), 1);
        // A silent step leaves empty buffers, not the previous contents.
        let mut silent = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(8),
        );
        silent.step(StepInput::Tick, &fd, &mut buf);
        assert!(buf.is_silent());
    }

    #[test]
    fn identical_input_sequences_produce_identical_output() {
        // The cross-backend guarantee in miniature: same seed, same inputs
        // => byte-identical emissions, whichever driver calls drive_step.
        let fd = FdSnapshot::none();
        let run = || {
            let mut e = engine();
            let mut buf = StepBuffers::new();
            let mut log: Vec<WireMessage> = Vec::new();
            e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            e.step(
                StepInput::Receive(WireMessage::Msg {
                    tag: Tag(9),
                    payload: Payload::from("x"),
                }),
                &fd,
                &mut buf,
            );
            log.extend(buf.outbox.iter().cloned());
            e.step(StepInput::Tick, &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_batch_moves_the_whole_outbox() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("a")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        let batch = buf.take_batch().expect("tick re-broadcasts");
        assert_eq!(batch.len(), 1);
        assert!(buf.take_batch().is_none(), "outbox drained");
    }

    #[test]
    fn receive_batch_accumulates_across_members() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let batch: Batch = (0..3u128)
            .map(|i| WireMessage::Msg {
                tag: Tag(i),
                payload: Payload::from("p"),
            })
            .collect();
        let mut snapshots = 0;
        e.receive_batch(batch, &mut buf, |_| {
            snapshots += 1;
            FdSnapshot::none()
        });
        assert_eq!(snapshots, 3, "one snapshot per member, as unbatched");
        assert_eq!(buf.deliveries.len(), 3);
        assert_eq!(buf.outbox.len(), 3);
        assert!(buf.outbox.iter().all(|m| m.kind() == WireKind::Ack));
    }

    #[test]
    fn wire_frame_round_trip_matches_in_memory_plane() {
        // Drive two identical engines, one over the in-memory batch plane
        // and one over the wire-frame plane: same emissions, same
        // deliveries, and the frame path's pool stops allocating.
        let fd = FdSnapshot::none();
        let pool = BufPool::new(4);
        let mut sender = engine();
        let mut mem_rx = engine();
        let mut wire_rx = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        );
        let mut buf = StepBuffers::new();
        let mut mem_out = StepBuffers::new();
        let mut wire_out = StepBuffers::new();
        for round in 0..8u32 {
            sender.step(
                StepInput::Broadcast(Payload::from(format!("m{round}").as_str())),
                &fd,
                &mut buf,
            );
            let batch = Batch::drain_from(&mut buf.outbox.clone());
            let frame = buf.take_wire_frame(&pool).expect("broadcast emits");
            assert!(buf.outbox.is_empty(), "frame drained the outbox");
            let bytes = Bytes::copy_from_slice(&frame);
            drop(frame); // back to the pool
            mem_rx.receive_batch(batch, &mut mem_out, |_| FdSnapshot::none());
            wire_rx
                .receive_frame(&bytes, &mut wire_out, |_| FdSnapshot::none())
                .expect("well-formed frame");
            assert_eq!(mem_out.outbox, wire_out.outbox, "round {round}");
            assert_eq!(mem_out.deliveries.len(), wire_out.deliveries.len());
        }
        let s = pool.stats();
        assert_eq!(s.created, 1, "one pooled frame buffer serves every step");
        assert_eq!(s.recycled, 7);
        assert_eq!(mem_rx.counters().receives, wire_rx.counters().receives);
    }

    #[test]
    fn receive_frame_rejects_garbage_and_keeps_scratch() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let garbage = Bytes::copy_from_slice(&[0x42, 0, 1]);
        assert!(e
            .receive_frame(&garbage, &mut buf, |_| FdSnapshot::none())
            .is_err());
        // The engine remains usable after a bad frame.
        let ok: Batch = std::iter::once(WireMessage::Msg {
            tag: Tag(5),
            payload: Payload::from("x"),
        })
        .collect();
        let frame = ok.encode();
        e.receive_frame(&frame, &mut buf, |_| FdSnapshot::none())
            .unwrap();
        assert_eq!(buf.deliveries.len(), 1);
    }

    /// Collects observed effects for the hook tests.
    #[derive(Default)]
    struct Log {
        emits: Vec<WireMessage>,
        delivers: usize,
    }

    impl StepObserver for Log {
        fn on_emit(&mut self, msg: &WireMessage) {
            self.emits.push(msg.clone());
        }
        fn on_deliver(&mut self, _d: &Delivery) {
            self.delivers += 1;
        }
    }

    #[test]
    fn observed_step_surfaces_every_effect_in_order() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let mut log = Log::default();
        e.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut buf,
            &mut log,
        );
        e.step_observed(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(3),
                payload: Payload::from("x"),
            }),
            &fd,
            &mut buf,
            &mut log,
        );
        assert_eq!(log.emits.len(), 2, "MSG then ACK observed");
        assert_eq!(log.emits[0].kind(), WireKind::Msg);
        assert_eq!(log.emits[1].kind(), WireKind::Ack);
        assert_eq!(log.delivers, 1);
        // The hook observes, it does not consume: the buffers still hold
        // the last step's output for the backend to drain.
        assert_eq!(buf.outbox.len(), 1);
        assert_eq!(buf.deliveries.len(), 1);
    }

    #[test]
    fn observed_and_plain_steps_are_identical() {
        let fd = FdSnapshot::none();
        let mut plain = engine();
        let mut observed = engine();
        let mut a = StepBuffers::new();
        let mut b = StepBuffers::new();
        let mut log = Log::default();
        plain.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut a);
        observed.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut b,
            &mut log,
        );
        assert_eq!(a.outbox, b.outbox);
        assert_eq!(plain.counters(), observed.counters());
        assert_eq!(log.emits, b.outbox);
    }

    #[test]
    fn fingerprint_tracks_semantic_state_not_history() {
        let fd = FdSnapshot::none();
        let mut a = engine();
        let mut b = engine();
        let fresh = a.fingerprint();
        assert_eq!(fresh, b.fingerprint(), "equal states digest equally");
        let mut buf = StepBuffers::new();
        a.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert_ne!(a.fingerprint(), fresh, "pending message changes the digest");
        // History alone (a silent tick) leaves the digest unchanged even
        // though the counters moved.
        let before = b.fingerprint();
        b.step(StepInput::Tick, &fd, &mut buf);
        assert_eq!(b.fingerprint(), before);
        assert_ne!(b.counters().steps, 0);
    }

    #[test]
    fn counters_track_activity() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        e.step(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("z"),
            }),
            &fd,
            &mut buf,
        );
        let c = e.counters();
        assert_eq!(c.steps, 3);
        assert_eq!(c.ticks, 1);
        assert_eq!(c.broadcasts, 1);
        assert_eq!(c.receives, 1);
        assert_eq!(c.deliveries, 1);
        assert_eq!(c.messages_out, 3, "MSG + tick re-send + ACK");
        assert!(!e.is_quiescent());
        assert_eq!(e.stats().msg_set, 1);
        assert_eq!(e.algorithm_name(), "scripted");
    }
}
