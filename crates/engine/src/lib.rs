//! # `urb-engine`
//!
//! The backend-agnostic per-node driving engine of the `anon-urb`
//! workspace.
//!
//! Three drivers execute the paper's protocols: the discrete-event
//! simulator (`urb-sim`), the threaded runtime (`urb-runtime`) and the
//! single-process test harness (`urb_core::harness`). Before this crate
//! existed each of them re-implemented the same cycle — take a
//! failure-detector snapshot, run one protocol step through the sans-io
//! [`AnonProcess`] trait, collect the URB deliveries, drain the outbox
//! toward the network. The engine owns that cycle once:
//!
//! * [`drive_step`] — the single implementation of "one protocol step":
//!   every backend funnels through this function, so a step is *provably
//!   identical* across the simulator, the runtime and the harness;
//! * [`StepBuffers`] — the reusable outbox/delivery buffers a step fills
//!   (drivers keep one per node or one per loop and reuse it, so the hot
//!   path performs no steady-state allocation);
//! * [`NodeEngine`] — the owning wrapper used by the multi-node drivers:
//!   protocol instance + deterministic RNG stream + cumulative
//!   [`EngineCounters`] + [`ProcessStats`] access;
//! * the **batched message plane** (DESIGN.md D8):
//!   [`StepBuffers::take_batch`] drains a step's whole outbox into one
//!   [`urb_types::Batch`] frame, so routing cost scales with steps, not
//!   messages, while per-message `retransmit_key` identity (the
//!   fair-lossy bookkeeping unit) is preserved;
//! * the **wire-frame plane** (DESIGN.md §10): for backends that cross a
//!   real serialization boundary, [`StepBuffers::take_wire_frame`]
//!   encodes the outbox straight into a pooled buffer (zero per-message
//!   allocation) and [`NodeEngine::receive_frame`] decodes incoming
//!   frames with shared payloads into persistent scratch.
//!
//! What stays backend-specific is exactly what *differs* between backends:
//! where the [`FdSnapshot`] comes from (oracle/heartbeat service keyed by
//! simulated time, membership registry keyed by wall-clock time, or a
//! scripted snapshot in tests) and what happens to the drained batch
//! (event-queue scheduling, channel send, or test inspection).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bytes::Bytes;
use urb_types::snapshot::unseal;
use urb_types::{
    encode_frame_into, encode_mux_frame_into, AnonProcess, Batch, BufPool, CodecError,
    CompactionReport, Context, Delivery, FdSnapshot, MemoryConfig, MuxBatch, Payload, PooledBuf,
    ProcessStats, RandomSource, SnapshotError, SnapshotReader, SnapshotWriter, SplitMix64, Tag,
    TopicId, WireMessage,
};

/// One input to a protocol step — the three entry points of the paper's
/// pseudocode.
#[derive(Clone, Debug)]
pub enum StepInput {
    /// One Task-1 sweep (the `repeat forever` body).
    Tick,
    /// One incoming wire message (`receive_i`).
    Receive(WireMessage),
    /// An application-level `URB_broadcast(payload)` invocation.
    Broadcast(Payload),
}

/// Reusable buffers one protocol step fills.
///
/// Drivers allocate one of these per node (or per loop) and reuse it for
/// every step; [`drive_step`] clears it first, so after the call it holds
/// exactly what *this* step emitted.
#[derive(Debug, Default)]
pub struct StepBuffers {
    /// Messages the step broadcast (the paper's `broadcast_i`), in order.
    pub outbox: Vec<WireMessage>,
    /// URB-deliveries the step produced, in order.
    pub deliveries: Vec<Delivery>,
}

impl StepBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        StepBuffers::default()
    }

    /// Drains the outbox into one [`Batch`] frame — the batched message
    /// plane. Returns `None` when the step broadcast nothing (no frame,
    /// no routing work). The outbox keeps its allocation.
    pub fn take_batch(&mut self) -> Option<Batch> {
        if self.outbox.is_empty() {
            None
        } else {
            Some(Batch::drain_from(&mut self.outbox))
        }
    }

    /// Encodes and drains the outbox as one **wire frame** through the
    /// zero-copy codec (DESIGN.md §10): acquires a recycled buffer from
    /// `pool`, writes the length-prefixed batch frame with no per-message
    /// allocation, and clears the outbox in place (capacity retained).
    /// Returns `None` when the step broadcast nothing. This is the
    /// serialization-boundary twin of [`StepBuffers::take_batch`], used by
    /// backends that move bytes (the runtime's router) rather than
    /// in-memory batches (the simulator's event queue).
    pub fn take_wire_frame(&mut self, pool: &BufPool) -> Option<PooledBuf> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut frame = pool.acquire();
        encode_frame_into(&self.outbox, &mut frame);
        self.outbox.clear();
        Some(frame)
    }

    /// True when the step neither broadcast nor delivered anything.
    pub fn is_silent(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty()
    }
}

/// Observer of the **choice points** one protocol step opens up.
///
/// Every effect a step produces is a point where a scheduler may later
/// interpose nondeterministically: each emitted wire message becomes a
/// future delivery (or adversarial-drop) decision, and each URB-delivery
/// is where crash-on-delivery adversaries arm. Backends that merely
/// *execute* a schedule (the simulator's event queue, the runtime's
/// channels) drain [`StepBuffers`] wholesale and never need this; the
/// systematic explorer (`urb-check`) hooks it to register every effect as
/// an explorable choice the moment [`drive_step_observed`] surfaces it.
pub trait StepObserver {
    /// One message left the step's outbox (in emission order).
    fn on_emit(&mut self, msg: &WireMessage);
    /// One URB-delivery fired during the step (in delivery order).
    fn on_deliver(&mut self, delivery: &Delivery);
}

/// Executes one protocol step. **The** shared implementation: every
/// backend's step goes through this function.
///
/// Clears `buf`, builds the paper-shaped [`Context`] over it, dispatches
/// `input` to the matching [`AnonProcess`] entry point and returns the
/// assigned [`Tag`] for broadcast inputs (`None` otherwise). The caller
/// supplies the [`FdSnapshot`] taken immediately before the step — the
/// paper's read-only detector variable semantics — because *where* the
/// snapshot comes from is the one genuinely backend-specific part of the
/// cycle.
pub fn drive_step(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
) -> Option<Tag> {
    buf.outbox.clear();
    buf.deliveries.clear();
    let mut ctx = Context::new(rng, fd, &mut buf.outbox, &mut buf.deliveries);
    match input {
        StepInput::Tick => {
            proc.on_tick(&mut ctx);
            None
        }
        StepInput::Receive(msg) => {
            proc.on_receive(msg, &mut ctx);
            None
        }
        StepInput::Broadcast(payload) => Some(proc.urb_broadcast(payload, &mut ctx)),
    }
}

/// [`drive_step`] with choice-point hooks: after the step executes, every
/// emission and delivery it produced is surfaced to `obs`, in order,
/// while the buffers still hold exactly this step's output. This is the
/// engine-level entry point of the exploration plane (DESIGN.md §11):
/// the explorer turns each observed emission into a pending
/// deliver-or-drop choice and each observed delivery into a potential
/// crash point.
pub fn drive_step_observed(
    proc: &mut dyn AnonProcess,
    input: StepInput,
    fd: &FdSnapshot,
    rng: &mut dyn RandomSource,
    buf: &mut StepBuffers,
    obs: &mut dyn StepObserver,
) -> Option<Tag> {
    let tag = drive_step(proc, input, fd, rng, buf);
    surface_effects(buf, obs);
    tag
}

/// Surfaces one finished step's buffered effects to an observer, in
/// order. The one definition both observed entry points share.
fn surface_effects(buf: &StepBuffers, obs: &mut dyn StepObserver) {
    for m in &buf.outbox {
        obs.on_emit(m);
    }
    for d in &buf.deliveries {
        obs.on_deliver(d);
    }
}

/// Cumulative per-node activity counters maintained by [`NodeEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total protocol steps executed.
    pub steps: u64,
    /// Task-1 sweeps among them.
    pub ticks: u64,
    /// Messages received and processed.
    pub receives: u64,
    /// `URB_broadcast` invocations.
    pub broadcasts: u64,
    /// Messages emitted to the outbox across all steps.
    pub messages_out: u64,
    /// URB-deliveries produced across all steps.
    pub deliveries: u64,
    /// Compaction sweeps executed ([`TopicEngine::compact_all`] calls).
    pub compactions: u64,
    /// State entries reclaimed by compaction, in [`ProcessStats::total`]
    /// units (summed over every sweep and topic).
    pub reclaimed: u64,
    /// Tags moved into tombstone rings by compaction.
    pub tombstoned: u64,
}

/// Reusable buffers for the **multiplexed topic plane** (DESIGN.md §12):
/// what [`StepBuffers`] is to one protocol instance, `MuxBuffers` is to a
/// whole [`TopicEngine`] — every emission and delivery carries the
/// [`TopicId`] of the instance that produced it, and the outbox drains as
/// one multiplexed frame regardless of how many topics contributed.
#[derive(Debug, Default)]
pub struct MuxBuffers {
    /// Topic-tagged emissions, grouped in ascending topic order.
    pub outbox: Vec<(TopicId, WireMessage)>,
    /// Topic-tagged URB-deliveries, in production order.
    pub deliveries: Vec<(TopicId, Delivery)>,
}

impl MuxBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        MuxBuffers::default()
    }

    /// Clears both buffers (capacity retained).
    pub fn clear(&mut self) {
        self.outbox.clear();
        self.deliveries.clear();
    }

    /// True when nothing was emitted and nothing delivered.
    pub fn is_silent(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty()
    }

    /// Encodes and drains the outbox as one **multiplexed wire frame**
    /// through the zero-copy codec: acquires a recycled buffer from
    /// `pool`, writes the topic-keyed sub-batches with no per-message
    /// allocation ([`urb_types::encode_mux_frame_into`]) and clears the
    /// outbox in place. Returns `None` when nothing was emitted. The
    /// topic-plane twin of [`StepBuffers::take_wire_frame`]: however many
    /// topics a node stepped, one frame leaves.
    pub fn take_mux_frame(&mut self, pool: &BufPool) -> Option<PooledBuf> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut frame = pool.acquire();
        encode_mux_frame_into(&self.outbox, &mut frame);
        self.outbox.clear();
        Some(frame)
    }
}

/// The owning per-node engine of the **topic plane**: one protocol
/// instance per [`TopicId`], all sharing a single deterministic RNG
/// stream and one failure-detector view, plus cumulative counters.
///
/// The paper's protocols are per-instance state machines; a node serving
/// many topics runs one instance each and multiplexes their traffic over
/// the shared links (DESIGN.md §12). `TopicEngine` owns that map. With
/// exactly one topic it is bit-for-bit the old single-instance engine —
/// same RNG consumption, same counters — which is what keeps every
/// single-topic artifact byte-identical ([`NodeEngine`] is now a thin
/// wrapper over a one-topic `TopicEngine`).
pub struct TopicEngine {
    /// Protocol instances, indexed by dense topic id (`topics[t]` serves
    /// `TopicId(t as u32)`).
    topics: Vec<Box<dyn AnonProcess + Send>>,
    rng: SplitMix64,
    counters: EngineCounters,
    /// Persistent per-message scratch for the batch/frame ingress paths,
    /// so receive loops allocate nothing in steady state.
    batch_scratch: StepBuffers,
    /// Persistent decoded-message scratch for [`NodeEngine::receive_frame`].
    frame_scratch: Vec<WireMessage>,
    /// Persistent decoded-entry scratch for
    /// [`TopicEngine::receive_mux_frame`].
    mux_scratch: Vec<(TopicId, WireMessage)>,
}

impl TopicEngine {
    /// Builds an engine over `instances` (index = topic id), sharing one
    /// RNG stream across every instance — the per-node randomness budget
    /// does not grow with topic count, and a one-topic engine consumes
    /// the stream exactly like the pre-topic [`NodeEngine`].
    pub fn new(instances: Vec<Box<dyn AnonProcess + Send>>, rng: SplitMix64) -> Self {
        assert!(!instances.is_empty(), "an engine needs at least one topic");
        TopicEngine {
            topics: instances,
            rng,
            counters: EngineCounters::default(),
            batch_scratch: StepBuffers::new(),
            frame_scratch: Vec::new(),
            mux_scratch: Vec::new(),
        }
    }

    /// Single-topic convenience constructor.
    pub fn single(proc: Box<dyn AnonProcess + Send>, rng: SplitMix64) -> Self {
        TopicEngine::new(vec![proc], rng)
    }

    /// Number of topic instances this engine serves.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Runs one step of `topic`'s instance (see [`drive_step`]) and
    /// updates the counters. Panics when `topic` is out of range — topic
    /// ids are dense configuration, not untrusted input.
    pub fn step(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        self.counters.steps += 1;
        match &input {
            StepInput::Tick => self.counters.ticks += 1,
            StepInput::Receive(_) => self.counters.receives += 1,
            StepInput::Broadcast(_) => self.counters.broadcasts += 1,
        }
        let proc = self.topics[topic.0 as usize].as_mut();
        let tag = drive_step(proc, input, fd, &mut self.rng, buf);
        self.counters.messages_out += buf.outbox.len() as u64;
        self.counters.deliveries += buf.deliveries.len() as u64;
        tag
    }

    /// [`TopicEngine::step`] through the choice-point hooks of
    /// [`drive_step_observed`]: counters update exactly as for `step`,
    /// and every emission/delivery of the step is surfaced to `obs`.
    pub fn step_observed(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
        obs: &mut dyn StepObserver,
    ) -> Option<Tag> {
        let tag = self.step(topic, input, fd, buf);
        surface_effects(buf, obs);
        tag
    }

    /// Steps `topic` and appends its tagged effects to `mux` (which is
    /// *not* cleared — successive topic steps accumulate into one
    /// multiplexed outbox, drained by [`MuxBuffers::take_mux_frame`]).
    pub fn step_mux(
        &mut self,
        topic: TopicId,
        input: StepInput,
        fd: &FdSnapshot,
        mux: &mut MuxBuffers,
    ) -> Option<Tag> {
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        let tag = self.step(topic, input, fd, &mut scratch);
        mux.outbox
            .extend(scratch.outbox.drain(..).map(|m| (topic, m)));
        mux.deliveries
            .extend(scratch.deliveries.drain(..).map(|d| (topic, d)));
        self.batch_scratch = scratch;
        tag
    }

    /// One Task-1 sweep of **every** topic instance, ascending by topic,
    /// all effects accumulated into `mux` (cleared first). This is "one
    /// node tick" on the topic plane: however many instances swept, the
    /// caller drains exactly one multiplexed frame.
    pub fn tick_all(&mut self, fd: &FdSnapshot, mux: &mut MuxBuffers) {
        mux.clear();
        for t in 0..self.topics.len() {
            self.step_mux(TopicId(t as u32), StepInput::Tick, fd, mux);
        }
    }

    /// Feeds every entry of a received **multiplexed frame** through the
    /// matching topic instance: decodes with shared payloads into a
    /// persistent scratch (zero copies, zero steady-state allocation),
    /// then steps per message. `before_each` runs before each step and
    /// supplies the failure-detector snapshot it must observe. Effects
    /// accumulate into `mux` (cleared first). An entry addressed to a
    /// topic this engine does not serve is a routing bug, reported as
    /// [`MuxIngressError::UnknownTopic`] before any message is stepped.
    pub fn receive_mux_frame(
        &mut self,
        frame: &Bytes,
        mux: &mut MuxBuffers,
        mut before_each: impl FnMut(TopicId, &WireMessage) -> FdSnapshot,
    ) -> Result<(), MuxIngressError> {
        let mut entries = std::mem::take(&mut self.mux_scratch);
        if let Err(e) = MuxBatch::decode_shared_into(frame, &mut entries) {
            self.mux_scratch = entries;
            return Err(MuxIngressError::Codec(e));
        }
        if let Some(&(topic, _)) = entries
            .iter()
            .find(|(t, _)| (t.0 as usize) >= self.topics.len())
        {
            self.mux_scratch = entries;
            return Err(MuxIngressError::UnknownTopic(topic));
        }
        mux.clear();
        for (topic, msg) in entries.drain(..) {
            let fd = before_each(topic, &msg);
            self.step_mux(topic, StepInput::Receive(msg), &fd, mux);
        }
        self.mux_scratch = entries;
        Ok(())
    }

    /// True when **every** topic instance is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.topics.iter().all(|p| p.is_quiescent())
    }

    /// One topic's quiescence predicate.
    pub fn topic_is_quiescent(&self, topic: TopicId) -> bool {
        self.topics[topic.0 as usize].is_quiescent()
    }

    /// Aggregate state-size snapshot: the field-wise sum over every topic
    /// instance (single topic: exactly that instance's stats).
    pub fn stats(&self) -> ProcessStats {
        let mut total = ProcessStats::default();
        for p in &self.topics {
            let s = p.stats();
            total.msg_set += s.msg_set;
            total.my_acks += s.my_acks;
            total.all_ack_entries += s.all_ack_entries;
            total.delivered += s.delivered;
            total.label_counters += s.label_counters;
        }
        total
    }

    /// One topic instance's state-size snapshot.
    pub fn stats_for(&self, topic: TopicId) -> ProcessStats {
        self.topics[topic.0 as usize].stats()
    }

    /// The wrapped protocol's short name (all topics run the same
    /// algorithm; topic 0 is representative).
    pub fn algorithm_name(&self) -> &'static str {
        self.topics[0].algorithm_name()
    }

    /// Cumulative activity counters, aggregated across topics.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Direct access to one topic's protocol instance (diagnostics only;
    /// stepping must go through [`TopicEngine::step`]).
    pub fn protocol(&self, topic: TopicId) -> &dyn AnonProcess {
        self.topics[topic.0 as usize].as_ref()
    }

    /// A deterministic digest of this engine's *semantic* state across
    /// every topic instance: per-topic [`ProcessStats`], quiescence and
    /// the algorithm name — deliberately **not** the history counters, so
    /// two engines that converged to the same protocol state through
    /// different schedules digest equally. The exploration plane folds
    /// these per-node digests (plus its own pending-message and crash-set
    /// hashes) into the state hash it prunes on (DESIGN.md §11). The
    /// digest is approximate: distinct internal states with equal sizes
    /// can collide, which makes pruning coarser but never suppresses a
    /// violation checked before pruning.
    pub fn fingerprint(&self) -> u64 {
        fn fold(h: &mut u64, word: u64) {
            for b in word.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.algorithm_name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for (t, p) in self.topics.iter().enumerate() {
            let s = p.stats();
            fold(&mut h, t as u64);
            for field in [
                s.msg_set,
                s.my_acks,
                s.all_ack_entries,
                s.delivered,
                s.label_counters,
            ] {
                fold(&mut h, field as u64);
            }
            fold(&mut h, u64::from(p.is_quiescent()));
        }
        h
    }

    /// Switches **every** topic instance into bounded-memory mode
    /// (DESIGN.md §14). Call before stepping begins; with no call, the
    /// engine never compacts and behaves byte-identically to the
    /// pre-memory-plane engine.
    pub fn configure_memory(&mut self, cfg: MemoryConfig) {
        for p in &mut self.topics {
            p.configure_memory(cfg);
        }
    }

    /// One compaction sweep over every topic instance, under the caller's
    /// current failure-detector snapshot. Drivers call this after their
    /// per-topic Task-1 sweeps; an engine whose memory mode was never
    /// configured reports an all-zero sweep and changes nothing. Totals
    /// accumulate into [`EngineCounters::reclaimed`] /
    /// [`EngineCounters::tombstoned`].
    pub fn compact_all(&mut self, fd: &FdSnapshot) -> CompactionReport {
        let mut total = CompactionReport::default();
        for p in &mut self.topics {
            total.absorb(p.compact(fd));
        }
        self.counters.compactions += 1;
        self.counters.reclaimed += total.reclaimed as u64;
        self.counters.tombstoned += total.tombstoned as u64;
        total
    }

    /// Serializes the whole engine — algorithm, per-topic protocol state,
    /// the shared RNG stream position and the cumulative counters — into a
    /// sealed snapshot envelope (DESIGN.md §14). Byte-deterministic: two
    /// engines with equal state produce identical bytes.
    ///
    /// Errors with [`SnapshotError::Malformed`] when the wrapped algorithm
    /// does not support snapshots (the baseline broadcasts keep no
    /// reconstructible state).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_str(self.algorithm_name());
        w.put_u64(self.topics.len() as u64);
        w.put_u64(self.rng.state());
        let c = self.counters;
        for v in [
            c.steps,
            c.ticks,
            c.receives,
            c.broadcasts,
            c.messages_out,
            c.deliveries,
            c.compactions,
            c.reclaimed,
            c.tombstoned,
        ] {
            w.put_u64(v);
        }
        for (t, p) in self.topics.iter().enumerate() {
            let body = p.save_state().ok_or_else(|| {
                SnapshotError::Malformed(format!(
                    "algorithm {:?} (topic {t}) does not support snapshots",
                    self.algorithm_name()
                ))
            })?;
            w.put_bytes(&body);
        }
        Ok(w.into_envelope())
    }

    /// Restores a snapshot written by [`TopicEngine::save_snapshot`] into
    /// this engine, which must have been **freshly built with the same
    /// configuration** (same algorithm, same topic count, same
    /// [`TopicEngine::configure_memory`] call if any — the memory config
    /// is deployment configuration, not persisted state). The RNG resumes
    /// at the exact saved stream position, so a restored engine draws the
    /// same randomness the crashed one would have.
    ///
    /// On error the engine may be partially overwritten and must be
    /// discarded — drivers always restore into a throwaway fresh engine.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let body = unseal(bytes)?;
        let mut r = SnapshotReader::new(body);
        let alg = r.get_str()?;
        if alg != self.algorithm_name() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot is for algorithm {alg:?}, engine runs {:?}",
                self.algorithm_name()
            )));
        }
        let topics = r.get_u64()? as usize;
        if topics != self.topics.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {topics} topics, engine serves {}",
                self.topics.len()
            )));
        }
        let rng_state = r.get_u64()?;
        let mut counters = EngineCounters::default();
        for slot in [
            &mut counters.steps,
            &mut counters.ticks,
            &mut counters.receives,
            &mut counters.broadcasts,
            &mut counters.messages_out,
            &mut counters.deliveries,
            &mut counters.compactions,
            &mut counters.reclaimed,
            &mut counters.tombstoned,
        ] {
            *slot = r.get_u64()?;
        }
        for p in &mut self.topics {
            p.restore_state(r.get_bytes()?)?;
        }
        r.finish()?;
        self.rng = SplitMix64::from_state(rng_state);
        self.counters = counters;
        Ok(())
    }
}

impl std::fmt::Debug for TopicEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopicEngine")
            .field("algorithm", &self.algorithm_name())
            .field("topics", &self.topics.len())
            .field("counters", &self.counters)
            .finish()
    }
}

/// Errors of the multiplexed ingress path
/// ([`TopicEngine::receive_mux_frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxIngressError {
    /// The frame bytes were malformed.
    Codec(CodecError),
    /// The frame addressed a topic this engine does not serve (a routing
    /// bug — lanes are supposed to shard by topic).
    UnknownTopic(TopicId),
}

impl std::fmt::Display for MuxIngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxIngressError::Codec(e) => write!(f, "mux frame codec error: {e}"),
            MuxIngressError::UnknownTopic(t) => write!(f, "mux frame for unserved topic {t}"),
        }
    }
}

impl std::error::Error for MuxIngressError {}

/// The owning per-node engine used by single-instance drivers: one
/// protocol instance, its deterministic RNG stream, and counters.
///
/// Since the topic plane (DESIGN.md §12) this is a thin wrapper over a
/// one-topic [`TopicEngine`] — there is exactly one stepping
/// implementation — kept because most call sites (the test harness, the
/// exploration plane's single-topic scenarios, the A/B codec harness)
/// genuinely drive one instance and should not spell `TopicId::ZERO`.
pub struct NodeEngine {
    inner: TopicEngine,
}

impl NodeEngine {
    /// Wraps a protocol instance with its own seeded RNG stream.
    pub fn new(proc: Box<dyn AnonProcess + Send>, rng: SplitMix64) -> Self {
        NodeEngine {
            inner: TopicEngine::single(proc, rng),
        }
    }

    /// Runs one step (see [`drive_step`]) and updates the counters.
    pub fn step(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
    ) -> Option<Tag> {
        self.inner.step(TopicId::ZERO, input, fd, buf)
    }

    /// [`NodeEngine::step`] through the choice-point hooks of
    /// [`drive_step_observed`]: counters update exactly as for `step`,
    /// and every emission/delivery of the step is surfaced to `obs`.
    pub fn step_observed(
        &mut self,
        input: StepInput,
        fd: &FdSnapshot,
        buf: &mut StepBuffers,
        obs: &mut dyn StepObserver,
    ) -> Option<Tag> {
        self.inner.step_observed(TopicId::ZERO, input, fd, buf, obs)
    }

    /// A deterministic digest of this engine's *semantic* state (see
    /// [`TopicEngine::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    /// Feeds every message of a received batch through the engine,
    /// accumulating all emissions into `buf` (which is cleared once, up
    /// front). `before_each` runs before each message's step — backends
    /// use it to update their failure-detector service and return the
    /// fresh snapshot the step must observe.
    pub fn receive_batch(
        &mut self,
        batch: Batch,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) {
        buf.outbox.clear();
        buf.deliveries.clear();
        // Reuse the engine-owned scratch (moved out for the loop so `step`
        // can borrow `self` mutably, moved back after — capacity is kept).
        let mut scratch = std::mem::take(&mut self.inner.batch_scratch);
        for msg in batch {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.inner.batch_scratch = scratch;
    }

    /// Feeds every message of a received **wire frame** through the
    /// engine: decodes the frame with shared payloads (zero copies — each
    /// decoded payload is a refcounted view of `frame`, see
    /// [`Batch::decode_shared_into`]) into a persistent scratch vector,
    /// then steps exactly like [`NodeEngine::receive_batch`]. The
    /// serialization-boundary ingress twin of
    /// [`StepBuffers::take_wire_frame`]; in steady state the whole
    /// decode-and-step loop allocates only what the protocol itself
    /// retains.
    ///
    /// Errors only on a malformed frame, which in-process backends treat
    /// as a bug (their frames come from [`StepBuffers::take_wire_frame`]).
    pub fn receive_frame(
        &mut self,
        frame: &Bytes,
        buf: &mut StepBuffers,
        mut before_each: impl FnMut(&WireMessage) -> FdSnapshot,
    ) -> Result<(), CodecError> {
        let mut msgs = std::mem::take(&mut self.inner.frame_scratch);
        if let Err(e) = Batch::decode_shared_into(frame, &mut msgs) {
            self.inner.frame_scratch = msgs;
            return Err(e);
        }
        buf.outbox.clear();
        buf.deliveries.clear();
        let mut scratch = std::mem::take(&mut self.inner.batch_scratch);
        for msg in msgs.drain(..) {
            let fd = before_each(&msg);
            self.step(StepInput::Receive(msg), &fd, &mut scratch);
            buf.outbox.append(&mut scratch.outbox);
            buf.deliveries.append(&mut scratch.deliveries);
        }
        self.inner.batch_scratch = scratch;
        self.inner.frame_scratch = msgs;
        Ok(())
    }

    /// The wrapped protocol's quiescence predicate.
    pub fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }

    /// The wrapped protocol's state-size snapshot (experiment E9).
    pub fn stats(&self) -> ProcessStats {
        self.inner.stats()
    }

    /// The wrapped protocol's short name.
    pub fn algorithm_name(&self) -> &'static str {
        self.inner.algorithm_name()
    }

    /// Cumulative activity counters.
    pub fn counters(&self) -> EngineCounters {
        self.inner.counters()
    }

    /// Direct access to the protocol instance (diagnostics only; stepping
    /// must go through [`NodeEngine::step`]).
    pub fn protocol(&self) -> &dyn AnonProcess {
        self.inner.protocol(TopicId::ZERO)
    }

    /// Switches the instance into bounded-memory mode (see
    /// [`TopicEngine::configure_memory`]).
    pub fn configure_memory(&mut self, cfg: MemoryConfig) {
        self.inner.configure_memory(cfg);
    }

    /// One compaction sweep (see [`TopicEngine::compact_all`]).
    pub fn compact(&mut self, fd: &FdSnapshot) -> CompactionReport {
        self.inner.compact_all(fd)
    }

    /// Serializes the engine (see [`TopicEngine::save_snapshot`]).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.inner.save_snapshot()
    }

    /// Restores a snapshot into this freshly-built engine (see
    /// [`TopicEngine::restore_snapshot`]).
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.restore_snapshot(bytes)
    }
}

impl std::fmt::Debug for NodeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeEngine")
            .field("algorithm", &self.inner.algorithm_name())
            .field("counters", &self.inner.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{Label, LabelSet, TagAck, WireKind};

    /// A scripted protocol: acks every MSG, re-broadcasts on tick.
    struct Scripted {
        pending: Vec<WireMessage>,
    }

    impl AnonProcess for Scripted {
        fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
            let tag = Tag::random(ctx.rng);
            let msg = WireMessage::Msg { tag, payload };
            self.pending.push(msg.clone());
            ctx.broadcast(msg);
            tag
        }

        fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
            if let WireMessage::Msg { tag, payload } = msg {
                let tag_ack = TagAck::random(ctx.rng);
                ctx.broadcast(WireMessage::Ack {
                    tag,
                    tag_ack,
                    payload: payload.clone(),
                    labels: Some(LabelSet::from_iter([Label(1)])),
                });
                ctx.deliver(tag, payload, false);
            }
        }

        fn on_tick(&mut self, ctx: &mut Context<'_>) {
            for m in &self.pending {
                ctx.broadcast(m.clone());
            }
        }

        fn is_quiescent(&self) -> bool {
            self.pending.is_empty()
        }

        fn stats(&self) -> ProcessStats {
            ProcessStats {
                msg_set: self.pending.len(),
                ..ProcessStats::default()
            }
        }

        fn algorithm_name(&self) -> &'static str {
            "scripted"
        }

        fn compact(&mut self, _fd: &FdSnapshot) -> CompactionReport {
            // Scripted "stability": every pending message is reclaimable.
            let reclaimed = self.pending.len();
            self.pending.clear();
            CompactionReport {
                reclaimed,
                tombstoned: reclaimed,
            }
        }

        fn save_state(&self) -> Option<Vec<u8>> {
            let mut w = SnapshotWriter::new();
            w.put_u64(self.pending.len() as u64);
            for m in &self.pending {
                if let WireMessage::Msg { tag, payload } = m {
                    w.put_u128(tag.0);
                    w.put_bytes(payload.as_slice());
                }
            }
            Some(w.into_body())
        }

        fn restore_state(&mut self, body: &[u8]) -> Result<(), SnapshotError> {
            let mut r = SnapshotReader::new(body);
            let len = r.get_u64()? as usize;
            self.pending.clear();
            for _ in 0..len {
                let tag = Tag(r.get_u128()?);
                let payload = Payload::copy_from_slice(r.get_bytes()?);
                self.pending.push(WireMessage::Msg { tag, payload });
            }
            r.finish()
        }
    }

    /// A protocol with no snapshot support (keeps the trait defaults).
    struct Opaque;

    impl AnonProcess for Opaque {
        fn urb_broadcast(&mut self, _payload: Payload, ctx: &mut Context<'_>) -> Tag {
            Tag::random(ctx.rng)
        }
        fn on_receive(&mut self, _msg: WireMessage, _ctx: &mut Context<'_>) {}
        fn on_tick(&mut self, _ctx: &mut Context<'_>) {}
        fn is_quiescent(&self) -> bool {
            true
        }
        fn stats(&self) -> ProcessStats {
            ProcessStats::default()
        }
        fn algorithm_name(&self) -> &'static str {
            "opaque"
        }
    }

    fn engine() -> NodeEngine {
        NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        )
    }

    #[test]
    fn drive_step_clears_buffers_between_steps() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let tag = e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert!(tag.is_some());
        assert_eq!(buf.outbox.len(), 1);
        // A silent step leaves empty buffers, not the previous contents.
        let mut silent = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(8),
        );
        silent.step(StepInput::Tick, &fd, &mut buf);
        assert!(buf.is_silent());
    }

    #[test]
    fn identical_input_sequences_produce_identical_output() {
        // The cross-backend guarantee in miniature: same seed, same inputs
        // => byte-identical emissions, whichever driver calls drive_step.
        let fd = FdSnapshot::none();
        let run = || {
            let mut e = engine();
            let mut buf = StepBuffers::new();
            let mut log: Vec<WireMessage> = Vec::new();
            e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            e.step(
                StepInput::Receive(WireMessage::Msg {
                    tag: Tag(9),
                    payload: Payload::from("x"),
                }),
                &fd,
                &mut buf,
            );
            log.extend(buf.outbox.iter().cloned());
            e.step(StepInput::Tick, &fd, &mut buf);
            log.extend(buf.outbox.iter().cloned());
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_batch_moves_the_whole_outbox() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("a")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        let batch = buf.take_batch().expect("tick re-broadcasts");
        assert_eq!(batch.len(), 1);
        assert!(buf.take_batch().is_none(), "outbox drained");
    }

    #[test]
    fn receive_batch_accumulates_across_members() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let batch: Batch = (0..3u128)
            .map(|i| WireMessage::Msg {
                tag: Tag(i),
                payload: Payload::from("p"),
            })
            .collect();
        let mut snapshots = 0;
        e.receive_batch(batch, &mut buf, |_| {
            snapshots += 1;
            FdSnapshot::none()
        });
        assert_eq!(snapshots, 3, "one snapshot per member, as unbatched");
        assert_eq!(buf.deliveries.len(), 3);
        assert_eq!(buf.outbox.len(), 3);
        assert!(buf.outbox.iter().all(|m| m.kind() == WireKind::Ack));
    }

    #[test]
    fn wire_frame_round_trip_matches_in_memory_plane() {
        // Drive two identical engines, one over the in-memory batch plane
        // and one over the wire-frame plane: same emissions, same
        // deliveries, and the frame path's pool stops allocating.
        let fd = FdSnapshot::none();
        let pool = BufPool::new(4);
        let mut sender = engine();
        let mut mem_rx = engine();
        let mut wire_rx = NodeEngine::new(
            Box::new(Scripted {
                pending: Vec::new(),
            }),
            SplitMix64::new(7),
        );
        let mut buf = StepBuffers::new();
        let mut mem_out = StepBuffers::new();
        let mut wire_out = StepBuffers::new();
        for round in 0..8u32 {
            sender.step(
                StepInput::Broadcast(Payload::from(format!("m{round}").as_str())),
                &fd,
                &mut buf,
            );
            let batch = Batch::drain_from(&mut buf.outbox.clone());
            let frame = buf.take_wire_frame(&pool).expect("broadcast emits");
            assert!(buf.outbox.is_empty(), "frame drained the outbox");
            let bytes = Bytes::copy_from_slice(&frame);
            drop(frame); // back to the pool
            mem_rx.receive_batch(batch, &mut mem_out, |_| FdSnapshot::none());
            wire_rx
                .receive_frame(&bytes, &mut wire_out, |_| FdSnapshot::none())
                .expect("well-formed frame");
            assert_eq!(mem_out.outbox, wire_out.outbox, "round {round}");
            assert_eq!(mem_out.deliveries.len(), wire_out.deliveries.len());
        }
        let s = pool.stats();
        assert_eq!(s.created, 1, "one pooled frame buffer serves every step");
        assert_eq!(s.recycled, 7);
        assert_eq!(mem_rx.counters().receives, wire_rx.counters().receives);
    }

    #[test]
    fn receive_frame_rejects_garbage_and_keeps_scratch() {
        let mut e = engine();
        let mut buf = StepBuffers::new();
        let garbage = Bytes::copy_from_slice(&[0x42, 0, 1]);
        assert!(e
            .receive_frame(&garbage, &mut buf, |_| FdSnapshot::none())
            .is_err());
        // The engine remains usable after a bad frame.
        let ok: Batch = std::iter::once(WireMessage::Msg {
            tag: Tag(5),
            payload: Payload::from("x"),
        })
        .collect();
        let frame = ok.encode();
        e.receive_frame(&frame, &mut buf, |_| FdSnapshot::none())
            .unwrap();
        assert_eq!(buf.deliveries.len(), 1);
    }

    /// Collects observed effects for the hook tests.
    #[derive(Default)]
    struct Log {
        emits: Vec<WireMessage>,
        delivers: usize,
    }

    impl StepObserver for Log {
        fn on_emit(&mut self, msg: &WireMessage) {
            self.emits.push(msg.clone());
        }
        fn on_deliver(&mut self, _d: &Delivery) {
            self.delivers += 1;
        }
    }

    #[test]
    fn observed_step_surfaces_every_effect_in_order() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        let mut log = Log::default();
        e.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut buf,
            &mut log,
        );
        e.step_observed(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(3),
                payload: Payload::from("x"),
            }),
            &fd,
            &mut buf,
            &mut log,
        );
        assert_eq!(log.emits.len(), 2, "MSG then ACK observed");
        assert_eq!(log.emits[0].kind(), WireKind::Msg);
        assert_eq!(log.emits[1].kind(), WireKind::Ack);
        assert_eq!(log.delivers, 1);
        // The hook observes, it does not consume: the buffers still hold
        // the last step's output for the backend to drain.
        assert_eq!(buf.outbox.len(), 1);
        assert_eq!(buf.deliveries.len(), 1);
    }

    #[test]
    fn observed_and_plain_steps_are_identical() {
        let fd = FdSnapshot::none();
        let mut plain = engine();
        let mut observed = engine();
        let mut a = StepBuffers::new();
        let mut b = StepBuffers::new();
        let mut log = Log::default();
        plain.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut a);
        observed.step_observed(
            StepInput::Broadcast(Payload::from("m")),
            &fd,
            &mut b,
            &mut log,
        );
        assert_eq!(a.outbox, b.outbox);
        assert_eq!(plain.counters(), observed.counters());
        assert_eq!(log.emits, b.outbox);
    }

    #[test]
    fn fingerprint_tracks_semantic_state_not_history() {
        let fd = FdSnapshot::none();
        let mut a = engine();
        let mut b = engine();
        let fresh = a.fingerprint();
        assert_eq!(fresh, b.fingerprint(), "equal states digest equally");
        let mut buf = StepBuffers::new();
        a.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        assert_ne!(a.fingerprint(), fresh, "pending message changes the digest");
        // History alone (a silent tick) leaves the digest unchanged even
        // though the counters moved.
        let before = b.fingerprint();
        b.step(StepInput::Tick, &fd, &mut buf);
        assert_eq!(b.fingerprint(), before);
        assert_ne!(b.counters().steps, 0);
    }

    fn topic_engine(topics: usize, seed: u64) -> TopicEngine {
        TopicEngine::new(
            (0..topics)
                .map(|_| {
                    Box::new(Scripted {
                        pending: Vec::new(),
                    }) as Box<dyn AnonProcess + Send>
                })
                .collect(),
            SplitMix64::new(seed),
        )
    }

    #[test]
    fn one_topic_engine_is_bit_identical_to_node_engine() {
        // The byte-compatibility cornerstone: a single-topic TopicEngine
        // consumes the RNG stream exactly like the wrapped NodeEngine.
        let fd = FdSnapshot::none();
        let mut node = engine();
        let mut topic = topic_engine(1, 7);
        let mut a = StepBuffers::new();
        let mut b = StepBuffers::new();
        for round in 0..4u32 {
            let payload = Payload::from(format!("m{round}").as_str());
            let ta = node.step(StepInput::Broadcast(payload.clone()), &fd, &mut a);
            let tb = topic.step(TopicId::ZERO, StepInput::Broadcast(payload), &fd, &mut b);
            assert_eq!(ta, tb, "round {round}");
            assert_eq!(a.outbox, b.outbox);
            node.step(StepInput::Tick, &fd, &mut a);
            topic.step(TopicId::ZERO, StepInput::Tick, &fd, &mut b);
            assert_eq!(a.outbox, b.outbox);
        }
        assert_eq!(node.counters(), topic.counters());
        assert_eq!(node.fingerprint(), topic.fingerprint());
    }

    #[test]
    fn topic_instances_are_isolated_but_share_the_rng() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(3, 9);
        let mut mux = MuxBuffers::new();
        let t1 = e
            .step_mux(
                TopicId(1),
                StepInput::Broadcast(Payload::from("one")),
                &fd,
                &mut mux,
            )
            .expect("tag");
        let t2 = e
            .step_mux(
                TopicId(2),
                StepInput::Broadcast(Payload::from("two")),
                &fd,
                &mut mux,
            )
            .expect("tag");
        assert_ne!(t1, t2, "shared stream, distinct draws");
        assert_eq!(mux.outbox.len(), 2);
        assert_eq!(mux.outbox[0].0, TopicId(1));
        assert_eq!(mux.outbox[1].0, TopicId(2));
        // Topic 0 never broadcast: it stays quiescent while 1 and 2 hold
        // pending messages.
        assert!(e.topic_is_quiescent(TopicId(0)));
        assert!(!e.topic_is_quiescent(TopicId(1)));
        assert!(!e.is_quiescent());
        assert_eq!(e.stats().msg_set, 2, "aggregate across topics");
        assert_eq!(e.stats_for(TopicId(1)).msg_set, 1);
    }

    #[test]
    fn tick_all_sweeps_every_topic_into_one_frame() {
        let fd = FdSnapshot::none();
        let pool = BufPool::new(2);
        let mut e = topic_engine(2, 11);
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("a")),
            &fd,
            &mut mux,
        );
        e.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("b")),
            &fd,
            &mut mux,
        );
        mux.clear();
        e.tick_all(&fd, &mut mux);
        assert_eq!(mux.outbox.len(), 2, "each topic re-broadcasts one MSG");
        let frame = mux.take_mux_frame(&pool).expect("emissions present");
        let decoded = MuxBatch::decode_shared(&Bytes::copy_from_slice(&frame)).unwrap();
        assert_eq!(decoded.topic_count(), 2);
        assert!(mux.outbox.is_empty(), "frame drained the outbox");
        assert!(mux.take_mux_frame(&pool).is_none());
    }

    #[test]
    fn mux_frame_round_trip_delivers_to_matching_topics() {
        let fd = FdSnapshot::none();
        let pool = BufPool::new(2);
        let mut sender = topic_engine(2, 5);
        let mut receiver = topic_engine(2, 6);
        let mut mux = MuxBuffers::new();
        sender.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("t0")),
            &fd,
            &mut mux,
        );
        sender.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("t1")),
            &fd,
            &mut mux,
        );
        let frame = mux.take_mux_frame(&pool).unwrap();
        let bytes = Bytes::copy_from_slice(&frame);
        drop(frame);
        let mut observed = Vec::new();
        let mut rx_mux = MuxBuffers::new();
        receiver
            .receive_mux_frame(&bytes, &mut rx_mux, |topic, msg| {
                observed.push((topic, msg.kind()));
                FdSnapshot::none()
            })
            .expect("well-formed frame");
        assert_eq!(
            observed,
            vec![(TopicId(0), WireKind::Msg), (TopicId(1), WireKind::Msg)]
        );
        // The scripted protocol delivers + ACKs per received MSG, per topic.
        assert_eq!(rx_mux.deliveries.len(), 2);
        assert_eq!(rx_mux.deliveries[0].0, TopicId(0));
        assert_eq!(rx_mux.deliveries[1].0, TopicId(1));
        assert!(rx_mux.outbox.iter().all(|(_, m)| m.kind() == WireKind::Ack));
    }

    #[test]
    fn mux_ingress_rejects_garbage_and_unknown_topics() {
        let mut e = topic_engine(1, 3);
        let mut mux = MuxBuffers::new();
        let garbage = Bytes::copy_from_slice(&[0x42, 0, 1]);
        assert!(matches!(
            e.receive_mux_frame(&garbage, &mut mux, |_, _| FdSnapshot::none()),
            Err(MuxIngressError::Codec(_))
        ));
        // A frame for topic 7 cannot land on a 1-topic engine.
        let foreign = MuxBatch::from_entries(&[(
            TopicId(7),
            WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("x"),
            },
        )]);
        let err = e
            .receive_mux_frame(&foreign.encode(), &mut mux, |_, _| FdSnapshot::none())
            .unwrap_err();
        assert_eq!(err, MuxIngressError::UnknownTopic(TopicId(7)));
        // The engine stays usable.
        let ok = MuxBatch::from_entries(&[(
            TopicId::ZERO,
            WireMessage::Msg {
                tag: Tag(2),
                payload: Payload::from("y"),
            },
        )]);
        e.receive_mux_frame(&ok.encode(), &mut mux, |_, _| FdSnapshot::none())
            .unwrap();
        assert_eq!(mux.deliveries.len(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let mut e = engine();
        let fd = FdSnapshot::none();
        let mut buf = StepBuffers::new();
        e.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        e.step(StepInput::Tick, &fd, &mut buf);
        e.step(
            StepInput::Receive(WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from("z"),
            }),
            &fd,
            &mut buf,
        );
        let c = e.counters();
        assert_eq!(c.steps, 3);
        assert_eq!(c.ticks, 1);
        assert_eq!(c.broadcasts, 1);
        assert_eq!(c.receives, 1);
        assert_eq!(c.deliveries, 1);
        assert_eq!(c.messages_out, 3, "MSG + tick re-send + ACK");
        assert!(!e.is_quiescent());
        assert_eq!(e.stats().msg_set, 1);
        assert_eq!(e.algorithm_name(), "scripted");
    }

    // ---- memory plane (DESIGN.md §14) ----------------------------------

    #[test]
    fn compact_all_sweeps_every_topic_and_accumulates_counters() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 13);
        let mut mux = MuxBuffers::new();
        for t in 0..2u32 {
            e.step_mux(
                TopicId(t),
                StepInput::Broadcast(Payload::from("m")),
                &fd,
                &mut mux,
            );
        }
        assert_eq!(e.stats().msg_set, 2);
        let report = e.compact_all(&fd);
        assert_eq!(report.reclaimed, 2, "one pending message per topic");
        assert_eq!(report.tombstoned, 2);
        assert_eq!(e.stats().msg_set, 0);
        let c = e.counters();
        assert_eq!(c.compactions, 1);
        assert_eq!(c.reclaimed, 2);
        assert_eq!(c.tombstoned, 2);
        // A second sweep finds nothing but still counts as a sweep.
        let empty = e.compact_all(&fd);
        assert_eq!(empty.reclaimed, 0);
        assert_eq!(e.counters().compactions, 2);
        assert_eq!(e.counters().reclaimed, 2);
    }

    #[test]
    fn snapshot_round_trip_restores_state_counters_and_rng() {
        let fd = FdSnapshot::none();
        let mut original = topic_engine(2, 21);
        let mut mux = MuxBuffers::new();
        original.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("alpha")),
            &fd,
            &mut mux,
        );
        original.step_mux(
            TopicId(1),
            StepInput::Broadcast(Payload::from("beta")),
            &fd,
            &mut mux,
        );
        original.tick_all(&fd, &mut mux);
        let bytes = original
            .save_snapshot()
            .expect("scripted supports snapshots");
        assert_eq!(
            bytes,
            original.save_snapshot().unwrap(),
            "byte-deterministic serialization"
        );
        // Restore into a fresh engine built with a *different* seed: the
        // snapshot carries the exact RNG stream position.
        let mut restored = topic_engine(2, 999);
        restored.restore_snapshot(&bytes).expect("round trip");
        assert_eq!(restored.fingerprint(), original.fingerprint());
        assert_eq!(restored.counters(), original.counters());
        assert_eq!(restored.stats().msg_set, 2);
        // Both engines continue identically — same draws, same emissions.
        let ta = original.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("next")),
            &fd,
            &mut mux,
        );
        let mut mux2 = MuxBuffers::new();
        let tb = restored.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("next")),
            &fd,
            &mut mux2,
        );
        assert_eq!(ta, tb, "restored RNG resumes the exact stream");
    }

    #[test]
    fn restore_rejects_mismatch_and_corruption() {
        let fd = FdSnapshot::none();
        let mut e = topic_engine(2, 3);
        let mut mux = MuxBuffers::new();
        e.step_mux(
            TopicId(0),
            StepInput::Broadcast(Payload::from("x")),
            &fd,
            &mut mux,
        );
        let bytes = e.save_snapshot().unwrap();
        // Topic-count mismatch.
        let mut narrow = topic_engine(1, 3);
        assert!(matches!(
            narrow.restore_snapshot(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
        // Algorithm mismatch.
        let mut other = TopicEngine::new(
            vec![
                Box::new(Opaque) as Box<dyn AnonProcess + Send>,
                Box::new(Opaque),
            ],
            SplitMix64::new(3),
        );
        assert!(matches!(
            other.restore_snapshot(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
        // Bit-flip in the body fails the checksum before any decoding.
        let mut flipped = bytes.clone();
        let mid = 16 + (flipped.len() - 24) / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            topic_engine(2, 3).restore_snapshot(&flipped),
            Err(SnapshotError::Checksum { .. })
        ));
        // Garbage is not a snapshot at all.
        assert!(matches!(
            topic_engine(2, 3).restore_snapshot(b"nope"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn save_snapshot_errors_for_unsupported_algorithms() {
        let e = TopicEngine::single(Box::new(Opaque), SplitMix64::new(1));
        assert!(matches!(
            e.save_snapshot(),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn node_engine_forwards_the_memory_plane() {
        let fd = FdSnapshot::none();
        let mut node = engine();
        node.configure_memory(MemoryConfig::default());
        let mut buf = StepBuffers::new();
        node.step(StepInput::Broadcast(Payload::from("m")), &fd, &mut buf);
        let bytes = node.save_snapshot().unwrap();
        let report = node.compact(&fd);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(node.counters().compactions, 1);
        let mut back = engine();
        back.restore_snapshot(&bytes).unwrap();
        assert_eq!(back.stats().msg_set, 1, "snapshot predates the sweep");
    }
}
