//! Property test: the O(1) topic directory (DESIGN.md §16) is
//! observationally equivalent to the binary-search-plus-tombstone-set
//! representation it replaced.
//!
//! A `Model` keeps the old layout — a sorted `Vec` of (topic, draining)
//! probed by `binary_search`, plus `BTreeSet`s for retired tombstones and
//! subscriptions — and both it and a real [`TopicEngine`] are driven
//! through the same random create/retire/subscribe/tick churn. After
//! every operation the engine's one-probe [`TopicEngine::resolve`]
//! verdicts, subscription bookkeeping and lifecycle
//! [`EngineCounters`](urb_engine::EngineCounters) must match the model
//! exactly, across the dense, slack-boundary and hash-map id lanes.

use proptest::prelude::*;
use std::collections::BTreeSet;
use urb_engine::{MuxBuffers, TopicEngine, TopicState};
use urb_types::{
    AnonProcess, Context, FdSnapshot, Payload, ProcessStats, SplitMix64, Tag, TopicId, WireMessage,
};

/// Always-quiescent stub protocol: retirement drains instantly, so one
/// tick sweep reaps every draining slot — the model's `tick` mirrors
/// exactly that.
struct Inert;

impl AnonProcess for Inert {
    fn urb_broadcast(&mut self, _payload: Payload, ctx: &mut Context<'_>) -> Tag {
        Tag::random(ctx.rng)
    }
    fn on_receive(&mut self, _msg: WireMessage, _ctx: &mut Context<'_>) {}
    fn on_tick(&mut self, _ctx: &mut Context<'_>) {}
    fn is_quiescent(&self) -> bool {
        true
    }
    fn stats(&self) -> ProcessStats {
        ProcessStats::default()
    }
    fn algorithm_name(&self) -> &'static str {
        "inert"
    }
}

fn inert() -> Box<dyn AnonProcess + Send> {
    Box::new(Inert)
}

/// The pre-directory representation, verbatim: sorted slot vector probed
/// by binary search, tombstones and subscriptions in ordered sets.
#[derive(Default)]
struct Model {
    /// (topic, draining), ascending by topic.
    slots: Vec<(TopicId, bool)>,
    retired: BTreeSet<TopicId>,
    subs: BTreeSet<TopicId>,
    created: u64,
    retired_ct: u64,
    reclaimed: u64,
}

impl Model {
    fn slot_index(&self, t: TopicId) -> Option<usize> {
        self.slots.binary_search_by_key(&t, |s| s.0).ok()
    }

    fn resolve(&self, t: TopicId) -> TopicState {
        match self.slot_index(t) {
            Some(i) if self.slots[i].1 => TopicState::Draining(i),
            Some(i) => TopicState::Live(i),
            None if self.retired.contains(&t) => TopicState::Retired,
            None => TopicState::Unknown,
        }
    }

    fn create(&mut self, t: TopicId) -> bool {
        match self.slots.binary_search_by_key(&t, |s| s.0) {
            Ok(_) => false,
            Err(at) => {
                self.retired.remove(&t);
                self.slots.insert(at, (t, false));
                self.created += 1;
                true
            }
        }
    }

    fn retire(&mut self, t: TopicId) -> bool {
        match self.slot_index(t) {
            Some(i) if !self.slots[i].1 => {
                self.slots[i].1 = true;
                self.retired_ct += 1;
                true
            }
            _ => false,
        }
    }

    fn tick(&mut self) {
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].1 {
                let (t, _) = self.slots.remove(i);
                self.retired.insert(t);
                self.subs.remove(&t);
                self.reclaimed += 1;
            } else {
                i += 1;
            }
        }
    }
}

/// One churn operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Create(TopicId),
    Retire(TopicId),
    Subscribe(TopicId),
    Unsubscribe(TopicId),
    Tick,
}

/// Ids spanning all three directory lanes: dense, the dense-growth slack
/// boundary, and the genuinely sparse hash-map fallback.
fn arb_topic() -> impl Strategy<Value = TopicId> {
    prop_oneof![
        (0u32..10u32).prop_map(TopicId),
        (4090u32..4110u32).prop_map(TopicId),
        (1_000_000u32..1_000_004u32).prop_map(TopicId),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_topic().prop_map(Op::Create),
        arb_topic().prop_map(Op::Retire),
        arb_topic().prop_map(Op::Subscribe),
        arb_topic().prop_map(Op::Unsubscribe),
        (0u32..1u32).prop_map(|_| Op::Tick),
    ]
}

proptest! {
    /// Directory and binary-search model agree on every verdict, after
    /// every operation, for every id either side has ever seen.
    #[test]
    fn directory_matches_binary_search_under_churn(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let fd = FdSnapshot::none();
        let mut mux = MuxBuffers::new();
        let mut engine = TopicEngine::new(vec![inert()], SplitMix64::new(0xD12));
        let mut model = Model::default();
        model.slots.push((TopicId(0), false));

        let mut probe: BTreeSet<TopicId> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Create(t) | Op::Retire(t) | Op::Subscribe(t) | Op::Unsubscribe(t) => Some(*t),
                Op::Tick => None,
            })
            .collect();
        probe.insert(TopicId(0));
        probe.insert(TopicId(7));
        probe.insert(TopicId(4100));
        probe.insert(TopicId(1_000_002));
        probe.insert(TopicId(u32::MAX / 2)); // never touched: stays Unknown

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Create(t) => {
                    prop_assert_eq!(engine.create_topic(t, inert()), model.create(t), "create {} at op {}", t, step);
                }
                Op::Retire(t) => {
                    prop_assert_eq!(engine.retire_topic(t), model.retire(t), "retire {} at op {}", t, step);
                }
                Op::Subscribe(t) => {
                    prop_assert_eq!(engine.subscribe(t), model.subs.insert(t), "subscribe {} at op {}", t, step);
                }
                Op::Unsubscribe(t) => {
                    prop_assert_eq!(engine.unsubscribe(t), model.subs.remove(&t), "unsubscribe {} at op {}", t, step);
                }
                Op::Tick => {
                    engine.tick_all(&fd, &mut mux);
                    model.tick();
                }
            }
            for &t in &probe {
                prop_assert_eq!(
                    engine.resolve(t), model.resolve(t),
                    "verdict for {} diverged after op {} ({:?})", t, step, op
                );
                prop_assert_eq!(engine.is_retired(t), model.retired.contains(&t));
                prop_assert_eq!(engine.is_subscribed(t), model.subs.contains(&t));
            }
            prop_assert_eq!(engine.topic_count(), model.slots.len());
        }

        let c = engine.counters();
        prop_assert_eq!(c.topics_created, model.created);
        prop_assert_eq!(c.topics_retired, model.retired_ct);
        prop_assert_eq!(c.topics_reclaimed, model.reclaimed);
        let lives: Vec<TopicId> = engine.live_topics().collect();
        let model_lives: Vec<TopicId> = model.slots.iter().filter(|s| !s.1).map(|s| s.0).collect();
        prop_assert_eq!(lives, model_lives);
    }
}
