//! # `urb-apps`
//!
//! What do you *build* on anonymous Uniform Reliable Broadcast? Anything
//! whose state is a deterministic function of the **set** of delivered
//! messages. Anonymity rules out the classic sender-keyed abstractions
//! (FIFO order, per-replica version vectors, total order via leader
//! election — all need identities), but the commutative/idempotent corner
//! of replicated data types survives intact, because URB's uniform
//! agreement gives every correct replica the same delivery *set* and a
//! set-function cannot care about order.
//!
//! This crate provides that corner, plus the glue:
//!
//! * [`UrbState`] — the trait: fold one delivered payload into local state,
//!   with a digest for convergence checking;
//! * [`GrowSet`] — a grow-only set of byte strings;
//! * [`TallyCounter`] — a counter where each delivered message is one
//!   increment (no replica ids needed — *messages* are the units, and URB
//!   integrity guarantees each counts exactly once);
//! * [`EventLog`] — all delivered payloads in a canonical (tag-sorted)
//!   order: the strongest ID-free approximation of a replicated log. URB
//!   alone cannot give *prefix* agreement (that is total-order broadcast,
//!   impossible here without identities/consensus) but it does give
//!   *eventual* agreement on the whole log, which the convergence checker
//!   verifies;
//! * [`Replicated`] — a replica wrapper binding a state to deliveries, and
//!   [`converged`] — the cross-replica digest check used by tests and the
//!   `sensor_mesh`-style examples.
//!
//! Every type is exercised end-to-end over the simulator in this crate's
//! tests: lossy channels, crashes, and the assertion that all *correct*
//! replicas converge to identical digests once the run quiesces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replicated;
pub mod state;

pub use replicated::{converged, run_replicated, Replicated, ReplicatedOutcome};
pub use state::{EventLog, GrowSet, TallyCounter, UrbState};
