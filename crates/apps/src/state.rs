//! Identifier-free replicated state machines over URB deliveries.
//!
//! The contract ([`UrbState`]) is deliberately narrow: state is a function
//! of the delivery **set**. Implementations must be order-insensitive and
//! duplicate-insensitive — URB integrity already deduplicates per replica,
//! but order across replicas is arbitrary, so commutativity is what makes
//! uniform agreement translate into state convergence.

use std::collections::BTreeSet;
use urb_types::{Delivery, Payload, Tag};

/// A state machine folded over URB deliveries.
pub trait UrbState: Default {
    /// Folds one delivery in. Must be commutative across deliveries with
    /// distinct tags (URB guarantees at-most-once per tag per replica).
    fn apply(&mut self, delivery: &Delivery);

    /// A collision-resistant-enough digest of the current state (FNV over
    /// a canonical encoding). Two replicas converged iff digests are equal.
    fn digest(&self) -> u64;

    /// Human-readable name for reports.
    fn state_name() -> &'static str;
}

fn fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn payload_word(p: &Payload) -> u64 {
    fnv(p.as_slice().iter().map(|&b| b as u64))
}

/// Grow-only set of byte strings: `add(x)` = URB-broadcast `x`; the set is
/// the payloads delivered so far.
#[derive(Debug, Default, Clone)]
pub struct GrowSet {
    members: BTreeSet<Vec<u8>>,
}

impl GrowSet {
    /// Current membership test.
    pub fn contains(&self, x: &[u8]) -> bool {
        self.members.contains(x)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates elements in canonical (byte-wise) order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.members.iter().map(|v| v.as_slice())
    }
}

impl UrbState for GrowSet {
    fn apply(&mut self, delivery: &Delivery) {
        self.members.insert(delivery.payload.as_slice().to_vec());
    }

    fn digest(&self) -> u64 {
        fnv(self
            .members
            .iter()
            .map(|m| fnv(m.iter().map(|&b| b as u64))))
    }

    fn state_name() -> &'static str {
        "grow-set"
    }
}

/// Counter where every delivered message is one increment.
///
/// No replica identities needed: the *message tags* are the increment
/// identities, and URB integrity (at-most-once, only-if-broadcast) makes
/// the count exact. Duplicate-broadcast semantics are the application's
/// business: broadcasting twice is two increments, as it should be.
#[derive(Debug, Default, Clone)]
pub struct TallyCounter {
    seen: BTreeSet<Tag>,
}

impl TallyCounter {
    /// The current tally.
    pub fn value(&self) -> u64 {
        self.seen.len() as u64
    }
}

impl UrbState for TallyCounter {
    fn apply(&mut self, delivery: &Delivery) {
        self.seen.insert(delivery.tag);
    }

    fn digest(&self) -> u64 {
        fnv(self.seen.iter().map(|t| (t.0 >> 64) as u64 ^ t.0 as u64))
    }

    fn state_name() -> &'static str {
        "tally-counter"
    }
}

/// All delivered payloads in canonical order (sorted by tag).
///
/// Tags are uniform-random 128-bit values, so the canonical order is an
/// arbitrary-but-agreed permutation: every converged replica shows the
/// *same* log in the *same* order, which is what an auditor wants. It is
/// **not** a total-order broadcast: replicas may disagree transiently on
/// prefixes while deliveries race — only the eventual whole-log agreement
/// is guaranteed (and machine-checked).
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    entries: std::collections::BTreeMap<Tag, Payload>,
}

impl EventLog {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in canonical (tag) order.
    pub fn entries(&self) -> impl Iterator<Item = (&Tag, &Payload)> {
        self.entries.iter()
    }

    /// Renders the log as lossy UTF-8 lines (for examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (tag, payload) in &self.entries {
            out.push_str(&format!("{tag:?}  {}\n", payload.as_text()));
        }
        out
    }
}

impl UrbState for EventLog {
    fn apply(&mut self, delivery: &Delivery) {
        self.entries.insert(delivery.tag, delivery.payload.clone());
    }

    fn digest(&self) -> u64 {
        fnv(self
            .entries
            .iter()
            .map(|(t, p)| ((t.0 >> 64) as u64 ^ t.0 as u64) ^ payload_word(p)))
    }

    fn state_name() -> &'static str {
        "event-log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tag: u128, body: &str) -> Delivery {
        Delivery {
            tag: Tag(tag),
            payload: Payload::from(body),
            fast: false,
        }
    }

    #[test]
    fn grow_set_semantics() {
        let mut s = GrowSet::default();
        assert!(s.is_empty());
        s.apply(&d(1, "a"));
        s.apply(&d(2, "b"));
        s.apply(&d(3, "a")); // same content, different message: still one member
        assert_eq!(s.len(), 2);
        assert!(s.contains(b"a"));
        assert!(!s.contains(b"c"));
    }

    #[test]
    fn tally_counts_distinct_tags() {
        let mut c = TallyCounter::default();
        c.apply(&d(1, "x"));
        c.apply(&d(1, "x")); // URB would never do this, but idempotence holds
        c.apply(&d(2, "x"));
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn event_log_canonical_order() {
        let mut l = EventLog::default();
        l.apply(&d(9, "late"));
        l.apply(&d(1, "early"));
        let tags: Vec<u128> = l.entries().map(|(t, _)| t.0).collect();
        assert_eq!(tags, vec![1, 9], "sorted by tag regardless of arrival");
        assert!(l.render().contains("early"));
    }

    #[test]
    fn digests_are_order_insensitive() {
        // The convergence property in miniature: any permutation of the
        // same delivery set produces the same digest.
        let deliveries = [d(1, "a"), d(2, "b"), d(3, "c")];
        fn fold<S: UrbState>(ds: &[Delivery]) -> u64 {
            let mut s = S::default();
            for x in ds {
                s.apply(x);
            }
            s.digest()
        }
        let mut rev = deliveries.clone();
        rev.reverse();
        assert_eq!(fold::<GrowSet>(&deliveries), fold::<GrowSet>(&rev));
        assert_eq!(
            fold::<TallyCounter>(&deliveries),
            fold::<TallyCounter>(&rev)
        );
        assert_eq!(fold::<EventLog>(&deliveries), fold::<EventLog>(&rev));
    }

    #[test]
    fn digests_distinguish_different_sets() {
        let mut a = EventLog::default();
        a.apply(&d(1, "x"));
        let mut b = EventLog::default();
        b.apply(&d(1, "y"));
        assert_ne!(a.digest(), b.digest(), "same tag, different payload");
        let mut c = EventLog::default();
        c.apply(&d(2, "x"));
        assert_ne!(a.digest(), c.digest(), "same payload, different tag");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Order-insensitivity over arbitrary delivery multisets.
            /// (Payload is a function of the tag, as URB integrity
            /// guarantees: a tag names exactly one message.)
            #[test]
            fn any_permutation_same_digest(
                mut entries in proptest::collection::vec(0u8..32, 0..20),
            ) {
                let body = |t: u8| format!("payload-{t}");
                let ds: Vec<Delivery> =
                    entries.iter().map(|&t| d(t as u128, &body(t))).collect();
                let mut log1 = EventLog::default();
                let mut set1 = GrowSet::default();
                for x in &ds {
                    log1.apply(x);
                    set1.apply(x);
                }
                entries.reverse();
                let ds2: Vec<Delivery> =
                    entries.iter().map(|&t| d(t as u128, &body(t))).collect();
                let mut log2 = EventLog::default();
                let mut set2 = GrowSet::default();
                for x in &ds2 {
                    log2.apply(x);
                    set2.apply(x);
                }
                prop_assert_eq!(log1.digest(), log2.digest());
                prop_assert_eq!(set1.digest(), set2.digest());
            }
        }
    }
}
