//! Replica glue and the convergence checker.
//!
//! [`run_replicated`] executes a simulated URB run and folds every
//! process's deliveries into one [`UrbState`] replica per process, then
//! [`converged`] checks *state convergence*: all plan-correct replicas must
//! end with identical digests. Convergence is exactly uniform agreement
//! pushed through a deterministic set-function — a convergence failure is
//! either a URB violation (caught independently by the property checker)
//! or a non-commutative state machine (the application's bug). The tests
//! below establish the first direction over lossy, crashy runs; the
//! `state` module's property tests establish the second.

use crate::state::UrbState;
use urb_sim::{RunOutcome, SimConfig};
use urb_types::Delivery;

/// One replica: a state folded from a process's delivery stream.
#[derive(Debug, Default, Clone)]
pub struct Replicated<S: UrbState> {
    /// The folded state.
    pub state: S,
    /// How many deliveries were applied.
    pub applied: usize,
}

impl<S: UrbState> Replicated<S> {
    /// Folds all deliveries of process `pid` from a finished run.
    pub fn from_run(out: &RunOutcome, pid: usize) -> Self {
        let mut r = Replicated {
            state: S::default(),
            applied: 0,
        };
        for d in out.metrics.deliveries.iter().filter(|d| d.pid == pid) {
            r.state.apply(&Delivery {
                tag: d.tag,
                payload: d.payload.clone(),
                fast: d.fast,
            });
            r.applied += 1;
        }
        r
    }
}

/// Everything [`run_replicated`] produces.
pub struct ReplicatedOutcome<S: UrbState> {
    /// The underlying simulation outcome (metrics, checker report, …).
    pub run: RunOutcome,
    /// One replica per process, in pid order.
    pub replicas: Vec<Replicated<S>>,
}

impl<S: UrbState> ReplicatedOutcome<S> {
    /// Digests of the plan-correct replicas.
    pub fn correct_digests(&self) -> Vec<u64> {
        (0..self.run.n)
            .filter(|&i| self.run.correct[i])
            .map(|i| self.replicas[i].state.digest())
            .collect()
    }

    /// Reference to the replica of process `pid`.
    pub fn replica(&self, pid: usize) -> &Replicated<S> {
        &self.replicas[pid]
    }
}

/// Runs `config`, folding deliveries into one `S` replica per process.
pub fn run_replicated<S: UrbState>(config: SimConfig) -> ReplicatedOutcome<S> {
    let out = urb_sim::run(config);
    let replicas = (0..out.n)
        .map(|pid| Replicated::from_run(&out, pid))
        .collect();
    ReplicatedOutcome { run: out, replicas }
}

/// True when every plan-correct replica has the same digest.
pub fn converged<S: UrbState>(outcome: &ReplicatedOutcome<S>) -> bool {
    let ds = outcome.correct_digests();
    ds.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EventLog, GrowSet, TallyCounter};
    use urb_core::Algorithm;
    use urb_sim::scenario;

    #[test]
    fn grow_set_converges_over_lossy_run() {
        let out: ReplicatedOutcome<GrowSet> = run_replicated(scenario::lossy_crashy(
            5,
            Algorithm::Quiescent,
            0.2,
            0,
            4,
            3,
        ));
        assert!(out.run.all_ok());
        assert!(converged(&out));
        for pid in 0..5 {
            assert_eq!(out.replica(pid).state.len(), 4, "pid {pid}");
        }
    }

    #[test]
    fn tally_counter_counts_broadcasts_exactly() {
        let out: ReplicatedOutcome<TallyCounter> =
            run_replicated(scenario::lossy_crashy(4, Algorithm::Majority, 0.3, 0, 5, 7));
        assert!(out.run.all_ok());
        assert!(converged(&out));
        for pid in 0..4 {
            assert_eq!(out.replica(pid).state.value(), 5, "exactly once each");
        }
    }

    #[test]
    fn event_log_converges_despite_majority_crash() {
        // The paper's headline, at the application layer: 3 of 5 replicas
        // die, the survivors still agree on the whole log.
        let out: ReplicatedOutcome<EventLog> = run_replicated(scenario::lossy_crashy(
            5,
            Algorithm::Quiescent,
            0.2,
            3,
            3,
            11,
        ));
        assert!(out.run.all_ok(), "{:?}", out.run.report.violations());
        assert!(converged(&out), "survivor logs must be identical");
        let digests = out.correct_digests();
        assert!(!digests.is_empty());
    }

    #[test]
    fn convergence_detects_divergence() {
        // Sanity of the checker itself: under the Theorem-2 adversary the
        // run violates agreement, and convergence must fail too (S1
        // delivered something S2 never saw) — unless no correct process
        // delivered anything and all correct digests are equal-empty; the
        // partition scenario delivers only at *faulty* S1 members, so the
        // correct replicas all stay empty and converge vacuously. Use the
        // digests of ALL replicas to see the divergence.
        let out: ReplicatedOutcome<EventLog> = run_replicated(scenario::theorem2_partition(6, 5));
        assert!(!out.run.report.agreement.ok());
        let all: Vec<u64> = (0..6).map(|i| out.replica(i).state.digest()).collect();
        assert!(
            all.windows(2).any(|w| w[0] != w[1]),
            "S1 replicas saw the doomed message, S2 replicas did not"
        );
    }

    #[test]
    fn applied_counts_match_delivery_records() {
        let out: ReplicatedOutcome<GrowSet> =
            run_replicated(scenario::clean(3, Algorithm::Majority, 2, 9));
        let total: usize = (0..3).map(|i| out.replica(i).applied).sum();
        assert_eq!(total, out.run.metrics.deliveries.len());
        assert_eq!(total, 6);
    }
}
