//! End-to-end simulation throughput: full runs (broadcast → everyone
//! delivered) at several system sizes, for both algorithms. The metric that
//! matters for experiment turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use urb_core::Algorithm;
use urb_sim::{scenario, sim::run};

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_full_delivery");
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        for alg in [Algorithm::Majority, Algorithm::Quiescent] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), n),
                &(n, alg),
                |b, &(n, alg)| {
                    b.iter(|| {
                        let out = run(scenario::lossy_crashy(n, alg, 0.1, 0, 1, 42));
                        assert!(out.report.all_ok());
                        black_box(out.metrics.protocol_sends())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_quiescent_run(c: &mut Criterion) {
    // Broadcast-to-quiescence: the full Algorithm-2 lifecycle.
    c.bench_function("sim_quiescence_n8", |b| {
        b.iter(|| {
            let mut cfg = scenario::lossy_crashy(8, Algorithm::Quiescent, 0.1, 0, 1, 7);
            cfg.stop_on_full_delivery = false;
            cfg.stop_on_quiescence = true;
            cfg.max_time = 300_000;
            let out = run(cfg);
            assert!(out.quiescent);
            black_box(out.last_protocol_send)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_full_runs, bench_quiescent_run
);
criterion_main!(benches);
