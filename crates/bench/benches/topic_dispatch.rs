//! Micro-benchmarks of the topic-dispatch plane (DESIGN.md §16): the
//! per-message cost of resolving a topic id to its slot at 1 / 1k / 100k
//! live topics, old lookup (binary search over the sorted slot ids plus
//! a retired-set probe) vs. new ([`TopicEngine::resolve`], one directory
//! probe) — and the mux-ingress run-length rule on/off: one frame of
//! ascending sub-batch runs received through `receive_mux_frame` (slot
//! resolved once per run) vs. the same messages stepped one
//! `step_mux` call each (slot resolved per entry).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;
use urb_core::Algorithm;
use urb_engine::{MuxBuffers, StepInput, TopicEngine, TopicState};
use urb_types::{
    encode_mux_frame_into, BufPool, FdSnapshot, Payload, RandomSource, SplitMix64, TopicId,
    WireMessage,
};

const TOPIC_COUNTS: [u32; 3] = [1, 1_000, 100_000];

fn engine(topics: u32) -> TopicEngine {
    TopicEngine::new(
        (0..topics)
            .map(|_| Algorithm::Majority.instantiate(3))
            .collect(),
        SplitMix64::new(0x70B1C),
    )
}

/// A seeded probe stream spanning live and absent ids.
fn probes(topics: u32, len: usize) -> Vec<u32> {
    let mut rng = SplitMix64::new(0xBE7C4);
    let span = topics as u64 + (topics as u64 / 2).max(1);
    (0..len).map(|_| (rng.next_u64() % span) as u32).collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_lookup");
    for &topics in &TOPIC_COUNTS {
        let eng = engine(topics);
        let slots: Vec<u32> = (0..topics).collect();
        let retired: BTreeSet<u32> = BTreeSet::new();
        let keys = probes(topics, 4_096);
        group.bench_with_input(
            BenchmarkId::new("binary_search", topics),
            &topics,
            |b, _| {
                b.iter(|| {
                    keys.iter().fold(0u64, |acc, &id| {
                        let v = match slots.binary_search(black_box(&id)) {
                            Ok(i) => i as u64,
                            Err(_) if retired.contains(&id) => u64::MAX - 1,
                            Err(_) => u64::MAX,
                        };
                        acc.rotate_left(7) ^ v
                    })
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("directory", topics), &topics, |b, _| {
            b.iter(|| {
                keys.iter().fold(0u64, |acc, &id| {
                    let v = match eng.resolve(TopicId(black_box(id))) {
                        TopicState::Live(i) | TopicState::Draining(i) => i as u64,
                        TopicState::Retired => u64::MAX - 1,
                        TopicState::Unknown => u64::MAX,
                    };
                    acc.rotate_left(7) ^ v
                })
            })
        });
    }
    group.finish();
}

/// One frame of duplicate-MSG runs (8 messages per topic, 3 topics) —
/// the steady-state ingress shape. "run_length" receives it through the
/// mux path (one directory probe per run); "per_entry" steps the same
/// messages individually (one probe per message).
fn bench_mux_ingress(c: &mut Criterion) {
    let mut group = c.benchmark_group("mux_ingress");
    for &topics in &TOPIC_COUNTS {
        let mut eng = engine(topics);
        let fd = FdSnapshot::none();
        let mut mux = MuxBuffers::new();
        let spread: Vec<u32> = [0u32, topics / 2, topics - 1]
            .into_iter()
            .collect::<BTreeSet<_>>() // dedup for the topics=1 case
            .into_iter()
            .collect();
        let mut entries: Vec<(TopicId, WireMessage)> = Vec::new();
        for &t in &spread {
            let tag = eng
                .step_mux(
                    TopicId(t),
                    StepInput::Broadcast(Payload::from("m")),
                    &fd,
                    &mut mux,
                )
                .expect("broadcast assigns a tag");
            for _ in 0..8 {
                entries.push((
                    TopicId(t),
                    WireMessage::Msg {
                        tag,
                        payload: Payload::from("m"),
                    },
                ));
            }
        }
        let pool = BufPool::new(2);
        let frame = {
            let mut buf = pool.acquire();
            encode_mux_frame_into(&entries, &mut buf);
            bytes::Bytes::copy_from_slice(&buf)
        };
        group.bench_with_input(BenchmarkId::new("run_length", topics), &topics, |b, _| {
            b.iter(|| {
                mux.clear();
                eng.receive_mux_frame(black_box(&frame), &mut mux, |_, _| FdSnapshot::none())
                    .expect("well-formed frame");
                black_box(mux.outbox.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("per_entry", topics), &topics, |b, _| {
            b.iter(|| {
                mux.clear();
                for (t, m) in &entries {
                    eng.step_mux(*t, StepInput::Receive(m.clone()), &fd, &mut mux);
                }
                black_box(mux.outbox.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lookup, bench_mux_ingress
);
criterion_main!(benches);
