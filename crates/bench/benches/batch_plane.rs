//! The batched message plane vs. the per-message plane, isolated.
//!
//! Three angles of evidence that batching does not regress (and on the
//! routing path improves) the hot loop:
//!
//! * `codec` — one 16-message [`Batch`] frame vs. 16 individual frames;
//! * `channel` — a 16-message outbox crossing an 8-destination link mesh
//!   through `transmit_batch` (one delay draw + one event per destination)
//!   vs. 16 × 8 individual `transmit` calls;
//! * `sim_end_to_end` — a whole simulated run over the batched plane (the
//!   number to compare against the pre-batching `end_to_end` history).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use urb_core::Algorithm;
use urb_sim::channel::{Channel, DelayModel, LossModel};
use urb_sim::{scenario, sim::run};
use urb_types::{Batch, Payload, Tag, TagAck, WireMessage, Xoshiro256};

fn outbox(len: usize) -> Vec<WireMessage> {
    (0..len)
        .map(|i| {
            if i % 2 == 0 {
                WireMessage::Msg {
                    tag: Tag(i as u128),
                    payload: Payload::from(vec![0x5Au8; 64]),
                }
            } else {
                WireMessage::Ack {
                    tag: Tag(i as u128),
                    tag_ack: TagAck(i as u128 + 1),
                    payload: Payload::from(vec![0x5Au8; 64]),
                    labels: None,
                }
            }
        })
        .collect()
}

fn mesh(links: u64) -> Vec<Channel> {
    (0..links)
        .map(|i| {
            Channel::new(
                LossModel::Bernoulli { p: 0.2 },
                DelayModel::default(),
                Xoshiro256::new(i),
            )
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let msgs = outbox(16);
    let batch: Batch = msgs.iter().cloned().collect();
    let mut group = c.benchmark_group("batch_codec");
    group.throughput(Throughput::Bytes(batch.encoded_len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("frame_16"),
        &batch,
        |b, batch| b.iter(|| black_box(Batch::decode(&batch.encode()).unwrap())),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("individual_16"),
        &msgs,
        |b, msgs| {
            b.iter(|| {
                for m in msgs {
                    black_box(WireMessage::decode(&m.encode()).unwrap());
                }
            })
        },
    );
    group.finish();
}

fn bench_channel_plane(c: &mut Criterion) {
    let msgs = outbox(16);
    let mut group = c.benchmark_group("channel_plane");
    group.bench_with_input(BenchmarkId::from_parameter("batched"), &msgs, |b, msgs| {
        let mut channels = mesh(8);
        let mut verdicts = Vec::new();
        b.iter(|| {
            for ch in &mut channels {
                black_box(ch.transmit_batch(msgs, &mut verdicts));
            }
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("per_message"),
        &msgs,
        |b, msgs| {
            let mut channels = mesh(8);
            b.iter(|| {
                for ch in &mut channels {
                    for m in msgs {
                        black_box(ch.transmit(m));
                    }
                }
            })
        },
    );
    group.finish();
}

fn bench_sim_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_plane_sim");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        group.bench_with_input(BenchmarkId::new("full_delivery", n), &n, |b, &n| {
            b.iter(|| {
                let out = run(scenario::lossy_crashy(
                    n,
                    Algorithm::Quiescent,
                    0.1,
                    0,
                    2,
                    42,
                ));
                assert!(out.report.all_ok());
                black_box(out.metrics.protocol_sends())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_channel_plane, bench_sim_end_to_end
);
criterion_main!(benches);
