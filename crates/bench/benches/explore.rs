//! Exploration-plane throughput (DESIGN.md §11): how many states per
//! second the systematic checker materializes, how much of the frontier
//! the state-hash dedup absorbs, and how the epoch-synchronous parallel
//! frontier scales with `--jobs`.
//!
//! One command — `cargo bench -p urb-bench --bench explore` — prints
//! three records on top of the criterion timings:
//!
//! * **per-strategy throughput** — states/sec for `dfs`, `dpor-lite`
//!   and `random` on the same clean scenario, so the strategies'
//!   relative cost stays on the record;
//! * **parallel speedup** — the same DFS workload at 1, 2 and 4
//!   workers, with the determinism contract *asserted*: every worker
//!   count must produce the identical verdict, state count and witness
//!   (byte for byte) before its timing is allowed onto the record;
//! * the two criterion workloads carried since PR 4: `dfs_clean` (the
//!   dedup-heavy exhaustive shape) and `dfs_theorem2` (the early-exit
//!   violation hunt CI's `check-smoke` runs).
//!
//! Speedup is printed, not asserted — CI runners share cores and a
//! loaded machine must not turn a perf log into a red build. The
//! byte-identity assertions are the part that may never flake.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use urb_check::{check_scenario, check_scenario_with, CheckOutcome, ExploreOptions, Strategy};
use urb_core::Algorithm;
use urb_sim::spec::corpus;
use urb_sim::ScenarioSpec;

fn clean_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("bench-explore-clean", 2, Algorithm::Majority);
    spec.seed = 17;
    spec.check.depth = 16;
    spec.check.max_drops = 0;
    spec
}

fn corpus_spec(name: &str) -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(stem, _)| *stem == name)
        .unwrap();
    ScenarioSpec::from_toml_str(text).unwrap()
}

/// The parallel workload: the two-topic corpus scenario driven by plain
/// DFS to a fixed depth — a wide frontier of a couple hundred thousand
/// states whose per-state replay cost is what the worker pool amortizes.
fn wide_spec() -> ScenarioSpec {
    corpus_spec("two_topics_smoke")
}

fn throughput_per_strategy() {
    let spec = clean_spec();
    for strategy in [Strategy::Dfs, Strategy::DporLite, Strategy::Random] {
        let outcome = check_scenario(&spec, Some(strategy), None, None).unwrap();
        assert!(outcome.passed());
        println!(
            "explore/strategy {:>9}: {:>6} states, {:>9.0} states/sec, dedup hit-rate {:.3}",
            strategy.as_str(),
            outcome.stats.states,
            outcome.stats.states_per_sec(),
            outcome.stats.dedup_hit_rate()
        );
    }
}

fn parallel_speedup() {
    let spec = wide_spec();
    let run = |jobs: usize| -> (f64, CheckOutcome) {
        let opts = ExploreOptions {
            strategy: Some(Strategy::Dfs),
            depth: Some(7),
            jobs,
            ..Default::default()
        };
        let start = Instant::now();
        let outcome = check_scenario_with(&spec, &opts, None).unwrap();
        (start.elapsed().as_secs_f64(), outcome)
    };
    let (serial_secs, serial) = run(1);
    assert!(serial.passed(), "{}", serial.verdict_line());
    for jobs in [2usize, 4] {
        let (secs, outcome) = run(jobs);
        // The determinism contract, asserted before the timing counts:
        // identical verdict, identical state count, identical witness.
        assert_eq!(outcome.verdict_line(), serial.verdict_line());
        assert_eq!(outcome.stats.states, serial.stats.states);
        assert_eq!(
            outcome.counterexample.as_ref().map(|cx| cx.body_json()),
            serial.counterexample.as_ref().map(|cx| cx.body_json()),
            "witness must not depend on worker count"
        );
        println!(
            "explore/parallel jobs={jobs}: {:>6} states, {:>9.0} states/sec, speedup {:.2}x vs serial ({:>9.0} states/sec)",
            outcome.stats.states,
            outcome.stats.states as f64 / secs,
            serial_secs / secs,
            serial.stats.states as f64 / serial_secs,
        );
    }
}

fn bench_exploration(c: &mut Criterion) {
    throughput_per_strategy();
    parallel_speedup();

    let mut g = c.benchmark_group("explore");
    g.sample_size(10);

    let spec = clean_spec();
    g.bench_function(BenchmarkId::from_parameter("dfs_clean"), |b| {
        b.iter(|| {
            let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
            assert!(outcome.passed());
            black_box(outcome.stats.states)
        })
    });

    let spec = corpus_spec("theorem2_violation");
    let once = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    println!(
        "explore/dfs_theorem2: {} states to the witness, {:.0} states/sec",
        once.stats.states,
        once.stats.states_per_sec()
    );
    g.bench_function(BenchmarkId::from_parameter("dfs_theorem2"), |b| {
        b.iter(|| {
            let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
            assert!(outcome.counterexample.is_some());
            black_box(outcome.stats.states)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
