//! Exploration-plane throughput (DESIGN.md §11): how many states per
//! second the systematic checker materializes, and how much of the
//! frontier the state-hash dedup absorbs.
//!
//! Two shapes, chosen to bracket the plane's two jobs:
//!
//! * `dfs_clean` — exhaustive bounded DFS over a clean two-process
//!   scenario: the dedup-heavy workload (commuting deliveries collapse
//!   onto shared states), where replay cost and hash pruning dominate;
//! * `dfs_theorem2` — the violation hunt on the embedded Theorem-2
//!   corpus spec: the early-exit workload CI's `check-smoke` runs.
//!
//! Besides the criterion timings, each run prints the checker's own
//! states/sec and dedup hit-rate counters once, so the bench log doubles
//! as the exploration-throughput record for the PR trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use urb_check::{check_scenario, Strategy};
use urb_core::Algorithm;
use urb_sim::spec::corpus;
use urb_sim::ScenarioSpec;

fn clean_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("bench-explore-clean", 2, Algorithm::Majority);
    spec.seed = 17;
    spec.check.depth = 16;
    spec.check.max_drops = 0;
    spec
}

fn theorem2_spec() -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(name, _)| *name == "theorem2_violation")
        .unwrap();
    ScenarioSpec::from_toml_str(text).unwrap()
}

fn bench_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore");
    g.sample_size(10);

    let spec = clean_spec();
    let once = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    println!(
        "explore/dfs_clean: {} states, {:.0} states/sec, dedup hit-rate {:.3}",
        once.stats.states,
        once.stats.states_per_sec(),
        once.stats.dedup_hit_rate()
    );
    g.bench_function(BenchmarkId::from_parameter("dfs_clean"), |b| {
        b.iter(|| {
            let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
            assert!(outcome.passed());
            black_box(outcome.stats.states)
        })
    });

    let spec = theorem2_spec();
    let once = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    println!(
        "explore/dfs_theorem2: {} states to the witness, {:.0} states/sec",
        once.stats.states,
        once.stats.states_per_sec()
    );
    g.bench_function(BenchmarkId::from_parameter("dfs_theorem2"), |b| {
        b.iter(|| {
            let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
            assert!(outcome.counterexample.is_some());
            black_box(outcome.stats.states)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
