//! Wire-codec throughput: encode/decode of MSG and labelled ACK frames,
//! plus the legacy-vs-zero-copy batch paths (DESIGN.md §10; the in-tree
//! acceptance gate is `urb_bench::compare`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use urb_types::{Batch, BufPool, Label, LabelSet, Payload, Tag, TagAck, WireMessage};

fn ack(n_labels: usize, body: usize) -> WireMessage {
    WireMessage::Ack {
        tag: Tag(0x0123_4567_89AB_CDEF),
        tag_ack: TagAck(0xFEDC_BA98_7654_3210),
        payload: Payload::from(vec![0x5Au8; body]),
        labels: Some(LabelSet::from_iter(
            (0..n_labels).map(|i| Label(i as u64 * 7 + 1)),
        )),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for (name, msg) in [
        (
            "msg_64B",
            WireMessage::Msg {
                tag: Tag(1),
                payload: Payload::from(vec![1u8; 64]),
            },
        ),
        ("ack_8labels_64B", ack(8, 64)),
        ("ack_64labels_1KiB", ack(64, 1024)),
    ] {
        group.throughput(Throughput::Bytes(msg.encoded_len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode()))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for (name, msg) in [("msg", ack(0, 64)), ("ack_32labels", ack(32, 256))] {
        let frame = msg.encode();
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &frame, |b, frame| {
            b.iter(|| black_box(WireMessage::decode(frame).unwrap()))
        });
    }
    group.finish();
}

fn bench_batch_paths(c: &mut Criterion) {
    let batch: Batch = (0..16)
        .map(|i| if i % 2 == 0 { ack(8, 64) } else { ack(0, 64) })
        .collect();
    let frame = batch.encode();
    let mut group = c.benchmark_group("batch_paths");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("encode_legacy"),
        &batch,
        |b, batch| b.iter(|| black_box(batch.encode())),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("encode_pooled"),
        &batch,
        |b, batch| {
            let pool = BufPool::new(2);
            let mut buf = pool.acquire();
            b.iter(|| {
                buf.clear();
                batch.encode_into(&mut buf);
                black_box(buf.len())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("decode_legacy"),
        &frame,
        |b, frame| b.iter(|| black_box(Batch::decode(frame).unwrap())),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("decode_shared"),
        &frame,
        |b, frame| {
            let mut out: Vec<WireMessage> = Vec::new();
            b.iter(|| {
                Batch::decode_shared_into(frame, &mut out).unwrap();
                black_box(out.len())
            })
        },
    );
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let msg = ack(16, 256);
    c.bench_function("content_hash_ack16", |b| {
        b.iter(|| black_box(msg.content_hash()))
    });
    c.bench_function("retransmit_key_ack16", |b| {
        b.iter(|| black_box(msg.retransmit_key()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encode, bench_decode, bench_batch_paths, bench_hashes
);
criterion_main!(benches);
