//! Failure-detector snapshot cost: the oracle builds views on demand; the
//! heartbeat estimator filters its lease table. Both are on the per-event
//! hot path of the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use urb_fd::{FdService, HeartbeatConfig, HeartbeatService, OracleConfig, OracleFd};

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_snapshot");
    for &n in &[8usize, 32, 128] {
        let mut crashes = vec![None; n];
        crashes[n / 2] = Some(500u64);
        let fd = OracleFd::new(crashes, 7, OracleConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &fd, |b, fd| {
            b.iter(|| black_box(fd.snapshot(0, 10_000)))
        });
    }
    group.finish();
}

fn bench_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("heartbeat_snapshot");
    for &n in &[8usize, 64] {
        let (mut svc, _labels) = HeartbeatService::new(n, 3, HeartbeatConfig::default());
        // Warm the lease tables: everyone heard everyone.
        let mut out = Vec::new();
        for pid in 0..n {
            svc.on_tick(pid, 0, &mut out);
        }
        for msg in &out {
            for pid in 0..n {
                svc.on_receive(pid, 1, msg);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(svc.snapshot(0, 50)))
        });
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    // The per-run axiom audit (runs once per simulated run in E3).
    let mut crashes = vec![None; 16];
    crashes[3] = Some(100);
    crashes[9] = Some(700);
    let fd = OracleFd::new(crashes, 11, OracleConfig::default());
    c.bench_function("oracle_audit_n16", |b| {
        b.iter(|| black_box(fd.audit(50_000).is_ok()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_oracle, bench_heartbeat, bench_audit
);
criterion_main!(benches);
