//! Micro-benchmarks of the protocol hot path: `on_receive` for MSG and ACK
//! at various system sizes, for both algorithms.
//!
//! These are the per-event costs a deployment pays; the paper's algorithms
//! differ mainly in ACK processing (Algorithm 2 reconciles label sets and
//! counters), which these benches quantify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use urb_core::harness::StepHarness;
use urb_core::{MajorityUrb, QuiescentUrb};
use urb_types::{
    AnonProcess, FdPair, FdSnapshot, FdView, Label, LabelSet, Payload, Tag, TagAck, WireMessage,
};

fn theta(n: usize) -> FdView {
    FdView::from_pairs((0..n).map(|i| FdPair {
        label: Label(i as u64 + 1),
        number: n as u32,
    }))
}

fn labels(n: usize) -> LabelSet {
    LabelSet::from_iter((0..n).map(|i| Label(i as u64 + 1)))
}

fn bench_ack_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_processing");
    for &n in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("alg1", n), &n, |b, &n| {
            b.iter_batched(
                || (StepHarness::new(1), MajorityUrb::new(n)),
                |(mut h, mut p)| {
                    for i in 0..n as u128 {
                        h.receive(
                            &mut p,
                            WireMessage::Ack {
                                tag: Tag(7),
                                tag_ack: TagAck(i),
                                payload: Payload::from("m"),
                                labels: None,
                            },
                        );
                    }
                    black_box(p.stats())
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("alg2", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut h = StepHarness::new(1);
                    h.fd = FdSnapshot::new(theta(n), theta(n));
                    (h, QuiescentUrb::new(), labels(n))
                },
                |(mut h, mut p, ls)| {
                    for i in 0..n as u128 {
                        h.receive(
                            &mut p,
                            WireMessage::Ack {
                                tag: Tag(7),
                                tag_ack: TagAck(i),
                                payload: Payload::from("m"),
                                labels: Some(ls.clone()),
                            },
                        );
                    }
                    black_box(p.stats())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_msg_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("msg_processing");
    for &n in &[8usize, 128] {
        group.bench_with_input(BenchmarkId::new("alg1_first_msg", n), &n, |b, &n| {
            b.iter_batched(
                || (StepHarness::new(1), MajorityUrb::new(n)),
                |(mut h, mut p)| {
                    black_box(h.receive(
                        &mut p,
                        WireMessage::Msg {
                            tag: Tag(1),
                            payload: Payload::from("m"),
                        },
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("alg2_first_msg", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut h = StepHarness::new(1);
                    h.fd = FdSnapshot::new(theta(n), theta(n));
                    (h, QuiescentUrb::new())
                },
                |(mut h, mut p)| {
                    black_box(h.receive(
                        &mut p,
                        WireMessage::Msg {
                            tag: Tag(1),
                            payload: Payload::from("m"),
                        },
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_task1_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("task1_sweep");
    for &msgs in &[1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::new("alg1", msgs), &msgs, |b, &msgs| {
            let mut h = StepHarness::new(1);
            let mut p = MajorityUrb::new(8);
            for i in 0..msgs as u128 {
                h.receive(
                    &mut p,
                    WireMessage::Msg {
                        tag: Tag(i),
                        payload: Payload::from("m"),
                    },
                );
            }
            b.iter(|| black_box(h.tick(&mut p).broadcasts.len()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ack_processing, bench_msg_processing, bench_task1_sweep
);
criterion_main!(benches);
