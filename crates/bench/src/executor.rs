//! Fan-out helpers over [`urb_sim::parallel`] for the experiment suite.
//!
//! Every experiment is a grid of independent simulated runs aggregated
//! into table rows. These helpers build the whole grid of [`SimConfig`]s
//! up front — per-run seeding stays a pure function of the cell and the
//! seed index, so results are identical to the old serial loops — and fan
//! it across all cores, returning outcomes grouped the way the
//! aggregation code wants them.

use urb_sim::{parallel, RunOutcome, SimConfig};

/// Runs `seeds` configurations of one experiment cell concurrently.
/// `build(seed_index)` must derive the run's RNG seed deterministically
/// from the index (exactly as the serial loops did), so the table is
/// reproducible regardless of scheduling.
pub fn run_seeds(seeds: u64, build: impl Fn(u64) -> SimConfig) -> Vec<RunOutcome> {
    parallel::run_many((0..seeds).map(build).collect())
}

/// Runs a whole grid — every `(cell, seed)` pair — across the thread
/// pool at once, returning one `(cell, outcomes)` group per cell in input
/// order. Grid-level fanning beats per-cell fanning when cells are small
/// (a 10-seed cell cannot occupy 16 cores; a 180-run grid can).
pub fn run_grid<C: Clone>(
    cells: &[C],
    seeds: u64,
    build: impl Fn(&C, u64) -> SimConfig,
) -> Vec<(C, Vec<RunOutcome>)> {
    let mut configs = Vec::with_capacity(cells.len() * seeds as usize);
    for cell in cells {
        for seed in 0..seeds {
            configs.push(build(cell, seed));
        }
    }
    let mut outcomes = parallel::run_many(configs).into_iter();
    cells
        .iter()
        .map(|cell| {
            let group: Vec<RunOutcome> = (0..seeds)
                .map(|_| outcomes.next().expect("one outcome per config"))
                .collect();
            (cell.clone(), group)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_core::Algorithm;
    use urb_sim::scenario;

    #[test]
    fn grid_groups_match_cells() {
        let cells = [(3usize, 0.0f64), (4, 0.1)];
        let grouped = run_grid(&cells, 3, |&(n, loss), seed| {
            scenario::lossy_crashy(n, Algorithm::Majority, loss, 0, 1, seed + 1)
        });
        assert_eq!(grouped.len(), 2);
        for ((cell, outcomes), expected) in grouped.iter().zip(&cells) {
            assert_eq!(cell, expected);
            assert_eq!(outcomes.len(), 3);
            for o in outcomes {
                assert_eq!(o.n, cell.0);
                assert!(o.report.all_ok());
            }
        }
    }

    #[test]
    fn run_seeds_is_seed_deterministic() {
        let mk = || {
            run_seeds(4, |seed| {
                scenario::lossy_crashy(3, Algorithm::Majority, 0.2, 0, 1, seed * 7 + 1)
            })
        };
        let a = mk();
        let b = mk();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics.trace_hash, y.metrics.trace_hash);
        }
    }
}
