//! # `urb-bench`
//!
//! The experiment harness of the reproduction. The paper has no empirical
//! evaluation; every experiment here validates one of its *claims*
//! (theorems, lemmas, remarks — see `DESIGN.md` §5 for the index) and emits
//! a markdown table. `EXPERIMENTS.md` archives a full run.
//!
//! Run everything: `cargo run -p urb-bench --release --bin experiments`
//! Run one:        `cargo run -p urb-bench --release --bin experiments -- e4`
//!
//! The `benches/` directory adds Criterion micro-benchmarks (protocol step
//! latency, codec throughput, detector snapshot cost, end-to-end runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod experiments;
pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::Table;
