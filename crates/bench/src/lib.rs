//! # `urb-bench`
//!
//! The experiment harness of the reproduction. The paper has no empirical
//! evaluation; every experiment here validates one of its *claims*
//! (theorems, lemmas, remarks — see `DESIGN.md` §5 for the index) and emits
//! a markdown table. `EXPERIMENTS.md` archives a full run.
//!
//! Run everything: `cargo run -p urb-bench --release --bin experiments`
//! Run one:        `cargo run -p urb-bench --release --bin experiments -- e4`
//!
//! The `benches/` directory adds Criterion micro-benchmarks (protocol step
//! latency, codec throughput, detector snapshot cost, end-to-end runs).
//!
//! Beyond the experiment tables, this crate is the **performance plane**
//! (DESIGN.md §10):
//!
//! * [`trajectory`] — reduced deterministic grids over E1–E17 emitting the
//!   schema-versioned `BENCH_*.json` perf history (`urb bench --json`);
//! * [`compare`] — the in-tree A/B harness replaying one seeded corpus
//!   through the legacy and zero-copy codec paths;
//! * [`report`] — the shared JSON envelope every tool output wears;
//! * [`alloc_count`] — allocations-per-operation probes (enable the
//!   `count-allocs` feature to install the counting global allocator).

// `count-allocs` installs a counting global allocator, which requires an
// `unsafe impl GlobalAlloc` (confined to `alloc_count::imp`); the default
// build keeps the workspace-wide ban.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_code))]
#![deny(missing_docs)]

pub mod alloc_count;
pub mod compare;
pub mod executor;
pub mod experiments;
pub mod report;
pub mod stats;
pub mod table;
pub mod trajectory;

pub use stats::Summary;
pub use table::Table;
pub use trajectory::{Trajectory, TrajectoryConfig};
