//! The experiment suite E1–E21 (see DESIGN.md §5 for the index).
//!
//! The paper proves; we measure. Each function reproduces one claim as a
//! table: the pass-rate grids for the two theorems about the algorithms
//! (E1, E3), the executable impossibility proof (E2), the quiescence and
//! cost characterizations the paper motivates but never quantifies
//! (E4–E10), the baseline contrast from the introduction (E11), the
//! ablation of our one substantive pseudocode repair (E12), the Task-1
//! backoff extension (E13), partition-heal recovery (E14), and the
//! scenario plane's own guarantees (E15 corpus replay, E16 adversarial
//! schedule sweep, E17 spec round-trip + executor parity — DESIGN.md §9),
//! the topic plane's scaling story (E18 topic-count scaling, E19
//! multiplexed-vs-separate frames A/B — DESIGN.md §12), and the memory
//! plane's plateau claim (E20 bounded-memory soak — DESIGN.md §14), the
//! dynamic topic control plane's churn story (E21 — DESIGN.md §15), and
//! the open-loop load plane (E22 flat dispatch cost at 100k topics, E23
//! the offered-load knee — DESIGN.md §16).
//!
//! All experiments are deterministic: same build, same tables. Every run's
//! seed is a pure function of its grid cell and seed index, so the
//! [`crate::executor`] fan-out (which executes the grids on all cores)
//! produces bit-identical tables to the old serial loops.

use crate::executor::{run_grid, run_seeds};
use crate::table::{f3, pct, Table};
use urb_core::Algorithm;
use urb_fd::{HeartbeatConfig, OracleConfig};
use urb_sim::sim::{FdKind, LinkOverride, SimConfig};
use urb_sim::spec::{self, ScenarioSpec, StopRule};
use urb_sim::{
    open_loop, scenario, soak, CrashPlan, CrashRule, LossModel, OpenLoopConfig, OpenLoopOutcome,
    RunOutcome, Schedule, SoakConfig,
};
use urb_types::MemoryConfig;

/// Number of seeds per grid cell (kept moderate so the full suite runs in
/// minutes; bump for tighter confidence).
pub const SEEDS: u64 = 10;

/// Runs one experiment by id (`"e1"`..`"e23"`), returning its tables.
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "e1" => e1_alg1_correctness(),
        "e2" => e2_impossibility(),
        "e3" => e3_alg2_correctness(),
        "e4" => e4_quiescence(),
        "e5" => e5_latency_vs_loss(),
        "e6" => e6_message_complexity(),
        "e7" => e7_fd_latency(),
        "e8" => e8_heartbeat_realism(),
        "e9" => e9_memory(),
        "e10" => e10_fast_delivery(),
        "e11" => e11_baselines(),
        "e12" => e12_prune_ablation(),
        "e13" => e13_backoff_extension(),
        "e14" => e14_partition_heal(),
        "e15" => e15_scenario_corpus(),
        "e16" => e16_ack_starvation_sweep(),
        "e17" => e17_spec_parity(),
        "e18" => e18_topic_scaling(),
        "e19" => e19_mux_vs_separate(),
        "e20" => e20_bounded_memory_soak(),
        "e21" => e21_dynamic_topic_churn(),
        "e22" => e22_topic_scaling_open_loop(),
        "e23" => e23_offered_load_knee(),
        other => panic!("unknown experiment id {other:?} (use e1..e23)"),
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23",
];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
}

// ---------------------------------------------------------------- E1 ----

/// E1 — Theorem 1: Algorithm 1 implements URB in `AAS_F[t < n/2]`.
///
/// Grid over `n × loss × t` (with `t < n/2`), SEEDS seeds each; reports the
/// URB pass rate (expected: 100%) and mean time to full delivery.
pub fn e1_alg1_correctness() -> Vec<Table> {
    let mut t = Table::new(
        "E1 — Theorem 1: Algorithm 1 URB pass rate (t < n/2)",
        &[
            "n",
            "loss",
            "t",
            "runs",
            "URB ok",
            "mean full-delivery time",
        ],
    );
    let mut cells: Vec<(usize, f64, usize)> = Vec::new();
    for &n in &[4usize, 8, 16] {
        for &loss in &[0.0, 0.1, 0.3] {
            for &tf in &[0usize, (n - 1) / 2] {
                cells.push((n, loss, tf));
            }
        }
    }
    for ((n, loss, tf), outcomes) in run_grid(&cells, SEEDS, |&(n, loss, tf), seed| {
        scenario::lossy_crashy(n, Algorithm::Majority, loss, tf, 2, seed * 7919 + 1)
    }) {
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count() as u64;
        let total_time: u64 = outcomes.iter().map(|o| o.metrics.ended_at).sum();
        t.row(vec![
            n.to_string(),
            f3(loss),
            tf.to_string(),
            SEEDS.to_string(),
            pct(ok as f64 / SEEDS as f64),
            format!("{}", total_time / SEEDS),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E2 ----

/// E2 — Theorem 2: URB is unsolvable with `t ≥ n/2` (executable proof).
///
/// The R2 partition adversary: the majority half `S1` delivers (it cannot
/// distinguish R2 from R1), crashes, and its traffic to `S2` is lost.
/// Expected: the threshold-⌈n/2⌉ algorithm **violates uniform agreement**
/// in every run; the faithful strict-majority algorithm **blocks** (no
/// delivery — safe but live-less). Both horns of the impossibility.
pub fn e2_impossibility() -> Vec<Table> {
    let mut t = Table::new(
        "E2 — Theorem 2: the R1/R2 partition adversary",
        &[
            "n",
            "arm",
            "runs",
            "S1 delivered",
            "agreement violated",
            "blocked (no delivery)",
        ],
    );
    let mut cells: Vec<(usize, &str, bool)> = Vec::new();
    for &n in &[4usize, 6, 8] {
        for (arm, control) in [("threshold ⌈n/2⌉", false), ("strict majority", true)] {
            cells.push((n, arm, control));
        }
    }
    for ((n, arm, _control), outcomes) in run_grid(&cells, SEEDS, |&(n, _, control), seed| {
        if control {
            scenario::theorem2_control(n, seed + 1)
        } else {
            scenario::theorem2_partition(n, seed + 1)
        }
    }) {
        let s1_delivered = outcomes
            .iter()
            .filter(|o| !o.metrics.deliveries.is_empty())
            .count();
        let violated = outcomes.iter().filter(|o| !o.report.agreement.ok()).count();
        let blocked = outcomes
            .iter()
            .filter(|o| o.metrics.deliveries.is_empty())
            .count();
        t.row(vec![
            n.to_string(),
            arm.to_string(),
            SEEDS.to_string(),
            s1_delivered.to_string(),
            violated.to_string(),
            blocked.to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E3 ----

/// E3 — Theorem 3 / Lemmas 1–3: Algorithm 2 implements URB with **any**
/// number of crashes (`t ≤ n − 1`) under `AΘ`/`AP*`, oracle detectors
/// audited on every run.
pub fn e3_alg2_correctness() -> Vec<Table> {
    let mut t = Table::new(
        "E3 — Theorem 3: Algorithm 2 URB pass rate (any t ≤ n-1)",
        &["n", "loss", "t", "runs", "URB ok", "FD audit ok"],
    );
    let mut cells: Vec<(usize, f64, usize)> = Vec::new();
    for &n in &[4usize, 8] {
        for &loss in &[0.0, 0.1, 0.3] {
            for &tf in &[0usize, n / 2, n - 1] {
                cells.push((n, loss, tf));
            }
        }
    }
    for ((n, loss, tf), outcomes) in run_grid(&cells, SEEDS, |&(n, loss, tf), seed| {
        scenario::lossy_crashy(n, Algorithm::Quiescent, loss, tf, 2, seed * 6151 + 3)
    }) {
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count() as u64;
        let audit_ok = outcomes
            .iter()
            .filter(|o| !matches!(o.fd_audit, Some(Err(_))))
            .count() as u64;
        t.row(vec![
            n.to_string(),
            f3(loss),
            tf.to_string(),
            SEEDS.to_string(),
            pct(ok as f64 / SEEDS as f64),
            pct(audit_ok as f64 / SEEDS as f64),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E4 ----

/// E4 — Quiescence (Theorem 3 vs. Algorithm 1's forever-broadcast).
///
/// Same workload and horizon for both algorithms; the windowed send
/// histogram shows Algorithm 1's traffic never reaching zero while
/// Algorithm 2 goes silent. Reported: total protocol sends, the quiescence
/// instant (last MSG/ACK), and residual traffic in the second half of the
/// horizon.
pub fn e4_quiescence() -> Vec<Table> {
    let horizon = 60_000u64;
    let mut t = Table::new(
        "E4 — quiescence: traffic profile over a fixed horizon (n=8, loss=0.2, 5 msgs)",
        &[
            "algorithm",
            "total MSG+ACK",
            "last protocol send",
            "sends in 2nd half",
            "quiescent",
        ],
    );
    let mut curve = Table::new(
        "E4b — sends per 1000-tick window (first 20 windows)",
        &["algorithm", "windows 0..19"],
    );
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        let outcomes = run_seeds(SEEDS, |seed| {
            scenario::quiescence_watch(8, alg, 0.2, 5, horizon, seed + 11)
        });
        let mut total = 0u64;
        let mut last = 0u64;
        let mut residual = 0u64;
        let mut quiescent = 0u64;
        let mut windows_acc = [0u64; 20];
        for out in &outcomes {
            total += out.metrics.protocol_sends();
            last = last.max(out.last_protocol_send);
            residual += out.metrics.sends_after(horizon / 2);
            if out.quiescent {
                quiescent += 1;
            }
            for (i, w) in out.metrics.sends_per_window.iter().take(20).enumerate() {
                windows_acc[i] += w;
            }
        }
        t.row(vec![
            alg.name().to_string(),
            (total / SEEDS).to_string(),
            last.to_string(),
            (residual / SEEDS).to_string(),
            format!("{quiescent}/{SEEDS}"),
        ]);
        curve.row(vec![
            alg.name().to_string(),
            windows_acc
                .iter()
                .map(|w| (w / SEEDS).to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    vec![t, curve]
}

// ---------------------------------------------------------------- E5 ----

/// E5 — delivery latency vs. channel loss (both algorithms, n=8).
pub fn e5_latency_vs_loss() -> Vec<Table> {
    let mut t = Table::new(
        "E5 — delivery latency vs. loss (n=8, ticks)",
        &["loss", "algorithm", "median", "p99", "max"],
    );
    let mut cells: Vec<(f64, Algorithm)> = Vec::new();
    for &loss in &[0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        for alg in [Algorithm::Majority, Algorithm::Quiescent] {
            cells.push((loss, alg));
        }
    }
    for ((loss, alg), outcomes) in run_grid(&cells, SEEDS, |&(loss, alg), seed| {
        let mut cfg = scenario::lossy_crashy(8, alg, loss, 0, 3, seed * 31 + 17);
        cfg.max_time = 60_000;
        cfg
    }) {
        let mut lat: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| o.metrics.latencies())
            .collect();
        lat.sort_unstable();
        t.row(vec![
            f3(loss),
            alg.name().to_string(),
            percentile(&lat, 0.5).to_string(),
            percentile(&lat, 0.99).to_string(),
            lat.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E6 ----

/// E6 — message complexity vs. system size (loss = 0.1).
///
/// Transmissions (per-link copies) until full delivery, per delivered
/// message, plus Algorithm 2's cost to full quiescence. Expected shape:
/// O(n²) per broadcast for both, with Algorithm 2 paying a constant-factor
/// overhead in labels but a *bounded total* (it stops).
pub fn e6_message_complexity() -> Vec<Table> {
    let mut t = Table::new(
        "E6 — transmissions vs. n (loss=0.1, 2 msgs)",
        &[
            "n",
            "alg1: tx to delivery",
            "alg1: tx/msg/n²",
            "alg2: tx to delivery",
            "alg2: tx to quiescence",
        ],
    );
    for &n in &[4usize, 8, 16, 32] {
        let seeds = if n >= 16 { 3 } else { SEEDS };
        let sends =
            |outs: &[RunOutcome]| -> u64 { outs.iter().map(|o| o.metrics.protocol_sends()).sum() };
        let a1 = sends(&run_seeds(seeds, |seed| {
            scenario::lossy_crashy(n, Algorithm::Majority, 0.1, 0, 2, seed + 5)
        }));
        let a2 = sends(&run_seeds(seeds, |seed| {
            scenario::lossy_crashy(n, Algorithm::Quiescent, 0.1, 0, 2, seed + 5)
        }));
        let a2q = sends(&run_seeds(seeds, |seed| {
            let mut cfg = scenario::lossy_crashy(n, Algorithm::Quiescent, 0.1, 0, 2, seed + 5);
            cfg.stop_on_full_delivery = false;
            cfg.stop_on_quiescence = true;
            cfg.max_time = 300_000;
            cfg
        }));
        let per = |x: u64| x / seeds;
        t.row(vec![
            n.to_string(),
            per(a1).to_string(),
            f3(per(a1) as f64 / 2.0 / (n * n) as f64),
            per(a2).to_string(),
            per(a2q).to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E7 ----

/// E7 — sensitivity to `AP*` detection latency (n=8, 3 crashes).
///
/// The prune condition waits for crashed labels to leave `a_p*`; quiescence
/// time should track the removal delay roughly linearly, while correctness
/// is unaffected.
pub fn e7_fd_latency() -> Vec<Table> {
    let mut t = Table::new(
        "E7 — AP* removal latency vs. quiescence (n=8, t=3, loss=0.2)",
        &[
            "AP* removal delay",
            "runs",
            "URB ok",
            "quiescent",
            "mean quiescence time",
        ],
    );
    for &delay in &[0u64, 1_000, 5_000, 20_000] {
        let outcomes = run_seeds(SEEDS, |seed| {
            scenario::fd_latency(8, delay, 3, seed * 13 + 29)
        });
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let quiescent = outcomes.iter().filter(|o| o.quiescent).count() as u64;
        let qtime: u64 = outcomes
            .iter()
            .filter(|o| o.quiescent)
            .map(|o| o.last_protocol_send)
            .sum();
        t.row(vec![
            delay.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            qtime
                .checked_div(quiescent)
                .map_or("—".to_string(), |v| v.to_string()),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E8 ----

/// E8 — the realistic heartbeat detector vs. the oracle (n=8, loss=0.2).
///
/// Sweeps the suspicion timeout (heartbeat period fixed at 20 ticks).
/// Short timeouts cause false suspicions → safety/liveness failures;
/// long timeouts delay quiescence. The oracle row is the reference.
pub fn e8_heartbeat_realism() -> Vec<Table> {
    let mut t = Table::new(
        "E8 — heartbeat FD timeout sweep (n=8, t=2, loss=0.2, period=20)",
        &[
            "detector",
            "timeout",
            "URB ok",
            "quiescent",
            "mean quiescence time",
        ],
    );
    let mk = |seed: u64| -> SimConfig {
        let mut cfg = SimConfig::new(8, Algorithm::Quiescent)
            .seed(seed)
            // Bursty loss is what breaks heartbeat detectors: a burst longer
            // than the timeout silences a perfectly alive process.
            .loss(LossModel::Burst {
                p_enter: 0.02,
                p_exit: 0.05,
                p_loss: 0.95,
            })
            .workload(3, 100)
            .max_time(60_000);
        cfg.crashes = CrashPlan::random(8, 2, 2_000, seed ^ 0xE8, Some(0));
        cfg
    };
    let mut row = |label: String, timeout_label: String, outcomes: &[RunOutcome]| {
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let quiescent = outcomes.iter().filter(|o| o.quiescent).count() as u64;
        let qtime: u64 = outcomes
            .iter()
            .filter(|o| o.quiescent)
            .map(|o| o.last_protocol_send)
            .sum();
        t.row(vec![
            label,
            timeout_label,
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            qtime
                .checked_div(quiescent)
                .map_or("—".to_string(), |v| v.to_string()),
        ]);
    };
    for &timeout in &[25u64, 60, 120, 240, 480] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = mk(seed * 41 + 7);
            cfg.fd = FdKind::Heartbeat(HeartbeatConfig {
                period: 20,
                timeout,
            });
            cfg
        });
        row("heartbeat".into(), timeout.to_string(), &outcomes);
    }
    // Oracle reference row.
    let outcomes = run_seeds(SEEDS, |seed| {
        let mut cfg = mk(seed * 41 + 7);
        cfg.fd = FdKind::Oracle(OracleConfig::default());
        cfg
    });
    row("oracle".into(), "—".into(), &outcomes);
    vec![t]
}

// ---------------------------------------------------------------- E9 ----

/// E9 — protocol memory over a broadcast stream (n=6, 30 msgs, loss=0.1).
///
/// Algorithm 1's `MSG` set grows with every message and never shrinks;
/// Algorithm 2 prunes back to zero. Reported: peak and final state sizes.
pub fn e9_memory() -> Vec<Table> {
    let mut t = Table::new(
        "E9 — state sizes over a 30-message stream (n=6, loss=0.1)",
        &[
            "algorithm",
            "peak MSG set",
            "final MSG set",
            "peak total state",
            "final total state",
        ],
    );
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        // 30k-tick horizon: the 30-message stream ends at ~t=6k, leaving
        // Algorithm 2 ample time to prune everything (and bounding
        // Algorithm 1's forever-rebroadcast cost).
        let outcomes = run_seeds(3, |seed| {
            scenario::memory_stream(6, alg, 30, 30_000, seed + 3)
        });
        let mut peak_msg = 0usize;
        let mut final_msg = 0usize;
        let mut peak_total = 0usize;
        let mut final_total = 0usize;
        for out in &outcomes {
            for s in &out.metrics.stats_samples {
                for p in &s.per_process {
                    peak_msg = peak_msg.max(p.msg_set);
                    peak_total = peak_total.max(p.total());
                }
            }
            for p in &out.final_stats {
                final_msg = final_msg.max(p.msg_set);
                final_total = final_total.max(p.total());
            }
        }
        t.row(vec![
            alg.name().to_string(),
            peak_msg.to_string(),
            final_msg.to_string(),
            peak_total.to_string(),
            final_total.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E10 ----

/// E10 — the §III fast-delivery remark: deliveries that precede the MSG
/// copy, under skewed delays and loss.
pub fn e10_fast_delivery() -> Vec<Table> {
    let mut t = Table::new(
        "E10 — fast deliveries (ACK quorum before the MSG copy)",
        &["n", "runs", "deliveries", "fast", "fast fraction"],
    );
    for &n in &[8usize, 16] {
        let outcomes = run_seeds(SEEDS, |seed| scenario::fast_delivery(n, seed * 97 + 13));
        let total: usize = outcomes.iter().map(|o| o.metrics.deliveries.len()).sum();
        let fast: usize = outcomes
            .iter()
            .map(|o| o.metrics.deliveries.iter().filter(|d| d.fast).count())
            .sum();
        t.row(vec![
            n.to_string(),
            SEEDS.to_string(),
            total.to_string(),
            fast.to_string(),
            pct(fast as f64 / total.max(1) as f64),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E11 ----

/// E11 — the broadcast hierarchy (paper §I), quantified.
///
/// Arm A: plain 20% loss — best-effort broadcast loses messages while both
/// URB algorithms deliver everywhere.
/// Arm B: sender partitioned + crash-on-first-delivery — eager RB delivers
/// at the doomed sender and violates uniform agreement; Algorithm 1 blocks
/// (safe).
pub fn e11_baselines() -> Vec<Table> {
    let mut a = Table::new(
        "E11a — delivery ratio under 20% loss (n=8, 4 msgs, no crashes)",
        &["algorithm", "delivery ratio", "agreement violations"],
    );
    for alg in [
        Algorithm::BestEffort,
        Algorithm::EagerRb,
        Algorithm::Majority,
    ] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = SimConfig::new(8, alg)
                .seed(seed * 53 + 9)
                .loss(LossModel::Bernoulli { p: 0.2 })
                .workload(4, 100)
                .max_time(40_000);
            cfg.stop_on_full_delivery = true;
            cfg
        });
        let delivered: usize = outcomes.iter().map(|o| o.metrics.deliveries.len()).sum();
        let expected: usize = outcomes
            .iter()
            .map(|o| o.metrics.broadcasts.len() * 8)
            .sum();
        let violations = outcomes.iter().filter(|o| !o.report.agreement.ok()).count();
        a.row(vec![
            alg.name().to_string(),
            pct(delivered as f64 / expected.max(1) as f64),
            violations.to_string(),
        ]);
    }

    let mut b = Table::new(
        "E11b — doomed sender (partitioned, crashes on first delivery)",
        &[
            "algorithm",
            "sender delivered",
            "agreement violated",
            "blocked",
        ],
    );
    for alg in [Algorithm::EagerRb, Algorithm::Majority] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = SimConfig::new(8, alg).seed(seed * 59 + 3).max_time(30_000);
            cfg.crashes = CrashPlan::from_rules(
                (0..8)
                    .map(|i| {
                        if i == 0 {
                            CrashRule::OnFirstDelivery { delay: 0 }
                        } else {
                            CrashRule::Never
                        }
                    })
                    .collect(),
            );
            cfg.link_overrides = (1..8)
                .map(|to| LinkOverride {
                    from: 0,
                    to,
                    loss: LossModel::Always,
                })
                .collect();
            cfg.stop_on_quiescence = false;
            cfg
        });
        let sender_delivered = outcomes
            .iter()
            .filter(|o| o.metrics.deliveries.iter().any(|d| d.pid == 0))
            .count();
        let violated = outcomes.iter().filter(|o| !o.report.agreement.ok()).count();
        let blocked = outcomes
            .iter()
            .filter(|o| o.metrics.deliveries.is_empty())
            .count();
        b.row(vec![
            alg.name().to_string(),
            sender_delivered.to_string(),
            violated.to_string(),
            blocked.to_string(),
        ]);
    }
    vec![a, b]
}

// --------------------------------------------------------------- E12 ----

/// E12 — ablation of the D4 dead-ACKer purge.
///
/// Adversary ([`scenario::stale_acker`]): a process ACKs the broadcast wave
/// and crashes before `a_p*` becomes ready, leaving a never-refreshed label
/// set in everyone's `all_labels`. The paper's literal line-55 condition
/// blocks on it forever; the purge rule recovers. Both remain URB-correct
/// (the purge affects only quiescence).
pub fn e12_prune_ablation() -> Vec<Table> {
    let mut t = Table::new(
        "E12 — prune rule ablation (n=4, crash-after-ack adversary)",
        &[
            "prune rule",
            "URB ok",
            "quiescent",
            "mean quiescence time",
            "residual sends (tail 20%)",
        ],
    );
    let horizon = 60_000u64;
    for (alg, name) in [
        (Algorithm::Quiescent, "purge (D4, default)"),
        (Algorithm::QuiescentLiteral, "literal line 55"),
    ] {
        let outcomes = run_seeds(SEEDS, |seed| {
            scenario::stale_acker(alg, horizon, seed * 67 + 31)
        });
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let quiescent = outcomes.iter().filter(|o| o.quiescent).count() as u64;
        let qtime: u64 = outcomes
            .iter()
            .filter(|o| o.quiescent)
            .map(|o| o.last_protocol_send)
            .sum();
        let residual: u64 = outcomes
            .iter()
            .map(|o| o.metrics.sends_after(horizon * 4 / 5))
            .sum();
        t.row(vec![
            name.to_string(),
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            qtime
                .checked_div(quiescent)
                .map_or("— (never)".to_string(), |v| v.to_string()),
            (residual / SEEDS).to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E13 ----

/// E13 — extension ablation: exponential Task-1 backoff.
///
/// The paper's Task 1 retransmits every sweep; fairness only needs
/// "infinitely often". Exponentially spacing retransmissions (cap in
/// sweeps) preserves every URB property while cutting steady-state traffic;
/// the price is tail latency under loss. Fixed 20 000-tick horizon, n=8,
/// 20% loss, 3 messages.
pub fn e13_backoff_extension() -> Vec<Table> {
    let horizon = 20_000u64;
    let mut t = Table::new(
        "E13 — exponential backoff vs. faithful Task 1 (n=8, loss=0.2)",
        &[
            "variant",
            "URB ok",
            "total MSG+ACK",
            "median latency",
            "p99 latency",
        ],
    );
    let variants: Vec<(Algorithm, String)> =
        std::iter::once((Algorithm::Majority, "faithful (every sweep)".to_string()))
            .chain([4u32, 16, 64].into_iter().map(|cap| {
                (
                    Algorithm::MajorityBackoff { cap },
                    format!("backoff cap={cap}"),
                )
            }))
            .collect();
    for (alg, name) in variants {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = SimConfig::new(8, alg)
                .seed(seed * 71 + 5)
                .loss(LossModel::Bernoulli { p: 0.2 })
                .workload(3, 100)
                .max_time(horizon);
            cfg.stop_on_quiescence = false; // fixed horizon: comparable traffic
            cfg
        });
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let sends: u64 = outcomes.iter().map(|o| o.metrics.protocol_sends()).sum();
        let mut lat: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| o.metrics.latencies())
            .collect();
        lat.sort_unstable();
        t.row(vec![
            name,
            format!("{ok}/{SEEDS}"),
            (sends / SEEDS).to_string(),
            percentile(&lat, 0.5).to_string(),
            percentile(&lat, 0.99).to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E14 ----

/// E14 — healing partitions: recovery time after a total cut.
///
/// Fair-lossy fairness is suspended during a network partition and resumes
/// at the heal; URB must complete afterwards (the paper's model says
/// nothing about *when*). Sweep the partition duration: time from
/// broadcast to full delivery should track the cut end, and the post-heal
/// recovery lag should be roughly constant (one retransmission round).
pub fn e14_partition_heal() -> Vec<Table> {
    use urb_sim::Blackout;
    let mut t = Table::new(
        "E14 — healing partition: {0,1,2,3} | {4,5,6,7} cut from t=0 (n=8, alg1)",
        &[
            "cut duration",
            "runs",
            "URB ok",
            "mean full-delivery time",
            "mean lag after heal",
        ],
    );
    for &cut in &[0u64, 500, 2_000, 8_000] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = SimConfig::new(8, Algorithm::Majority)
                .seed(seed * 83 + 2)
                .loss(LossModel::Bernoulli { p: 0.1 })
                .workload(1, 50)
                .max_time(cut + 60_000);
            cfg.blackouts = Blackout::partition(&[0, 1, 2, 3], &[4, 5, 6, 7], 0, cut);
            cfg.stop_on_full_delivery = true;
            cfg
        });
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let total: Vec<u64> = outcomes.iter().map(|o| o.metrics.ended_at).collect();
        let mean = total.iter().sum::<u64>() / total.len() as u64;
        t.row(vec![
            cut.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            mean.to_string(),
            mean.saturating_sub(cut).to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E15 ----

/// E15 — the scenario corpus, replayed (DESIGN.md §9).
///
/// Every `scenarios/*.toml` file is parsed, compiled and executed over
/// SEEDS derived seeds via the parallel executor; a run counts only when
/// the spec's `[expect]` verdict holds on top of the per-run URB checker.
/// Expected: every cell at 100% — scenario diversity is data, and the
/// data keeps its promises under seed variation.
pub fn e15_scenario_corpus() -> Vec<Table> {
    let mut t = Table::new(
        "E15 — scenario corpus replay (expectations checked per run)",
        &[
            "scenario",
            "n",
            "algorithm",
            "runs",
            "expectations met",
            "mean end time",
        ],
    );
    for (name, text) in spec::corpus() {
        let base =
            ScenarioSpec::from_toml_str(text).unwrap_or_else(|e| panic!("corpus {name}: {e}"));
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut s = base.clone();
            s.seed = base.seed + seed * 9973;
            s.compile().unwrap_or_else(|e| panic!("corpus {name}: {e}"))
        });
        let met = outcomes
            .iter()
            .filter(|o| base.expect.check(o).is_empty())
            .count() as u64;
        let mean_end: u64 = outcomes.iter().map(|o| o.metrics.ended_at).sum::<u64>() / SEEDS;
        t.row(vec![
            name.to_string(),
            base.n.to_string(),
            base.algorithm.name().to_string(),
            SEEDS.to_string(),
            pct(met as f64 / SEEDS as f64),
            mean_end.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E16 ----

/// E16 — the ack-starvation schedule, swept (DESIGN.md §9).
///
/// Specs are built *programmatically* here (the same [`Schedule`] values
/// the TOML loader produces), demonstrating the scheduler library as an
/// API. An inbound blockade on one process should pin exactly that
/// process's first delivery to the blockade end while the rest of the
/// mesh delivers on schedule — the victim's lag is the adversary's knob.
pub fn e16_ack_starvation_sweep() -> Vec<Table> {
    let mut t = Table::new(
        "E16 — ack-starvation window vs. victim delivery (n=5, alg1, loss=0.1)",
        &[
            "blockade end",
            "runs",
            "URB ok",
            "mean victim first delivery",
            "mean others first delivery",
        ],
    );
    for &end in &[0u64, 500, 2_000, 8_000] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut s = ScenarioSpec::new("e16", 5, Algorithm::Majority);
            s.seed = seed * 127 + 3;
            s.loss = LossModel::Bernoulli { p: 0.1 };
            s.stop = StopRule::FullDelivery;
            s.horizon = end + 60_000;
            s.workload = urb_sim::spec::WorkloadSpec::Generated {
                count: 2,
                spacing: 100,
                start: 10,
            };
            if end > 0 {
                s.schedules.push(Schedule::AckStarvation {
                    victim: 4,
                    start: 0,
                    end,
                });
            }
            s.compile().expect("e16 spec compiles")
        });
        let ok = outcomes.iter().filter(|o| o.report.all_ok()).count();
        let first = |o: &RunOutcome, victim: bool| -> u64 {
            o.metrics
                .deliveries
                .iter()
                .filter(|d| (d.pid == 4) == victim)
                .map(|d| d.time)
                .min()
                .unwrap_or(0)
        };
        let victim_mean: u64 = outcomes.iter().map(|o| first(o, true)).sum::<u64>() / SEEDS;
        let others_mean: u64 = outcomes.iter().map(|o| first(o, false)).sum::<u64>() / SEEDS;
        t.row(vec![
            end.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            victim_mean.to_string(),
            others_mean.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E17 ----

/// E17 — scenario-plane invariants: spec round-trip and executor parity
/// (DESIGN.md §9).
///
/// For every corpus entry: (a) `spec → TOML → spec` is the identity, so
/// files survive re-emission; (b) the run the serial driver produces and
/// the run the parallel executor produces are bit-identical (same event
/// hash, same delivery trace) — replaying a corpus under `run_many` is
/// exactly replaying it under `run`.
pub fn e17_spec_parity() -> Vec<Table> {
    let mut t = Table::new(
        "E17 — spec round-trip + serial/parallel executor parity",
        &[
            "scenario",
            "TOML round-trip",
            "serial == parallel",
            "deliveries",
            "trace hash",
        ],
    );
    let specs: Vec<(&str, ScenarioSpec)> = spec::corpus()
        .into_iter()
        .map(|(name, text)| {
            (
                name,
                ScenarioSpec::from_toml_str(text).unwrap_or_else(|e| panic!("{name}: {e}")),
            )
        })
        .collect();
    let serial: Vec<RunOutcome> = specs
        .iter()
        .map(|(_, s)| urb_sim::run(s.compile().expect("corpus compiles")))
        .collect();
    let parallel = urb_sim::run_many(
        specs
            .iter()
            .map(|(_, s)| s.compile().expect("corpus compiles"))
            .collect(),
    );
    for (((name, spec), ser), par) in specs.iter().zip(&serial).zip(&parallel) {
        let roundtrip = ScenarioSpec::from_toml_str(&spec.to_toml()).as_ref() == Ok(spec);
        let same_trace = ser.metrics.trace_hash == par.metrics.trace_hash
            && ser.metrics.deliveries.len() == par.metrics.deliveries.len()
            && ser
                .metrics
                .deliveries
                .iter()
                .zip(&par.metrics.deliveries)
                .all(|(a, b)| a.pid == b.pid && a.time == b.time && a.tag == b.tag);
        t.row(vec![
            name.to_string(),
            roundtrip.to_string(),
            same_trace.to_string(),
            ser.metrics.deliveries.len().to_string(),
            format!("{:#018x}", ser.metrics.trace_hash),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E18 ----

/// E18 — topic-count scaling (DESIGN.md §12): the same total broadcast
/// workload spread over 1, 2, 4 and 8 topics on one shared mesh.
///
/// Message complexity scales with the workload, not the topic count (one
/// instance per topic, same per-message cost), while the multiplexed
/// frame plane keeps routed frames *flat*: a node tick drains every
/// topic's sweep into one frame. Reported per topic count: URB pass rate
/// across all per-topic verdicts, protocol transmissions, frames sent
/// and deliveries.
pub fn e18_topic_scaling() -> Vec<Table> {
    let mut t = Table::new(
        "E18 — topic scaling: fixed workload over 1/2/4/8 topics (n=5, loss=0.1)",
        &[
            "topics",
            "runs",
            "URB ok (per topic)",
            "transmissions",
            "frames",
            "deliveries",
        ],
    );
    for &topics in &[1u32, 2, 4, 8] {
        let outcomes = run_seeds(SEEDS, |seed| {
            let mut cfg = SimConfig::new(5, Algorithm::Quiescent)
                .topics(topics)
                .seed(seed * 31 + 5)
                .loss(LossModel::Bernoulli { p: 0.1 })
                .workload_topics(8, 50)
                .max_time(400_000);
            cfg.stop_on_quiescence = true;
            cfg
        });
        let verdicts: usize = outcomes.iter().map(|o| o.per_topic.len()).sum();
        let ok: usize = outcomes
            .iter()
            .flat_map(|o| o.per_topic.iter())
            .filter(|t| t.report.all_ok())
            .count();
        let tx: u64 = outcomes.iter().map(|o| o.metrics.protocol_sends()).sum();
        let frames: u64 = outcomes.iter().map(|o| o.metrics.frames_sent).sum();
        let deliveries: usize = outcomes.iter().map(|o| o.metrics.deliveries.len()).sum();
        t.row(vec![
            topics.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{verdicts}"),
            tx.to_string(),
            frames.to_string(),
            deliveries.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E19 ----

/// E19 — multiplexed frames vs. one-frame-per-topic A/B (DESIGN.md §12).
///
/// The identical multi-topic workload runs twice per seed: once with the
/// mux plane (every step's topics share one frame per destination) and
/// once with `mux_frames = false` (each topic pays its own frame). The
/// deliveries and verdicts must agree — multiplexing is a pure routing
/// optimization — while frames-sent must strictly favour the mux plane
/// at equal message counts. This is the acceptance experiment of the
/// topic plane's routing claim.
pub fn e19_mux_vs_separate() -> Vec<Table> {
    let mut t = Table::new(
        "E19 — multiplexed vs separate frames (n=4, topics=4, 8 msgs)",
        &[
            "plane",
            "runs",
            "URB ok",
            "messages",
            "frames",
            "frames/msg",
            "deliveries",
        ],
    );
    let build = |mux: bool| {
        run_seeds(SEEDS, move |seed| {
            let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
                .topics(4)
                .seed(seed * 17 + 9)
                .workload_topics(8, 20)
                .max_time(400_000);
            cfg.mux_frames = mux;
            cfg
        })
    };
    let arms = [("multiplexed", build(true)), ("separate", build(false))];
    for (name, outcomes) in &arms {
        let ok = outcomes.iter().filter(|o| o.all_topics_ok()).count() as u64;
        let msgs: u64 = outcomes.iter().map(|o| o.metrics.protocol_sends()).sum();
        let frames: u64 = outcomes.iter().map(|o| o.metrics.frames_sent).sum();
        let deliveries: usize = outcomes.iter().map(|o| o.metrics.deliveries.len()).sum();
        t.row(vec![
            name.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            msgs.to_string(),
            frames.to_string(),
            f3(frames as f64 / msgs.max(1) as f64),
            deliveries.to_string(),
        ]);
    }
    let (mux_frames, sep_frames) = (
        arms[0].1.iter().map(|o| o.metrics.frames_sent).sum::<u64>(),
        arms[1].1.iter().map(|o| o.metrics.frames_sent).sum::<u64>(),
    );
    assert!(
        mux_frames < sep_frames,
        "multiplexed frames must beat one-frame-per-topic: {mux_frames} vs {sep_frames}"
    );
    vec![t]
}

// --------------------------------------------------------------- E20 ----

/// E20 — bounded-memory soak (DESIGN.md §14): resident state vs messages
/// with ack-prefix compaction on and off.
///
/// Each grid row runs the same seeded workload twice on the soak plane
/// (`urb_sim::soak` — direct engine stepping, instant lossless flooding):
/// once unbounded and once with a [`MemoryConfig`]. The harness itself is
/// the acceptance gate: both arms must produce identical per-process
/// delivery sequences (compaction is delivery-invisible), the unbounded
/// arm's resident state must grow with the message count, and the bounded
/// arm's **peak** resident state must plateau — the peak at the largest
/// message count stays within 2× of the peak at the smallest even as the
/// workload grows 8×. The million-message version of this table is the
/// `soak_one_million_plateaus_with_identical_deliveries` soak test.
pub fn e20_bounded_memory_soak() -> Vec<Table> {
    let mut t = Table::new(
        "E20 — bounded-memory soak: resident state vs messages (n=3, Alg 2)",
        &[
            "messages",
            "plane",
            "deliveries/proc",
            "peak resident",
            "final resident",
            "reclaimed",
            "tombstoned",
            "same deliveries",
        ],
    );
    let mem = MemoryConfig {
        ceiling: Some(600),
        ..MemoryConfig::default()
    };
    let mut bounded_peaks = Vec::new();
    for &msgs in &[1_000u64, 4_000, 8_000] {
        let unbounded = soak(SoakConfig::new(msgs).seed(0xE20));
        let bounded = soak(SoakConfig::new(msgs).seed(0xE20).memory(mem));
        let same = bounded.same_deliveries(&unbounded);
        assert!(
            same,
            "compaction must be delivery-invisible at {msgs} messages"
        );
        assert!(
            bounded.reclaimed > 0,
            "the bounded arm must actually compact at {msgs} messages"
        );
        for (plane, out) in [("unbounded", &unbounded), ("bounded", &bounded)] {
            t.row(vec![
                msgs.to_string(),
                plane.to_string(),
                (out.delivered.iter().sum::<u64>() / out.delivered.len() as u64).to_string(),
                out.peak_resident.to_string(),
                out.final_resident.to_string(),
                out.reclaimed.to_string(),
                out.tombstoned.to_string(),
                same.to_string(),
            ]);
        }
        bounded_peaks.push(bounded.peak_resident);
    }
    let (first, last) = (bounded_peaks[0], *bounded_peaks.last().unwrap());
    assert!(
        last <= first.saturating_mul(2),
        "bounded peak resident must plateau: {first} @1k vs {last} @8k"
    );
    vec![t]
}

/// One E21 churn grid cell (DESIGN.md §15): a static topic plus `gens`
/// sequential create → two-broadcast workload → retire generations on
/// dynamic topic ids. Shared by the standalone experiment table and the
/// trajectory grid so both sample exactly the same plane.
pub fn churn_config(n: usize, gens: u32, seed: u64) -> SimConfig {
    use urb_sim::sim::TopicAction;
    use urb_sim::PlannedBroadcast;
    use urb_types::{Payload, TopicId};
    let mut cfg = SimConfig::new(n, Algorithm::Quiescent)
        .seed(seed)
        .max_time(400_000);
    cfg.stop_on_quiescence = true;
    cfg.broadcasts = vec![PlannedBroadcast {
        time: 10,
        pid: 0,
        topic: TopicId::ZERO,
        payload: Payload::from("static"),
    }];
    for g in 0..gens {
        let topic = TopicId(1 + g);
        let base = 200 + g as u64 * 3_000;
        // Each generation retires 2_000 ticks after its create — well
        // past its two-broadcast workload's quiescence, so retirement
        // preserves every URB obligation (the quiescence rule) and the
        // per-topic verdicts must hold across the whole churn.
        cfg = cfg
            .topic_event(
                base,
                TopicAction::Create {
                    topic,
                    algorithm: None,
                },
            )
            .topic_event(base + 2_000, TopicAction::Retire { topic });
        for m in 0..2u64 {
            cfg.broadcasts.push(PlannedBroadcast {
                time: base + 100 + m * 100,
                pid: ((g as u64 + m) % n as u64) as usize,
                topic,
                payload: Payload::from(format!("g{g}.m{m}").as_str()),
            });
        }
    }
    cfg
}

/// E21 — dynamic-topic churn (DESIGN.md §15): generations of
/// create → workload → retire next to a static topic. Measures that the
/// per-topic verdicts hold across churn, every retired generation is
/// reclaimed at every process, and the run still ends quiescent.
pub fn e21_dynamic_topic_churn() -> Vec<Table> {
    let mut t = Table::new(
        "E21 — dynamic-topic churn: create → workload → retire generations (n=4, Alg 2)",
        &[
            "generations",
            "runs",
            "URB ok (per topic)",
            "reclaimed",
            "transmissions",
            "deliveries",
            "quiescent",
        ],
    );
    for &gens in &[1u32, 3, 6] {
        let outcomes = run_seeds(SEEDS, |seed| churn_config(4, gens, seed * 47 + 21));
        let verdicts: usize = outcomes.iter().map(|o| o.per_topic.len()).sum();
        let ok: usize = outcomes
            .iter()
            .flat_map(|o| o.per_topic.iter())
            .filter(|t| t.report.all_ok())
            .count();
        let reclaimed: u64 = outcomes.iter().map(|o| o.topics_reclaimed()).sum();
        assert_eq!(
            reclaimed,
            SEEDS * gens as u64 * 4,
            "every retired generation must be reclaimed at every process ({gens} gens)"
        );
        assert_eq!(ok, verdicts, "churn must not cost a single verdict");
        let tx: u64 = outcomes.iter().map(|o| o.metrics.protocol_sends()).sum();
        let deliveries: usize = outcomes.iter().map(|o| o.metrics.deliveries.len()).sum();
        let quiescent = outcomes.iter().filter(|o| o.quiescent).count();
        t.row(vec![
            gens.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{verdicts}"),
            reclaimed.to_string(),
            tx.to_string(),
            deliveries.to_string(),
            format!("{quiescent}/{SEEDS}"),
        ]);
    }
    vec![t]
}

/// The open-loop grids for E22/E23 (DESIGN.md §16) — one
/// [`OpenLoopConfig`] per `(cell, seed)` pair, a pure function of the
/// arguments. Shared by the standalone experiment tables and the
/// trajectory collector so both sample exactly the same plane; the CLI's
/// `--load-topics` / `--rates` overrides arrive through the two `Option`
/// parameters (`None` = the pinned default grid the committed trajectory
/// files use).
///
/// E22 deliberately derives the **same** seed for every topic-count cell:
/// dispatch is O(1), so the per-seed outcomes must be byte-identical from
/// 1 to 100k topics — the flat-cost pin is baked into the grid itself.
/// E23 sweeps the offered load across the cluster's service capacity
/// (n=3 × 1/tick = 3000 arrivals/ktick), so the latency tail crosses the
/// knee inside the default grid.
pub fn open_loop_grid(
    id: &str,
    seed: u64,
    seeds: u64,
    load_topics: Option<&[u32]>,
    rates: Option<&[u64]>,
) -> Vec<OpenLoopConfig> {
    let derive = |cell: u64, s: u64| {
        seed.wrapping_mul(9973)
            .wrapping_add(cell.wrapping_mul(131))
            .wrapping_add(s)
    };
    let mut cfgs = Vec::new();
    match id {
        "e22" => {
            for &topics in load_topics.unwrap_or(&[1, 1_000, 100_000]) {
                for s in 0..seeds {
                    // Same derived seed across topic cells — see above.
                    cfgs.push(OpenLoopConfig::new(4_000).topics(topics).seed(derive(0, s)));
                }
            }
        }
        "e23" => {
            for (cell, &rate) in rates
                .unwrap_or(&[500, 1_500, 2_500, 4_000, 8_000])
                .iter()
                .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(
                        OpenLoopConfig::new(rate)
                            .topics(8)
                            .seed(derive(cell as u64, s)),
                    );
                }
            }
        }
        other => panic!("unknown open-loop experiment id {other:?} (use e22/e23)"),
    }
    cfgs
}

/// E22 — open-loop topic-count scaling (DESIGN.md §16): the identical
/// offered load from 1 to 100 000 live topics per node.
///
/// With O(1) topic dispatch the topic count changes *where* broadcasts
/// land but nothing else: arrivals, service, RNG draws, latencies and
/// per-process delivery hashes are byte-identical across the sweep. The
/// harness asserts full-outcome equality against the 1-topic baseline —
/// per-message cost is flat not "within noise" but exactly.
pub fn e22_topic_scaling_open_loop() -> Vec<Table> {
    let mut t = Table::new(
        "E22 — open-loop topic scaling: 1 → 100k topics (n=3, 4000 arrivals/ktick)",
        &[
            "topics",
            "runs",
            "offered",
            "completed",
            "p50",
            "p99",
            "p999",
            "identical to 1 topic",
        ],
    );
    let cells = [1u32, 1_000, 100_000];
    let mut baseline: Vec<OpenLoopOutcome> = Vec::new();
    for &topics in &cells {
        let outcomes: Vec<OpenLoopOutcome> =
            open_loop_grid("e22", 0xE22, SEEDS, Some(&[topics]), None)
                .into_iter()
                .map(open_loop)
                .collect();
        if baseline.is_empty() {
            baseline = outcomes.clone();
        }
        let identical = outcomes == baseline;
        assert!(
            identical,
            "dispatch must be O(1): outcomes diverged at {topics} topics"
        );
        let offered: u64 = outcomes.iter().map(|o| o.offered).sum();
        let completed: u64 = outcomes.iter().map(|o| o.completed).sum();
        let max = |f: fn(&OpenLoopOutcome) -> u64| outcomes.iter().map(f).max().unwrap_or(0);
        t.row(vec![
            topics.to_string(),
            SEEDS.to_string(),
            offered.to_string(),
            completed.to_string(),
            max(|o| o.latency_p50).to_string(),
            max(|o| o.latency_p99).to_string(),
            max(|o| o.latency_p999).to_string(),
            identical.to_string(),
        ]);
    }
    vec![t]
}

/// E23 — the offered-load sweep (DESIGN.md §16): p50/p90/p99/p999
/// delivery latency vs arrivals per kilotick, locating the saturation
/// knee at the cluster's service capacity (3000/ktick for n=3 at one
/// broadcast per node per tick).
///
/// Below capacity every arrival is served the tick it lands and the
/// whole latency distribution sits at the protocol floor; past capacity
/// the ingress queues — and therefore the p999 tail and the post-horizon
/// drain — grow with the backlog while achieved throughput flattens.
/// Both sides of the knee are asserted, not just tabulated.
pub fn e23_offered_load_knee() -> Vec<Table> {
    let mut t = Table::new(
        "E23 — offered load vs latency: the knee at capacity 3000/ktick (n=3, 8 topics)",
        &[
            "rate/ktick",
            "runs",
            "offered",
            "achieved in horizon",
            "p50",
            "p90",
            "p99",
            "p999",
            "peak queue",
            "drain ticks",
        ],
    );
    let rates = [500u64, 1_500, 2_500, 4_000, 8_000];
    let mut rows: Vec<(u64, Vec<OpenLoopOutcome>)> = Vec::new();
    for (cell, &rate) in rates.iter().enumerate() {
        let cfgs = open_loop_grid("e23", 0xE23, SEEDS, None, Some(&rates));
        let outcomes: Vec<OpenLoopOutcome> = cfgs
            .into_iter()
            .skip(cell * SEEDS as usize)
            .take(SEEDS as usize)
            .map(open_loop)
            .collect();
        rows.push((rate, outcomes));
    }
    for (rate, outcomes) in &rows {
        let offered: u64 = outcomes.iter().map(|o| o.offered).sum();
        let achieved: u64 = outcomes.iter().map(|o| o.completed_in_horizon).sum();
        let max = |f: fn(&OpenLoopOutcome) -> u64| outcomes.iter().map(f).max().unwrap_or(0);
        t.row(vec![
            rate.to_string(),
            SEEDS.to_string(),
            offered.to_string(),
            achieved.to_string(),
            max(|o| o.latency_p50).to_string(),
            max(|o| o.latency_p90).to_string(),
            max(|o| o.latency_p99).to_string(),
            max(|o| o.latency_p999).to_string(),
            max(|o| o.peak_queue_depth as u64).to_string(),
            max(|o| o.drain_ticks).to_string(),
        ]);
    }
    let below = &rows.first().expect("rate grid non-empty").1;
    let above = &rows.last().expect("rate grid non-empty").1;
    assert!(
        below.iter().all(|o| o.latency_p999 == 0),
        "below capacity every arrival must be served the tick it lands"
    );
    assert!(
        above
            .iter()
            .all(|o| o.latency_p999 > 50 && o.drain_ticks > 0),
        "past capacity the tail and the backlog must grow without bound"
    );
    assert!(
        above.iter().map(|o| o.completed_in_horizon).sum::<u64>() * 2
            < above.iter().map(|o| o.offered).sum::<u64>(),
        "past capacity achieved throughput must flatten while offered climbs"
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        // Smoke-test the dispatcher without running the heavy grids.
        assert_eq!(ALL_IDS.len(), 23);
    }

    #[test]
    fn e19_mux_beats_separate_frames() {
        // The topic plane's acceptance claim: the A/B harness itself
        // asserts frames(mux) < frames(separate) at equal message counts
        // — running it IS the test — and both arms stay correct.
        let tables = e19_mux_vs_separate();
        let rendered = tables[0].render();
        assert!(rendered.contains("multiplexed"), "{rendered}");
        assert!(!rendered.contains("false"), "{rendered}");
    }

    #[test]
    fn e17_parity_holds_for_the_whole_corpus() {
        // Cheap enough to regenerate in tests, and it is the acceptance
        // gate for the scenario plane: every corpus row must read
        // `true true`.
        let tables = e17_spec_parity();
        let rendered = tables[0].render();
        assert!(!rendered.contains("false"), "{rendered}");
        assert!(rendered.contains("partition_heal"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("e99");
    }

    #[test]
    fn open_loop_grid_shapes_and_seed_sharing() {
        // E22: topic cells share their derived seeds (the flat-cost pin
        // needs identical arrival streams across cells).
        let g = open_loop_grid("e22", 7, 2, None, None);
        assert_eq!(g.len(), 6, "3 topic cells × 2 seeds");
        assert_eq!(g[0].seed, g[2].seed, "cells share seeds");
        assert_eq!(g[0].seed, g[4].seed);
        assert_ne!(g[0].seed, g[1].seed, "seed index still varies");
        assert_eq!(g[4].topics, 100_000);
        // E23: rate cells get distinct seeds (independent sweep points).
        let g = open_loop_grid("e23", 7, 2, None, None);
        assert_eq!(g.len(), 10, "5 rate cells × 2 seeds");
        assert_ne!(g[0].seed, g[2].seed);
        assert_eq!(g[8].rate_per_ktick, 8_000);
        // Overrides replace the default grids.
        let g = open_loop_grid("e23", 7, 1, None, Some(&[123]));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].rate_per_ktick, 123);
        let g = open_loop_grid("e22", 7, 1, Some(&[5]), None);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].topics, 5);
    }

    #[test]
    #[should_panic(expected = "unknown open-loop experiment")]
    fn open_loop_grid_rejects_sim_ids() {
        let _ = open_loop_grid("e21", 1, 1, None, None);
    }

    #[test]
    fn e2_impossibility_small() {
        // The impossibility table is cheap enough to regenerate in tests:
        // the weakened arm must violate agreement, the control must block.
        let tables = e2_impossibility();
        let rendered = tables[0].render();
        assert!(rendered.contains("E2"));
        assert!(!tables[0].is_empty());
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.5), 30);
        assert_eq!(percentile(&v, 0.99), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
