//! The experiment suite E1–E14 (see DESIGN.md §5 for the index).
//!
//! The paper proves; we measure. Each function reproduces one claim as a
//! table: the pass-rate grids for the two theorems about the algorithms
//! (E1, E3), the executable impossibility proof (E2), the quiescence and
//! cost characterizations the paper motivates but never quantifies
//! (E4–E10), the baseline contrast from the introduction (E11), the
//! ablation of our one substantive pseudocode repair (E12), the Task-1
//! backoff extension (E13) and partition-heal recovery (E14).
//!
//! All experiments are deterministic: same build, same tables.

use crate::table::{f3, pct, Table};
use urb_core::Algorithm;
use urb_fd::{HeartbeatConfig, OracleConfig};
use urb_sim::sim::{run, FdKind, LinkOverride, SimConfig};
use urb_sim::{scenario, CrashPlan, CrashRule, LossModel};

/// Number of seeds per grid cell (kept moderate so the full suite runs in
/// minutes; bump for tighter confidence).
pub const SEEDS: u64 = 10;

/// Runs one experiment by id (`"e1"`..`"e14"`), returning its tables.
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "e1" => e1_alg1_correctness(),
        "e2" => e2_impossibility(),
        "e3" => e3_alg2_correctness(),
        "e4" => e4_quiescence(),
        "e5" => e5_latency_vs_loss(),
        "e6" => e6_message_complexity(),
        "e7" => e7_fd_latency(),
        "e8" => e8_heartbeat_realism(),
        "e9" => e9_memory(),
        "e10" => e10_fast_delivery(),
        "e11" => e11_baselines(),
        "e12" => e12_prune_ablation(),
        "e13" => e13_backoff_extension(),
        "e14" => e14_partition_heal(),
        other => panic!("unknown experiment id {other:?} (use e1..e14)"),
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 14] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
];

// ---------------------------------------------------------------- E1 ----

/// E1 — Theorem 1: Algorithm 1 implements URB in `AAS_F[t < n/2]`.
///
/// Grid over `n × loss × t` (with `t < n/2`), SEEDS seeds each; reports the
/// URB pass rate (expected: 100%) and mean time to full delivery.
pub fn e1_alg1_correctness() -> Vec<Table> {
    let mut t = Table::new(
        "E1 — Theorem 1: Algorithm 1 URB pass rate (t < n/2)",
        &["n", "loss", "t", "runs", "URB ok", "mean full-delivery time"],
    );
    for &n in &[4usize, 8, 16] {
        for &loss in &[0.0, 0.1, 0.3] {
            for &tf in &[0usize, (n - 1) / 2] {
                let mut ok = 0u64;
                let mut total_time = 0u64;
                for seed in 0..SEEDS {
                    let out = run(scenario::lossy_crashy(
                        n,
                        Algorithm::Majority,
                        loss,
                        tf,
                        2,
                        seed * 7919 + 1,
                    ));
                    if out.report.all_ok() {
                        ok += 1;
                    }
                    total_time += out.metrics.ended_at;
                }
                t.row(vec![
                    n.to_string(),
                    f3(loss),
                    tf.to_string(),
                    SEEDS.to_string(),
                    pct(ok as f64 / SEEDS as f64),
                    format!("{}", total_time / SEEDS),
                ]);
            }
        }
    }
    vec![t]
}

// ---------------------------------------------------------------- E2 ----

/// E2 — Theorem 2: URB is unsolvable with `t ≥ n/2` (executable proof).
///
/// The R2 partition adversary: the majority half `S1` delivers (it cannot
/// distinguish R2 from R1), crashes, and its traffic to `S2` is lost.
/// Expected: the threshold-⌈n/2⌉ algorithm **violates uniform agreement**
/// in every run; the faithful strict-majority algorithm **blocks** (no
/// delivery — safe but live-less). Both horns of the impossibility.
pub fn e2_impossibility() -> Vec<Table> {
    let mut t = Table::new(
        "E2 — Theorem 2: the R1/R2 partition adversary",
        &[
            "n",
            "arm",
            "runs",
            "S1 delivered",
            "agreement violated",
            "blocked (no delivery)",
        ],
    );
    for &n in &[4usize, 6, 8] {
        for (arm, control) in [("threshold ⌈n/2⌉", false), ("strict majority", true)] {
            let mut s1_delivered = 0u64;
            let mut violated = 0u64;
            let mut blocked = 0u64;
            for seed in 0..SEEDS {
                let cfg = if control {
                    scenario::theorem2_control(n, seed + 1)
                } else {
                    scenario::theorem2_partition(n, seed + 1)
                };
                let out = run(cfg);
                if !out.metrics.deliveries.is_empty() {
                    s1_delivered += 1;
                }
                if !out.report.agreement.ok() {
                    violated += 1;
                }
                if out.metrics.deliveries.is_empty() {
                    blocked += 1;
                }
            }
            t.row(vec![
                n.to_string(),
                arm.to_string(),
                SEEDS.to_string(),
                s1_delivered.to_string(),
                violated.to_string(),
                blocked.to_string(),
            ]);
        }
    }
    vec![t]
}

// ---------------------------------------------------------------- E3 ----

/// E3 — Theorem 3 / Lemmas 1–3: Algorithm 2 implements URB with **any**
/// number of crashes (`t ≤ n − 1`) under `AΘ`/`AP*`, oracle detectors
/// audited on every run.
pub fn e3_alg2_correctness() -> Vec<Table> {
    let mut t = Table::new(
        "E3 — Theorem 3: Algorithm 2 URB pass rate (any t ≤ n-1)",
        &["n", "loss", "t", "runs", "URB ok", "FD audit ok"],
    );
    for &n in &[4usize, 8] {
        for &loss in &[0.0, 0.1, 0.3] {
            for &tf in &[0usize, n / 2, n - 1] {
                let mut ok = 0u64;
                let mut audit_ok = 0u64;
                for seed in 0..SEEDS {
                    let out = run(scenario::lossy_crashy(
                        n,
                        Algorithm::Quiescent,
                        loss,
                        tf,
                        2,
                        seed * 6151 + 3,
                    ));
                    if out.report.all_ok() {
                        ok += 1;
                    }
                    match out.fd_audit {
                        Some(Ok(())) | None => audit_ok += 1,
                        Some(Err(_)) => {}
                    }
                }
                t.row(vec![
                    n.to_string(),
                    f3(loss),
                    tf.to_string(),
                    SEEDS.to_string(),
                    pct(ok as f64 / SEEDS as f64),
                    pct(audit_ok as f64 / SEEDS as f64),
                ]);
            }
        }
    }
    vec![t]
}

// ---------------------------------------------------------------- E4 ----

/// E4 — Quiescence (Theorem 3 vs. Algorithm 1's forever-broadcast).
///
/// Same workload and horizon for both algorithms; the windowed send
/// histogram shows Algorithm 1's traffic never reaching zero while
/// Algorithm 2 goes silent. Reported: total protocol sends, the quiescence
/// instant (last MSG/ACK), and residual traffic in the second half of the
/// horizon.
pub fn e4_quiescence() -> Vec<Table> {
    let horizon = 60_000u64;
    let mut t = Table::new(
        "E4 — quiescence: traffic profile over a fixed horizon (n=8, loss=0.2, 5 msgs)",
        &[
            "algorithm",
            "total MSG+ACK",
            "last protocol send",
            "sends in 2nd half",
            "quiescent",
        ],
    );
    let mut curve = Table::new(
        "E4b — sends per 1000-tick window (first 20 windows)",
        &["algorithm", "windows 0..19"],
    );
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        let mut total = 0u64;
        let mut last = 0u64;
        let mut residual = 0u64;
        let mut quiescent = 0u64;
        let mut windows_acc = [0u64; 20];
        for seed in 0..SEEDS {
            let out = run(scenario::quiescence_watch(8, alg, 0.2, 5, horizon, seed + 11));
            total += out.metrics.protocol_sends();
            last = last.max(out.last_protocol_send);
            residual += out.metrics.sends_after(horizon / 2);
            if out.quiescent {
                quiescent += 1;
            }
            for (i, w) in out.metrics.sends_per_window.iter().take(20).enumerate() {
                windows_acc[i] += w;
            }
        }
        t.row(vec![
            alg.name().to_string(),
            (total / SEEDS).to_string(),
            last.to_string(),
            (residual / SEEDS).to_string(),
            format!("{quiescent}/{SEEDS}"),
        ]);
        curve.row(vec![
            alg.name().to_string(),
            windows_acc
                .iter()
                .map(|w| (w / SEEDS).to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    vec![t, curve]
}

// ---------------------------------------------------------------- E5 ----

/// E5 — delivery latency vs. channel loss (both algorithms, n=8).
pub fn e5_latency_vs_loss() -> Vec<Table> {
    let mut t = Table::new(
        "E5 — delivery latency vs. loss (n=8, ticks)",
        &["loss", "algorithm", "median", "p99", "max"],
    );
    for &loss in &[0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        for alg in [Algorithm::Majority, Algorithm::Quiescent] {
            let mut lat = Vec::new();
            for seed in 0..SEEDS {
                let mut cfg = scenario::lossy_crashy(8, alg, loss, 0, 3, seed * 31 + 17);
                cfg.max_time = 60_000;
                let out = run(cfg);
                lat.extend(out.metrics.latencies());
            }
            lat.sort_unstable();
            let q = |p: f64| -> u64 {
                if lat.is_empty() {
                    return 0;
                }
                lat[((p * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)]
            };
            t.row(vec![
                f3(loss),
                alg.name().to_string(),
                q(0.5).to_string(),
                q(0.99).to_string(),
                lat.last().copied().unwrap_or(0).to_string(),
            ]);
        }
    }
    vec![t]
}

// ---------------------------------------------------------------- E6 ----

/// E6 — message complexity vs. system size (loss = 0.1).
///
/// Transmissions (per-link copies) until full delivery, per delivered
/// message, plus Algorithm 2's cost to full quiescence. Expected shape:
/// O(n²) per broadcast for both, with Algorithm 2 paying a constant-factor
/// overhead in labels but a *bounded total* (it stops).
pub fn e6_message_complexity() -> Vec<Table> {
    let mut t = Table::new(
        "E6 — transmissions vs. n (loss=0.1, 2 msgs)",
        &[
            "n",
            "alg1: tx to delivery",
            "alg1: tx/msg/n²",
            "alg2: tx to delivery",
            "alg2: tx to quiescence",
        ],
    );
    for &n in &[4usize, 8, 16, 32] {
        let seeds = if n >= 16 { 3 } else { SEEDS };
        let mut a1 = 0u64;
        let mut a2 = 0u64;
        let mut a2q = 0u64;
        for seed in 0..seeds {
            let out = run(scenario::lossy_crashy(n, Algorithm::Majority, 0.1, 0, 2, seed + 5));
            a1 += out.metrics.protocol_sends();
            let out = run(scenario::lossy_crashy(n, Algorithm::Quiescent, 0.1, 0, 2, seed + 5));
            a2 += out.metrics.protocol_sends();
            let mut cfg = scenario::lossy_crashy(n, Algorithm::Quiescent, 0.1, 0, 2, seed + 5);
            cfg.stop_on_full_delivery = false;
            cfg.stop_on_quiescence = true;
            cfg.max_time = 300_000;
            let out = run(cfg);
            a2q += out.metrics.protocol_sends();
        }
        let per = |x: u64| x / seeds;
        t.row(vec![
            n.to_string(),
            per(a1).to_string(),
            f3(per(a1) as f64 / 2.0 / (n * n) as f64),
            per(a2).to_string(),
            per(a2q).to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E7 ----

/// E7 — sensitivity to `AP*` detection latency (n=8, 3 crashes).
///
/// The prune condition waits for crashed labels to leave `a_p*`; quiescence
/// time should track the removal delay roughly linearly, while correctness
/// is unaffected.
pub fn e7_fd_latency() -> Vec<Table> {
    let mut t = Table::new(
        "E7 — AP* removal latency vs. quiescence (n=8, t=3, loss=0.2)",
        &[
            "AP* removal delay",
            "runs",
            "URB ok",
            "quiescent",
            "mean quiescence time",
        ],
    );
    for &delay in &[0u64, 1_000, 5_000, 20_000] {
        let mut ok = 0u64;
        let mut quiescent = 0u64;
        let mut qtime = 0u64;
        for seed in 0..SEEDS {
            let out = run(scenario::fd_latency(8, delay, 3, seed * 13 + 29));
            if out.report.all_ok() {
                ok += 1;
            }
            if out.quiescent {
                quiescent += 1;
                qtime += out.last_protocol_send;
            }
        }
        t.row(vec![
            delay.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            if quiescent > 0 {
                (qtime / quiescent).to_string()
            } else {
                "—".to_string()
            },
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------- E8 ----

/// E8 — the realistic heartbeat detector vs. the oracle (n=8, loss=0.2).
///
/// Sweeps the suspicion timeout (heartbeat period fixed at 20 ticks).
/// Short timeouts cause false suspicions → safety/liveness failures;
/// long timeouts delay quiescence. The oracle row is the reference.
pub fn e8_heartbeat_realism() -> Vec<Table> {
    let mut t = Table::new(
        "E8 — heartbeat FD timeout sweep (n=8, t=2, loss=0.2, period=20)",
        &[
            "detector",
            "timeout",
            "URB ok",
            "quiescent",
            "mean quiescence time",
        ],
    );
    let mk = |seed: u64| -> SimConfig {
        let mut cfg = SimConfig::new(8, Algorithm::Quiescent)
            .seed(seed)
            // Bursty loss is what breaks heartbeat detectors: a burst longer
            // than the timeout silences a perfectly alive process.
            .loss(LossModel::Burst {
                p_enter: 0.02,
                p_exit: 0.05,
                p_loss: 0.95,
            })
            .workload(3, 100)
            .max_time(60_000);
        cfg.crashes = CrashPlan::random(8, 2, 2_000, seed ^ 0xE8, Some(0));
        cfg
    };
    for &timeout in &[25u64, 60, 120, 240, 480] {
        let mut ok = 0u64;
        let mut quiescent = 0u64;
        let mut qtime = 0u64;
        for seed in 0..SEEDS {
            let mut cfg = mk(seed * 41 + 7);
            cfg.fd = FdKind::Heartbeat(HeartbeatConfig {
                period: 20,
                timeout,
            });
            let out = run(cfg);
            if out.report.all_ok() {
                ok += 1;
            }
            if out.quiescent {
                quiescent += 1;
                qtime += out.last_protocol_send;
            }
        }
        t.row(vec![
            "heartbeat".into(),
            timeout.to_string(),
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            if quiescent > 0 {
                (qtime / quiescent).to_string()
            } else {
                "—".into()
            },
        ]);
    }
    // Oracle reference row.
    let mut ok = 0u64;
    let mut quiescent = 0u64;
    let mut qtime = 0u64;
    for seed in 0..SEEDS {
        let mut cfg = mk(seed * 41 + 7);
        cfg.fd = FdKind::Oracle(OracleConfig::default());
        let out = run(cfg);
        if out.report.all_ok() {
            ok += 1;
        }
        if out.quiescent {
            quiescent += 1;
            qtime += out.last_protocol_send;
        }
    }
    t.row(vec![
        "oracle".into(),
        "—".into(),
        format!("{ok}/{SEEDS}"),
        format!("{quiescent}/{SEEDS}"),
        if quiescent > 0 {
            (qtime / quiescent).to_string()
        } else {
            "—".into()
        },
    ]);
    vec![t]
}

// ---------------------------------------------------------------- E9 ----

/// E9 — protocol memory over a broadcast stream (n=6, 30 msgs, loss=0.1).
///
/// Algorithm 1's `MSG` set grows with every message and never shrinks;
/// Algorithm 2 prunes back to zero. Reported: peak and final state sizes.
pub fn e9_memory() -> Vec<Table> {
    let mut t = Table::new(
        "E9 — state sizes over a 30-message stream (n=6, loss=0.1)",
        &[
            "algorithm",
            "peak MSG set",
            "final MSG set",
            "peak total state",
            "final total state",
        ],
    );
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        let mut peak_msg = 0usize;
        let mut final_msg = 0usize;
        let mut peak_total = 0usize;
        let mut final_total = 0usize;
        for seed in 0..3 {
            // 30k-tick horizon: the 30-message stream ends at ~t=6k, leaving
            // Algorithm 2 ample time to prune everything (and bounding
            // Algorithm 1's forever-rebroadcast cost).
            let cfg = scenario::memory_stream(6, alg, 30, 30_000, seed + 3);
            let out = run(cfg);
            for s in &out.metrics.stats_samples {
                for p in &s.per_process {
                    peak_msg = peak_msg.max(p.msg_set);
                    peak_total = peak_total.max(p.total());
                }
            }
            for p in &out.final_stats {
                final_msg = final_msg.max(p.msg_set);
                final_total = final_total.max(p.total());
            }
        }
        t.row(vec![
            alg.name().to_string(),
            peak_msg.to_string(),
            final_msg.to_string(),
            peak_total.to_string(),
            final_total.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E10 ----

/// E10 — the §III fast-delivery remark: deliveries that precede the MSG
/// copy, under skewed delays and loss.
pub fn e10_fast_delivery() -> Vec<Table> {
    let mut t = Table::new(
        "E10 — fast deliveries (ACK quorum before the MSG copy)",
        &["n", "runs", "deliveries", "fast", "fast fraction"],
    );
    for &n in &[8usize, 16] {
        let mut total = 0usize;
        let mut fast = 0usize;
        for seed in 0..SEEDS {
            let out = run(scenario::fast_delivery(n, seed * 97 + 13));
            total += out.metrics.deliveries.len();
            fast += out.metrics.deliveries.iter().filter(|d| d.fast).count();
        }
        t.row(vec![
            n.to_string(),
            SEEDS.to_string(),
            total.to_string(),
            fast.to_string(),
            pct(fast as f64 / total.max(1) as f64),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E11 ----

/// E11 — the broadcast hierarchy (paper §I), quantified.
///
/// Arm A: plain 20% loss — best-effort broadcast loses messages while both
/// URB algorithms deliver everywhere.
/// Arm B: sender partitioned + crash-on-first-delivery — eager RB delivers
/// at the doomed sender and violates uniform agreement; Algorithm 1 blocks
/// (safe).
pub fn e11_baselines() -> Vec<Table> {
    let mut a = Table::new(
        "E11a — delivery ratio under 20% loss (n=8, 4 msgs, no crashes)",
        &["algorithm", "delivery ratio", "agreement violations"],
    );
    for alg in [
        Algorithm::BestEffort,
        Algorithm::EagerRb,
        Algorithm::Majority,
    ] {
        let mut delivered = 0usize;
        let mut expected = 0usize;
        let mut violations = 0u64;
        for seed in 0..SEEDS {
            let mut cfg = SimConfig::new(8, alg)
                .seed(seed * 53 + 9)
                .loss(LossModel::Bernoulli { p: 0.2 })
                .workload(4, 100)
                .max_time(40_000);
            cfg.stop_on_full_delivery = true;
            let out = run(cfg);
            delivered += out.metrics.deliveries.len();
            expected += out.metrics.broadcasts.len() * 8;
            if !out.report.agreement.ok() {
                violations += 1;
            }
        }
        a.row(vec![
            alg.name().to_string(),
            pct(delivered as f64 / expected.max(1) as f64),
            violations.to_string(),
        ]);
    }

    let mut b = Table::new(
        "E11b — doomed sender (partitioned, crashes on first delivery)",
        &["algorithm", "sender delivered", "agreement violated", "blocked"],
    );
    for alg in [Algorithm::EagerRb, Algorithm::Majority] {
        let mut sender_delivered = 0u64;
        let mut violated = 0u64;
        let mut blocked = 0u64;
        for seed in 0..SEEDS {
            let mut cfg = SimConfig::new(8, alg).seed(seed * 59 + 3).max_time(30_000);
            cfg.crashes = CrashPlan::from_rules(
                (0..8)
                    .map(|i| {
                        if i == 0 {
                            CrashRule::OnFirstDelivery { delay: 0 }
                        } else {
                            CrashRule::Never
                        }
                    })
                    .collect(),
            );
            cfg.link_overrides = (1..8)
                .map(|to| LinkOverride {
                    from: 0,
                    to,
                    loss: LossModel::Always,
                })
                .collect();
            cfg.stop_on_quiescence = false;
            let out = run(cfg);
            if out.metrics.deliveries.iter().any(|d| d.pid == 0) {
                sender_delivered += 1;
            }
            if !out.report.agreement.ok() {
                violated += 1;
            }
            if out.metrics.deliveries.is_empty() {
                blocked += 1;
            }
        }
        b.row(vec![
            alg.name().to_string(),
            sender_delivered.to_string(),
            violated.to_string(),
            blocked.to_string(),
        ]);
    }
    vec![a, b]
}

// --------------------------------------------------------------- E12 ----

/// E12 — ablation of the D4 dead-ACKer purge.
///
/// Adversary ([`scenario::stale_acker`]): a process ACKs the broadcast wave
/// and crashes before `a_p*` becomes ready, leaving a never-refreshed label
/// set in everyone's `all_labels`. The paper's literal line-55 condition
/// blocks on it forever; the purge rule recovers. Both remain URB-correct
/// (the purge affects only quiescence).
pub fn e12_prune_ablation() -> Vec<Table> {
    let mut t = Table::new(
        "E12 — prune rule ablation (n=4, crash-after-ack adversary)",
        &[
            "prune rule",
            "URB ok",
            "quiescent",
            "mean quiescence time",
            "residual sends (tail 20%)",
        ],
    );
    for (alg, name) in [
        (Algorithm::Quiescent, "purge (D4, default)"),
        (Algorithm::QuiescentLiteral, "literal line 55"),
    ] {
        let mut ok = 0u64;
        let mut quiescent = 0u64;
        let mut qtime = 0u64;
        let mut residual = 0u64;
        let horizon = 60_000u64;
        for seed in 0..SEEDS {
            let out = run(scenario::stale_acker(alg, horizon, seed * 67 + 31));
            if out.report.all_ok() {
                ok += 1;
            }
            if out.quiescent {
                quiescent += 1;
                qtime += out.last_protocol_send;
            }
            residual += out.metrics.sends_after(horizon * 4 / 5);
        }
        t.row(vec![
            name.to_string(),
            format!("{ok}/{SEEDS}"),
            format!("{quiescent}/{SEEDS}"),
            if quiescent > 0 {
                (qtime / quiescent).to_string()
            } else {
                "— (never)".into()
            },
            (residual / SEEDS).to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E13 ----

/// E13 — extension ablation: exponential Task-1 backoff.
///
/// The paper's Task 1 retransmits every sweep; fairness only needs
/// "infinitely often". Exponentially spacing retransmissions (cap in
/// sweeps) preserves every URB property while cutting steady-state traffic;
/// the price is tail latency under loss. Fixed 20 000-tick horizon, n=8,
/// 20% loss, 3 messages.
pub fn e13_backoff_extension() -> Vec<Table> {
    let horizon = 20_000u64;
    let mut t = Table::new(
        "E13 — exponential backoff vs. faithful Task 1 (n=8, loss=0.2)",
        &[
            "variant",
            "URB ok",
            "total MSG+ACK",
            "median latency",
            "p99 latency",
        ],
    );
    let variants: Vec<(Algorithm, String)> = std::iter::once((
        Algorithm::Majority,
        "faithful (every sweep)".to_string(),
    ))
    .chain(
        [4u32, 16, 64]
            .into_iter()
            .map(|cap| (Algorithm::MajorityBackoff { cap }, format!("backoff cap={cap}"))),
    )
    .collect();
    for (alg, name) in variants {
        let mut ok = 0u64;
        let mut sends = 0u64;
        let mut lat = Vec::new();
        for seed in 0..SEEDS {
            let mut cfg = SimConfig::new(8, alg)
                .seed(seed * 71 + 5)
                .loss(LossModel::Bernoulli { p: 0.2 })
                .workload(3, 100)
                .max_time(horizon);
            cfg.stop_on_quiescence = false; // fixed horizon: comparable traffic
            let out = run(cfg);
            if out.report.all_ok() {
                ok += 1;
            }
            sends += out.metrics.protocol_sends();
            lat.extend(out.metrics.latencies());
        }
        lat.sort_unstable();
        let q = |p: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            lat[((p * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)]
        };
        t.row(vec![
            name,
            format!("{ok}/{SEEDS}"),
            (sends / SEEDS).to_string(),
            q(0.5).to_string(),
            q(0.99).to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------- E14 ----

/// E14 — healing partitions: recovery time after a total cut.
///
/// Fair-lossy fairness is suspended during a network partition and resumes
/// at the heal; URB must complete afterwards (the paper's model says
/// nothing about *when*). Sweep the partition duration: time from
/// broadcast to full delivery should track the cut end, and the post-heal
/// recovery lag should be roughly constant (one retransmission round).
pub fn e14_partition_heal() -> Vec<Table> {
    use urb_sim::Blackout;
    let mut t = Table::new(
        "E14 — healing partition: {0,1,2,3} | {4,5,6,7} cut from t=0 (n=8, alg1)",
        &[
            "cut duration",
            "runs",
            "URB ok",
            "mean full-delivery time",
            "mean lag after heal",
        ],
    );
    for &cut in &[0u64, 500, 2_000, 8_000] {
        let mut ok = 0u64;
        let mut total = Vec::new();
        for seed in 0..SEEDS {
            let mut cfg = SimConfig::new(8, Algorithm::Majority)
                .seed(seed * 83 + 2)
                .loss(LossModel::Bernoulli { p: 0.1 })
                .workload(1, 50)
                .max_time(cut + 60_000);
            cfg.blackouts = Blackout::partition(&[0, 1, 2, 3], &[4, 5, 6, 7], 0, cut);
            cfg.stop_on_full_delivery = true;
            let out = run(cfg);
            if out.report.all_ok() {
                ok += 1;
            }
            total.push(out.metrics.ended_at);
        }
        let mean = total.iter().sum::<u64>() / total.len() as u64;
        t.row(vec![
            cut.to_string(),
            SEEDS.to_string(),
            format!("{ok}/{SEEDS}"),
            mean.to_string(),
            mean.saturating_sub(cut).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        // Smoke-test the dispatcher without running the heavy grids.
        assert_eq!(ALL_IDS.len(), 14);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("e99");
    }

    #[test]
    fn e2_impossibility_small() {
        // The impossibility table is cheap enough to regenerate in tests:
        // the weakened arm must violate agreement, the control must block.
        let tables = e2_impossibility();
        let rendered = tables[0].render();
        assert!(rendered.contains("E2"));
        assert!(!tables[0].is_empty());
    }
}
