//! Experiment runner: regenerates every table of the reproduction.
//!
//! ```text
//! cargo run -p urb-bench --release --bin experiments            # all, E1..E12
//! cargo run -p urb-bench --release --bin experiments -- e4 e12  # a subset
//! ```
//!
//! Output is markdown; `EXPERIMENTS.md` archives a full run with commentary.

use std::time::Instant;
use urb_bench::experiments::{run_experiment, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|s| s.to_lowercase()).collect()
    };

    println!("# anon-urb experiment suite");
    println!(
        "\nReproduction of Tang, Larrea, Arévalo & Jiménez, \"Implementing Uniform \
         Reliable Broadcast in Anonymous Distributed Systems with Fair Lossy \
         Channels\" (IPPS 2015). The paper has no empirical section; each \
         experiment validates one of its formal claims (index in DESIGN.md §5)."
    );

    let suite_start = Instant::now();
    for id in &ids {
        let start = Instant::now();
        let tables = run_experiment(id);
        for t in &tables {
            t.print();
        }
        println!("\n_({id} completed in {:.1?})_", start.elapsed());
    }
    println!("\n_total suite time: {:.1?}_", suite_start.elapsed());
}
