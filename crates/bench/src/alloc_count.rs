//! Heap-allocation counting for the benchmark suite.
//!
//! Behind the `count-allocs` feature this module installs a global
//! allocator that wraps the system allocator and counts every
//! allocation, letting the A/B harness and the trajectory report
//! **allocations per operation** — the honest way to verify the
//! zero-copy codec's "no per-message heap allocation in steady state"
//! claim (DESIGN.md §10). Without the feature the module compiles to a
//! no-op whose probes report `None`, so callers need no `cfg` of their
//! own and the default build keeps the workspace-wide `unsafe` ban.
//!
//! ```text
//! cargo test -p urb-bench --features count-allocs
//! ```

/// Number of heap allocations observed so far by the counting allocator,
/// or `None` when the `count-allocs` feature is off.
pub fn allocation_count() -> Option<u64> {
    imp::current()
}

/// Runs `f` and returns `(result, allocations performed by f)`; the
/// count is `None` when the `count-allocs` feature is off.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    let before = allocation_count();
    let out = f();
    let after = allocation_count();
    (out, before.zip(after).map(|(b, a)| a - b))
}

#[cfg(feature = "count-allocs")]
#[allow(unsafe_code)]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System allocator with an allocation counter bolted on. Only
    /// `alloc`-family calls count (frees do not), since the claim under
    /// test is about *creating* heap blocks on the hot path.
    struct CountingAllocator;

    // SAFETY: defers verbatim to `System`, which upholds the GlobalAlloc
    // contract; the counter side effect does not touch the memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    pub(super) fn current() -> Option<u64> {
        Some(ALLOCATIONS.load(Ordering::Relaxed))
    }
}

#[cfg(not(feature = "count-allocs"))]
mod imp {
    pub(super) fn current() -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_matches_feature_state() {
        let (value, counted) = count_allocations(|| std::hint::black_box(vec![1u8; 64]));
        assert_eq!(value.len(), 64);
        if cfg!(feature = "count-allocs") {
            assert!(counted.expect("feature on") >= 1, "the Vec allocation");
        } else {
            assert!(counted.is_none());
        }
    }
}
