//! The shared machine-readable output envelope.
//!
//! Every JSON the toolchain emits — `urb run --json`, `urb scenario
//! --json`, `urb bench --json` — wears the same top-level envelope so
//! that scripts can dispatch on one shape:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "kind": "run-summary" | "bench-trajectory",
//!   "seed": 7,
//!   "git_rev": "abc123def456",
//!   "data": { …kind-specific body… }
//! }
//! ```
//!
//! The body under `data` is whatever the producing subsystem hand-rolls
//! (the offline `serde` shim generates nothing — see `vendor/README.md`);
//! the envelope pins the four fields a trajectory diff needs to line two
//! files up: same schema, same kind, which seed, which commit.

/// Version of the envelope itself and of every documented body schema.
/// Bump on any breaking change to either (DESIGN.md §10 documents the
/// bodies).
pub const SCHEMA_VERSION: u32 = 1;

/// Wraps a kind-specific JSON body in the shared envelope.
///
/// `body` must be a complete JSON value (the emitters here always pass
/// an object). The output is pretty-printed with the body indented one
/// level, matching the workspace's other hand-rolled emitters.
///
/// ```
/// let json = urb_bench::report::envelope("run-summary", 7, "{\n  \"n\": 5\n}");
/// let v: serde_json::Value = serde_json::from_str(&json).unwrap();
/// assert_eq!(v["schema_version"], 1);
/// assert_eq!(v["kind"], "run-summary");
/// assert_eq!(v["seed"], 7);
/// assert!(v["git_rev"].as_str().is_some(), "always a string");
/// assert_eq!(v["data"]["n"], 5);
/// ```
pub fn envelope(kind: &str, seed: u64, body: &str) -> String {
    envelope_with_rev(kind, seed, &git_rev(), body)
}

/// [`envelope`] with an explicit revision (tests pin it; the CLI lets
/// the repository decide).
pub fn envelope_with_rev(kind: &str, seed: u64, git_rev: &str, body: &str) -> String {
    // Re-indent the body one level so the envelope reads like one
    // document rather than a string blob.
    let mut indented = String::with_capacity(body.len() + 64);
    for (i, line) in body.lines().enumerate() {
        if i > 0 {
            indented.push_str("\n  ");
        }
        indented.push_str(line);
    }
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"kind\": \"{}\",\n  \"seed\": {seed},\n  \"git_rev\": \"{}\",\n  \"data\": {indented}\n}}",
        serde_json::escape(kind),
        serde_json::escape(git_rev),
    )
}

/// The current commit's abbreviated hash, for trajectory provenance.
///
/// Resolution order: the `URB_GIT_REV` environment variable (CI sets it
/// from its own checkout metadata), then `git rev-parse --short=12 HEAD`,
/// then the literal `"unknown"` — the field is always present, never an
/// error.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("URB_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_parses_and_carries_all_fields() {
        let json = envelope_with_rev(
            "bench-trajectory",
            42,
            "deadbeef0123",
            "{\n  \"x\": [1, 2]\n}",
        );
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["schema_version"], SCHEMA_VERSION as u64);
        assert_eq!(v["kind"], "bench-trajectory");
        assert_eq!(v["seed"], 42);
        assert_eq!(v["git_rev"], "deadbeef0123");
        assert_eq!(v["data"]["x"][1], 2);
    }

    #[test]
    fn git_rev_is_always_nonempty() {
        let rev = git_rev();
        assert!(!rev.is_empty());
    }

    #[test]
    fn envelope_escapes_kind() {
        let json = envelope_with_rev("we\"ird", 0, "r", "{}");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["kind"], "we\"ird");
    }
}
