//! Small descriptive-statistics toolkit for experiment tables.
//!
//! The experiment harness reports means over seeds; for the sweeps where
//! variance is part of the story (latency, quiescence time) tables also
//! show standard deviation and percentiles. No external dependency — 120
//! lines we can test exhaustively beat a stats crate we cannot vet.

/// Descriptive summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, nearest-rank on the sorted sample).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in experiment data"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let stddev = if count < 2 {
            0.0
        } else {
            let var =
                sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64;
            var.sqrt()
        };
        let pct = |p: f64| -> f64 {
            let rank = ((p * (count - 1) as f64).round() as usize).min(count - 1);
            sorted[rank]
        };
        Some(Summary {
            count,
            mean,
            stddev,
            min: sorted[0],
            median: pct(0.5),
            p99: pct(0.99),
            max: sorted[count - 1],
        })
    }

    /// Summarizes integer samples.
    pub fn of_u64(values: &[u64]) -> Option<Summary> {
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&f)
    }

    /// `"mean ± stddev"` with sensible precision.
    pub fn mean_pm(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.stddev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_u64(&[]).is_none());
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn median_and_percentiles_are_order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.median, 2.0);
        assert_eq!(a.p99, 3.0);
    }

    #[test]
    fn u64_conversion() {
        let s = Summary::of_u64(&[10, 20, 30]).unwrap();
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.mean_pm(), "20.0 ± 10.0");
    }
}
