//! Deterministic A/B harness: legacy codec vs. the zero-copy batch path.
//!
//! The zero-copy plane (DESIGN.md §10) claims two things: the new path
//! is **equivalent** (byte-identical frames, identical decodes) and
//! **faster** (no per-frame allocation on encode, no payload copies on
//! decode). This module makes both claims executable in-tree:
//!
//! 1. a seeded corpus of batches — same seed, same corpus, forever —
//!    is replayed through both paths and every frame/decode compared;
//! 2. both paths are timed over the same corpus (best-of-`trials`
//!    minimum, which is robust against scheduler noise);
//! 3. with the `count-allocs` feature, allocations per operation are
//!    measured for each path.
//!
//! `codec_ab_harness` in this module's tests is the acceptance gate:
//! equivalence must be exact and the zero-copy encode must win.

use crate::alloc_count::count_allocations;
use bytes::Bytes;
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;
use urb_core::Algorithm;
use urb_engine::{TopicEngine, TopicState};
use urb_types::{
    Batch, BufPool, FdSnapshot, Label, LabelSet, Payload, RandomSource, SplitMix64, Tag, TagAck,
    TopicId, WireMessage,
};

/// One timed side of the A/B comparison.
#[derive(Clone, Copy, Debug)]
pub struct PathMeasure {
    /// Best-of-trials wall time for one whole-corpus pass, nanoseconds.
    pub ns_per_pass: u64,
    /// Mean heap allocations per frame during a pass (`None` without the
    /// `count-allocs` feature).
    pub allocs_per_frame: Option<f64>,
}

/// Everything the A/B harness measured. Produced by [`run`].
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Corpus seed (the corpus is a pure function of it).
    pub seed: u64,
    /// Batches in the corpus.
    pub batches: usize,
    /// Messages across all batches.
    pub messages: usize,
    /// Total encoded bytes across all frames.
    pub bytes: usize,
    /// Every zero-copy frame was byte-identical to its legacy twin.
    pub frames_identical: bool,
    /// Both decode paths returned the original messages for every frame.
    pub roundtrip_ok: bool,
    /// Legacy encode: fresh buffer + freeze per frame.
    pub encode_legacy: PathMeasure,
    /// Zero-copy encode: one pooled buffer reused across the pass.
    pub encode_pooled: PathMeasure,
    /// Legacy decode: payloads copied out of the frame.
    pub decode_legacy: PathMeasure,
    /// Shared decode: payloads as refcounted frame views.
    pub decode_shared: PathMeasure,
}

impl CompareReport {
    /// Legacy-over-pooled encode time ratio (> 1 ⇒ zero-copy wins).
    pub fn encode_speedup(&self) -> f64 {
        self.encode_legacy.ns_per_pass as f64 / self.encode_pooled.ns_per_pass.max(1) as f64
    }

    /// Legacy-over-shared decode time ratio (> 1 ⇒ zero-copy wins).
    pub fn decode_speedup(&self) -> f64 {
        self.decode_legacy.ns_per_pass as f64 / self.decode_shared.ns_per_pass.max(1) as f64
    }

    /// Human-readable one-screen rendering (the `urb bench` footer).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "codec A/B (seed {}): {} batches, {} messages, {} frame bytes",
            self.seed, self.batches, self.messages, self.bytes
        );
        let _ = writeln!(
            s,
            "  equivalence: frames identical = {}, round-trip = {}",
            self.frames_identical, self.roundtrip_ok
        );
        let allocs = |m: &PathMeasure| {
            m.allocs_per_frame
                .map_or("n/a (enable count-allocs)".to_string(), |a| {
                    format!("{a:.2} allocs/frame")
                })
        };
        let _ = writeln!(
            s,
            "  encode: legacy {} ns/pass ({}) vs zero-copy {} ns/pass ({}) → {:.2}× ",
            self.encode_legacy.ns_per_pass,
            allocs(&self.encode_legacy),
            self.encode_pooled.ns_per_pass,
            allocs(&self.encode_pooled),
            self.encode_speedup()
        );
        let _ = writeln!(
            s,
            "  decode: legacy {} ns/pass ({}) vs shared {} ns/pass ({}) → {:.2}× ",
            self.decode_legacy.ns_per_pass,
            allocs(&self.decode_legacy),
            self.decode_shared.ns_per_pass,
            allocs(&self.decode_shared),
            self.decode_speedup()
        );
        s
    }
}

/// Builds the seeded corpus: a deterministic spread of batch sizes,
/// payload lengths and message variants shaped like real protocol
/// traffic (MSG-heavy with label-carrying ACK bursts and the occasional
/// heartbeat).
pub fn corpus(seed: u64, batches: usize) -> Vec<Batch> {
    let mut rng = SplitMix64::new(seed ^ 0xC0DE_CAB5);
    (0..batches)
        .map(|_| {
            let len = 1 + (rng.next_u64() % 32) as usize;
            (0..len)
                .map(|_| {
                    let payload_len = (rng.next_u64() % 128) as usize;
                    let body: Vec<u8> = (0..payload_len).map(|_| rng.next_u64() as u8).collect();
                    match rng.next_u64() % 5 {
                        0 | 1 => WireMessage::Msg {
                            tag: Tag(rng.next_u64() as u128),
                            payload: Payload::from(body),
                        },
                        2 | 3 => WireMessage::Ack {
                            tag: Tag(rng.next_u64() as u128),
                            tag_ack: TagAck(rng.next_u64() as u128),
                            payload: Payload::from(body),
                            labels: if rng.next_u64().is_multiple_of(2) {
                                Some(LabelSet::from_iter(
                                    (0..rng.next_u64() % 8).map(|_| Label(rng.next_u64())),
                                ))
                            } else {
                                None
                            },
                        },
                        _ => WireMessage::Heartbeat {
                            label: Label(rng.next_u64()),
                            seq: rng.next_u64(),
                        },
                    }
                })
                .collect()
        })
        .collect()
}

fn best_of<T>(trials: usize, mut pass: impl FnMut() -> T) -> (u64, T) {
    let mut best = u64::MAX;
    let mut last = pass(); // warm-up, also gives us a value to return
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        last = pass();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best, last)
}

/// Replays the seeded corpus through both codec paths: verifies
/// equivalence, times each path (best of `trials` passes) and, when the
/// `count-allocs` feature is on, measures allocations per frame.
pub fn run(seed: u64, trials: usize) -> CompareReport {
    let corpus = corpus(seed, 64);
    let batches = corpus.len();
    let messages: usize = corpus.iter().map(|b| b.len()).sum();

    // --- Equivalence -----------------------------------------------------
    let pool = BufPool::new(2);
    let mut frames_identical = true;
    let mut roundtrip_ok = true;
    let mut legacy_frames: Vec<Bytes> = Vec::with_capacity(batches);
    for batch in &corpus {
        let legacy = batch.encode();
        let mut pooled = pool.acquire();
        batch.encode_into(&mut pooled);
        frames_identical &= pooled[..] == legacy[..];
        let copied = Batch::decode(&legacy);
        let shared = Batch::decode_shared(&legacy);
        roundtrip_ok &= matches!((&copied, &shared), (Ok(a), Ok(b)) if a == batch && b == batch);
        legacy_frames.push(legacy);
    }
    let bytes: usize = legacy_frames.iter().map(|f| f.len()).sum();

    // --- Encode timing ---------------------------------------------------
    let (legacy_ns, legacy_allocs) = {
        let (ns, (_, allocs)) = best_of(trials, || {
            count_allocations(|| {
                for batch in &corpus {
                    black_box(batch.encode());
                }
            })
        });
        (ns, allocs)
    };
    let (pooled_ns, pooled_allocs) = {
        // One reused buffer — the steady-state shape of the hot path.
        let mut frame = pool.acquire();
        // Warm the buffer so the measured passes are pure steady state.
        for batch in &corpus {
            frame.clear();
            batch.encode_into(&mut frame);
        }
        let (ns, (_, allocs)) = best_of(trials, || {
            count_allocations(|| {
                for batch in &corpus {
                    frame.clear();
                    batch.encode_into(&mut frame);
                    black_box(frame.len());
                }
            })
        });
        (ns, allocs)
    };

    // --- Decode timing ---------------------------------------------------
    let (dec_legacy_ns, dec_legacy_allocs) = {
        let (ns, (_, allocs)) = best_of(trials, || {
            count_allocations(|| {
                for frame in &legacy_frames {
                    black_box(Batch::decode(frame).unwrap());
                }
            })
        });
        (ns, allocs)
    };
    let (dec_shared_ns, dec_shared_allocs) = {
        let mut out: Vec<WireMessage> = Vec::new();
        for frame in &legacy_frames {
            Batch::decode_shared_into(frame, &mut out).unwrap(); // warm scratch
        }
        let (ns, (_, allocs)) = best_of(trials, || {
            count_allocations(|| {
                for frame in &legacy_frames {
                    Batch::decode_shared_into(frame, &mut out).unwrap();
                    black_box(out.len());
                }
            })
        });
        (ns, allocs)
    };

    let per_frame = |allocs: Option<u64>| allocs.map(|a| a as f64 / batches as f64);
    CompareReport {
        seed,
        batches,
        messages,
        bytes,
        frames_identical,
        roundtrip_ok,
        encode_legacy: PathMeasure {
            ns_per_pass: legacy_ns,
            allocs_per_frame: per_frame(legacy_allocs),
        },
        encode_pooled: PathMeasure {
            ns_per_pass: pooled_ns,
            allocs_per_frame: per_frame(pooled_allocs),
        },
        decode_legacy: PathMeasure {
            ns_per_pass: dec_legacy_ns,
            allocs_per_frame: per_frame(dec_legacy_allocs),
        },
        decode_shared: PathMeasure {
            ns_per_pass: dec_shared_ns,
            allocs_per_frame: per_frame(dec_shared_allocs),
        },
    }
}

// ------------------------------------------------------------------------
// Topic-dispatch A/B: directory vs. the old binary-search path
// ------------------------------------------------------------------------

/// One timed side of the topic-dispatch A/B.
#[derive(Clone, Copy, Debug)]
pub struct DispatchMeasure {
    /// Best-of-trials wall time for one whole-probe-stream pass, ns.
    pub ns_per_pass: u64,
    /// Order-sensitive fold of every verdict in the pass — equal
    /// checksums mean equal verdicts on every probe.
    pub checksum: u64,
}

/// What the topic-dispatch A/B measured. Produced by [`run_dispatch`].
///
/// The [`TopicDirectory`](urb_engine::TopicState) plane (DESIGN.md §16)
/// claims the one-probe lookup answers exactly what the old
/// `Vec::binary_search` + retired-`BTreeSet` pair answered — same slot
/// indices, same tombstone verdicts — and is not slower at any scale.
/// Both claims are executable here: a seeded probe stream (live ids,
/// retired ids, absent ids) runs through both lookups, verdict checksums
/// are compared, and both sides are timed best-of-trials.
#[derive(Clone, Debug)]
pub struct DispatchReport {
    /// Probe-stream seed.
    pub seed: u64,
    /// Topics created (every 17th retired and reaped before probing).
    pub topics: u32,
    /// Topics retired+reaped out of `topics`.
    pub retired: u32,
    /// Probes per pass.
    pub probes: usize,
    /// Every probe produced the same verdict on both paths.
    pub verdicts_identical: bool,
    /// The old path: `binary_search` on the sorted slot ids, then a
    /// `BTreeSet` probe for the tombstone.
    pub binary_search: DispatchMeasure,
    /// The new path: one [`TopicEngine::resolve`] directory probe.
    pub directory: DispatchMeasure,
}

impl DispatchReport {
    /// Binary-search-over-directory time ratio (> 1 ⇒ directory wins).
    pub fn speedup(&self) -> f64 {
        self.binary_search.ns_per_pass as f64 / self.directory.ns_per_pass.max(1) as f64
    }

    /// Human-readable rendering (the `urb bench` footer).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "topic dispatch A/B (seed {}): {} topics ({} retired), {} probes",
            self.seed, self.topics, self.retired, self.probes
        );
        let _ = writeln!(
            s,
            "  equivalence: verdicts identical = {}",
            self.verdicts_identical
        );
        let _ = writeln!(
            s,
            "  lookup: binary search {} ns/pass vs directory {} ns/pass → {:.2}× ",
            self.binary_search.ns_per_pass,
            self.directory.ns_per_pass,
            self.speedup()
        );
        s
    }
}

/// Encodes one lookup outcome as the comparable verdict scalar: the live
/// slot index, or a tombstone/absent sentinel.
const VERDICT_RETIRED: u64 = u64::MAX - 1;
const VERDICT_ABSENT: u64 = u64::MAX;

fn fold(checksum: u64, verdict: u64) -> u64 {
    checksum.rotate_left(7) ^ verdict
}

/// Runs the topic-dispatch A/B at `topics` live instances: builds one
/// engine, retires and reaps every 17th topic, then replays a seeded
/// probe stream through the directory (`TopicEngine::resolve`) and
/// through the pre-directory data structures (sorted slot-id vector +
/// retired set), timing both best-of-`trials`.
pub fn run_dispatch(seed: u64, topics: u32, trials: usize) -> DispatchReport {
    assert!(topics >= 2);
    let mut engine = TopicEngine::new(
        (0..topics)
            .map(|_| Algorithm::Majority.instantiate(3))
            .collect(),
        SplitMix64::new(seed ^ 0xD15_9A7C8),
    );
    let fd = FdSnapshot::none();
    let mut retired_ids: BTreeSet<u32> = BTreeSet::new();
    for id in (0..topics).step_by(17) {
        assert!(engine.retire_topic(TopicId(id)));
        retired_ids.insert(id);
    }
    let reaped = engine.reap_drained(&fd);
    assert_eq!(
        reaped,
        retired_ids.len(),
        "fresh instances are quiescent, so every retiree reaps at once"
    );
    // The old path's exact data structures: the ascending slot-id vector
    // `slot_index` binary-searched and the retired tombstone set.
    let slots: Vec<u32> = (0..topics).filter(|id| !retired_ids.contains(id)).collect();

    // Seeded probe stream: ~2/3 live hits, plus retired and absent ids.
    let mut rng = SplitMix64::new(seed ^ 0x70B1_CD15);
    let span = topics as u64 + (topics as u64 / 2).max(1);
    let probes: Vec<u32> = (0..1usize << 17)
        .map(|_| (rng.next_u64() % span) as u32)
        .collect();

    let binary_lookup = |id: u32| -> u64 {
        match slots.binary_search(&id) {
            Ok(i) => i as u64,
            Err(_) => {
                if retired_ids.contains(&id) {
                    VERDICT_RETIRED
                } else {
                    VERDICT_ABSENT
                }
            }
        }
    };
    let directory_lookup = |engine: &TopicEngine, id: u32| -> u64 {
        match engine.resolve(TopicId(id)) {
            TopicState::Live(i) | TopicState::Draining(i) => i as u64,
            TopicState::Retired => VERDICT_RETIRED,
            TopicState::Unknown => VERDICT_ABSENT,
        }
    };

    let verdicts_identical = probes
        .iter()
        .all(|&id| binary_lookup(id) == directory_lookup(&engine, id));

    let (binary_ns, binary_sum) = best_of(trials, || {
        probes
            .iter()
            .fold(0u64, |acc, &id| fold(acc, binary_lookup(black_box(id))))
    });
    let (dir_ns, dir_sum) = best_of(trials, || {
        probes.iter().fold(0u64, |acc, &id| {
            fold(acc, directory_lookup(black_box(&engine), black_box(id)))
        })
    });

    DispatchReport {
        seed,
        topics,
        retired: retired_ids.len() as u32,
        probes: probes.len(),
        verdicts_identical: verdicts_identical && binary_sum == dir_sum,
        binary_search: DispatchMeasure {
            ns_per_pass: binary_ns,
            checksum: binary_sum,
        },
        directory: DispatchMeasure {
            ns_per_pass: dir_ns,
            checksum: dir_sum,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_varied() {
        let a = corpus(9, 32);
        let b = corpus(9, 32);
        assert_eq!(a, b, "same seed, same corpus");
        let c = corpus(10, 32);
        assert_ne!(a, c, "different seed, different corpus");
        let kinds: std::collections::BTreeSet<usize> = a
            .iter()
            .flat_map(|b| b.messages())
            .map(|m| m.kind().index())
            .collect();
        assert_eq!(kinds.len(), 3, "all message variants appear");
    }

    /// The acceptance gate (ISSUE 3): the zero-copy path must be
    /// byte-identical to the legacy codec AND beat it on batch-encode
    /// throughput. Timing uses best-of-5 whole-corpus passes, so the
    /// comparison is stable even on loaded CI machines: the legacy path
    /// pays an allocation and a freeze copy per frame that the pooled
    /// path simply does not perform.
    #[test]
    fn codec_ab_harness() {
        let report = run(7, 5);
        assert!(
            report.frames_identical,
            "zero-copy frames must be byte-identical"
        );
        assert!(report.roundtrip_ok, "both decode paths must round-trip");
        assert!(
            report.encode_speedup() > 1.0,
            "zero-copy encode must beat the legacy codec: {:#?}",
            report
        );
        // With the counting allocator on, the claim is exact: the pooled
        // pass performs zero allocations; the legacy pass at least one
        // per frame.
        if let (Some(legacy), Some(pooled)) = (
            report.encode_legacy.allocs_per_frame,
            report.encode_pooled.allocs_per_frame,
        ) {
            assert_eq!(
                pooled, 0.0,
                "steady-state zero-copy encode allocates nothing"
            );
            assert!(legacy >= 1.0, "legacy allocates per frame: {legacy}");
        }
        let text = report.render_text();
        assert!(text.contains("codec A/B"));
        assert!(text.contains("encode:"));
    }

    #[test]
    fn mux_codec_is_allocation_free_in_steady_state_when_counted() {
        // The topic plane's zero-alloc claim (DESIGN.md §12): encoding a
        // multiplexed frame into a warm pooled buffer and decoding it
        // with shared payloads into warm scratch allocates nothing per
        // frame or per message. MSG-only corpus — ACK label sets own
        // their storage and legitimately allocate.
        use urb_types::{encode_mux_frame_into, MuxBatch, TopicId};
        let mut rng = SplitMix64::new(41);
        let entries: Vec<(TopicId, WireMessage)> = (0..3u32)
            .flat_map(|t| {
                let tag = Tag(rng.next_u128());
                (0..8).map(move |i| {
                    (
                        TopicId(t),
                        WireMessage::Msg {
                            tag: Tag(tag.0 ^ i),
                            payload: Payload::from("steady-state payload"),
                        },
                    )
                })
            })
            .collect();
        let pool = BufPool::new(2);
        let mut scratch: Vec<(TopicId, WireMessage)> = Vec::new();
        // Warm-up: grow the pooled buffer and the scratch to capacity,
        // and materialize the frame bytes once.
        let frame = {
            let mut buf = pool.acquire();
            encode_mux_frame_into(&entries, &mut buf);
            let frame = Bytes::copy_from_slice(&buf);
            MuxBatch::decode_shared_into(&frame, &mut scratch).unwrap();
            frame
        };
        let (_, allocs) = count_allocations(|| {
            for _ in 0..64 {
                let mut buf = pool.acquire();
                encode_mux_frame_into(black_box(&entries), &mut buf);
                black_box(&buf);
                drop(buf);
                MuxBatch::decode_shared_into(black_box(&frame), &mut scratch).unwrap();
                black_box(&scratch);
            }
        });
        if let Some(allocs) = allocs {
            assert_eq!(allocs, 0, "warm mux encode+decode must not allocate");
        }
    }

    /// The directory acceptance gate (ISSUE 10): `TopicEngine::resolve`
    /// must answer exactly what the old binary-search + tombstone-set
    /// pair answered on every probe AND must not be slower. At 64k
    /// topics the old path pays ~16 comparisons per probe; the directory
    /// pays one dense-array load, so best-of-5 timing is stable even on
    /// loaded CI machines.
    #[test]
    fn topic_dispatch_ab_harness() {
        let report = run_dispatch(11, 1 << 16, 5);
        assert!(
            report.verdicts_identical,
            "directory and binary-search verdicts must agree: {report:#?}"
        );
        assert_eq!(report.binary_search.checksum, report.directory.checksum);
        assert!(
            report.directory.ns_per_pass <= report.binary_search.ns_per_pass,
            "the directory path must not be slower: {:#?}",
            report
        );
        let text = report.render_text();
        assert!(text.contains("topic dispatch A/B"));
        assert!(text.contains("verdicts identical = true"));
    }

    #[test]
    fn dispatch_ab_covers_small_planes_too() {
        // The dense/sparse split and the retire pattern hold at tiny
        // scale as well; equivalence (not timing) is the claim here.
        for topics in [2u32, 17, 1_000] {
            let report = run_dispatch(5, topics, 1);
            assert!(report.verdicts_identical, "{topics} topics");
        }
    }

    /// The 100k-topic steady-state zero-alloc gate (ISSUE 10): with
    /// 100 000 live topics, receiving a multiplexed frame of duplicate
    /// MSGs (the steady-state ingress shape — payload views are
    /// refcounted, ACK replies carry no label set under Algorithm 1)
    /// allocates nothing once the scratch buffers are warm. The
    /// directory probe itself is allocation-free by construction; this
    /// pins the whole `receive_mux_frame` path around it.
    #[test]
    fn mux_ingress_at_100k_topics_is_allocation_free_when_counted() {
        use urb_engine::{MuxBuffers, StepInput};
        use urb_types::encode_mux_frame_into;
        let topics = 100_000u32;
        let mut engine = TopicEngine::new(
            (0..topics)
                .map(|_| Algorithm::Majority.instantiate(3))
                .collect(),
            SplitMix64::new(23),
        );
        let fd = FdSnapshot::none();
        let mut mux = MuxBuffers::new();
        // Broadcast once on a spread of topics (low, middle, top of the
        // dense range) to seed tags, then rebuild their MSGs as one
        // ascending multi-run frame.
        let mut entries: Vec<(TopicId, WireMessage)> = Vec::new();
        for &t in &[0u32, 49_999, 99_999] {
            let tag = engine
                .step_mux(
                    TopicId(t),
                    StepInput::Broadcast(Payload::from("steady")),
                    &fd,
                    &mut mux,
                )
                .expect("broadcast assigns a tag");
            for _ in 0..8 {
                entries.push((
                    TopicId(t),
                    WireMessage::Msg {
                        tag,
                        payload: Payload::from("steady"),
                    },
                ));
            }
        }
        let pool = BufPool::new(2);
        let frame = {
            let mut buf = pool.acquire();
            encode_mux_frame_into(&entries, &mut buf);
            Bytes::copy_from_slice(&buf)
        };
        // Warm-up: grow every scratch/outbox/state structure to its
        // steady-state capacity.
        for _ in 0..4 {
            mux.clear();
            engine
                .receive_mux_frame(&frame, &mut mux, |_, _| FdSnapshot::none())
                .expect("well-formed frame");
        }
        let (_, allocs) = count_allocations(|| {
            for _ in 0..32 {
                mux.clear();
                engine
                    .receive_mux_frame(black_box(&frame), &mut mux, |_, _| FdSnapshot::none())
                    .expect("well-formed frame");
                black_box(&mux);
            }
        });
        if let Some(allocs) = allocs {
            assert_eq!(
                allocs, 0,
                "steady-state mux ingress at 100k topics must not allocate"
            );
        }
    }

    #[test]
    fn shared_decode_scratch_is_allocation_free_when_counted() {
        let report = run(3, 3);
        if let Some(shared) = report.decode_shared.allocs_per_frame {
            // Label sets still allocate (they own their storage); payload
            // bytes do not. The measured rate must therefore be far below
            // one allocation *per message* (the legacy path's floor).
            let per_message = shared * report.batches as f64 / report.messages as f64;
            assert!(per_message < 1.0, "shared decode allocs/msg: {per_message}");
        }
    }
}
