//! The benchmark-trajectory subsystem: machine-readable perf history.
//!
//! `urb bench --json BENCH_PR<k>.json` runs a **reduced, fixed grid** for
//! every experiment id (E1–E23) and emits one schema-versioned JSON file
//! — the repo's perf trajectory. Each PR archives one such file; diffing
//! two of them answers "what did this PR do to throughput, latency and
//! allocation behaviour?" without re-running anything (DESIGN.md §10
//! documents the schema and how to read a diff).
//!
//! Everything in the file is **deterministic for a fixed seed**: the
//! grids are pure functions of `(id, seed)`, every reported number is
//! derived from simulated time (ticks), counts, or trace hashes — never
//! from the wall clock — and the serial and parallel collectors produce
//! byte-identical files (asserted in tests; the executor guarantees
//! run-level parity). The one exception is `allocs_per_run`, which is
//! `null` unless the `count-allocs` feature is enabled.

use crate::alloc_count::count_allocations;
use crate::report;
use crate::table::{f3, Table};
use std::fmt::Write as _;
use urb_core::Algorithm;
use urb_fd::HeartbeatConfig;
use urb_sim::sim::FdKind;
use urb_sim::spec::{self, ScenarioSpec};
use urb_sim::{scenario, Blackout, LossModel, RunOutcome, SimConfig};
use urb_types::MemoryConfig;

/// Envelope `kind` of a trajectory file.
pub const KIND: &str = "bench-trajectory";

/// What to collect. [`TrajectoryConfig::full`] is what `urb bench` runs
/// by default; CI's smoke job narrows `ids` and `seeds_per_cell`.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Root seed; every run's seed derives from it and the grid cell.
    pub seed: u64,
    /// Seeds per grid cell (3 keeps the full trajectory under a minute
    /// in release builds; bump for tighter numbers).
    pub seeds_per_cell: u64,
    /// Experiment ids to cover (subset of `e1..e23`).
    pub ids: Vec<String>,
    /// Override of E22's topic-count grid (`None` = the pinned default
    /// `[1, 1k, 100k]` the committed trajectory files use).
    pub load_topics: Option<Vec<u32>>,
    /// Override of E23's offered-load grid in arrivals per kilotick
    /// (`None` = the pinned default sweep across the capacity knee).
    pub rates: Option<Vec<u64>>,
}

impl TrajectoryConfig {
    /// The full trajectory: every experiment id, 3 seeds per cell, the
    /// pinned open-loop grids.
    pub fn full(seed: u64) -> Self {
        TrajectoryConfig {
            seed,
            seeds_per_cell: 3,
            ids: crate::experiments::ALL_IDS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            load_topics: None,
            rates: None,
        }
    }
}

/// One experiment's aggregated, deterministic measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentPoint {
    /// Experiment id (`"e1"`…`"e21"`).
    pub id: String,
    /// Simulated runs aggregated into this point.
    pub runs: u64,
    /// Runs on which every applicable URB property (and FD audit) held.
    pub urb_ok: u64,
    /// URB deliveries across all runs.
    pub deliveries: u64,
    /// MSG+ACK transmissions across all runs.
    pub transmissions: u64,
    /// Transmission copies dropped by channels.
    pub dropped: u64,
    /// Delivery-latency percentiles in simulated ticks (0 when no
    /// deliveries, e.g. the blocking arm of E2).
    pub latency_p50: u64,
    /// 90th percentile.
    pub latency_p90: u64,
    /// 99th percentile.
    pub latency_p99: u64,
    /// Mean simulated end time per run, ticks.
    pub mean_end_time: u64,
    /// Protocol transmissions per 1000 simulated ticks — the
    /// wall-clock-free throughput figure.
    pub throughput_per_ktick: f64,
    /// Batch-pool hit rate across the runs (routed sub-batches served
    /// without allocating — the pooled-buffer claim, per experiment).
    pub pool_hit_rate: f64,
    /// Heap allocations per run (`None` without `count-allocs`).
    pub allocs_per_run: Option<f64>,
    /// Order-sensitive fold of the runs' determinism hashes: two
    /// trajectories with equal fingerprints replayed identical events.
    pub trace_fingerprint: u64,
}

/// A full trajectory: one [`ExperimentPoint`] per requested id.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Root seed the grids derived from.
    pub seed: u64,
    /// Seeds per cell used.
    pub seeds_per_cell: u64,
    /// The measurements, in request order.
    pub points: Vec<ExperimentPoint>,
}

/// How to execute the grid runs. The two modes must produce identical
/// trajectories (runs are pure functions of their config); the parity
/// test pins it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// One run at a time through [`urb_sim::run`].
    Serial,
    /// All of a cell's runs fanned across cores via [`urb_sim::run_many`].
    Parallel,
}

/// Collects the trajectory, fanning each experiment's grid across all
/// cores.
pub fn collect(cfg: &TrajectoryConfig) -> Trajectory {
    collect_with(cfg, ExecMode::Parallel)
}

/// Collects with an explicit execution mode (parity testing; the CLI
/// always uses [`collect`]).
pub fn collect_with(cfg: &TrajectoryConfig, mode: ExecMode) -> Trajectory {
    let points = cfg
        .ids
        .iter()
        .map(|id| {
            if id == "e22" || id == "e23" {
                return open_loop_point(id, cfg);
            }
            let configs = grid(id, cfg.seed, cfg.seeds_per_cell);
            let runs = configs.len() as u64;
            let (outcomes, allocs) = count_allocations(|| match mode {
                ExecMode::Serial => configs.into_iter().map(urb_sim::run).collect::<Vec<_>>(),
                ExecMode::Parallel => urb_sim::run_many(configs),
            });
            aggregate(id, runs, &outcomes, allocs.map(|a| a as f64 / runs as f64))
        })
        .collect();
    Trajectory {
        seed: cfg.seed,
        seeds_per_cell: cfg.seeds_per_cell,
        points,
    }
}

/// Collects one open-loop point (E22/E23 — DESIGN.md §16). Open-loop
/// runs step engines directly (no event-queue `SimConfig`), so they
/// bypass the sim executor; `open_loop` is a pure function of its
/// config, which makes the serial and parallel collectors trivially
/// identical here and keeps the whole-trajectory parity pin intact.
/// Every emitted number reuses the existing point schema — the
/// append-only guarantee: no new required fields, new ids only.
fn open_loop_point(id: &str, cfg: &TrajectoryConfig) -> ExperimentPoint {
    let cells = crate::experiments::open_loop_grid(
        id,
        cfg.seed,
        cfg.seeds_per_cell,
        cfg.load_topics.as_deref(),
        cfg.rates.as_deref(),
    );
    let runs = cells.len() as u64;
    let horizons: Vec<u64> = cells.iter().map(|c| c.ticks).collect();
    let (outcomes, allocs) = count_allocations(|| {
        cells
            .into_iter()
            .map(urb_sim::open_loop)
            .collect::<Vec<_>>()
    });
    // `urb_ok` here means the open-loop contract held: every offered
    // arrival was injected and completed (URB validity observed at the
    // origin, with the drain phase guaranteeing termination).
    let urb_ok = outcomes
        .iter()
        .filter(|o| o.offered == o.injected && o.offered == o.completed)
        .count() as u64;
    let deliveries: u64 = outcomes.iter().map(|o| o.deliveries).sum();
    let transmissions: u64 = outcomes.iter().map(|o| o.transmissions).sum();
    // Percentiles are worst-across-cells: each cell's distribution is
    // exact (simulated ticks), and the max is the deterministic scalar
    // that moves first when a load point crosses the knee.
    let max = |f: fn(&urb_sim::OpenLoopOutcome) -> u64| outcomes.iter().map(f).max().unwrap_or(0);
    let total_ticks: u64 = outcomes
        .iter()
        .zip(&horizons)
        .map(|(o, h)| h + o.drain_ticks)
        .sum();
    let mut fingerprint = 0u64;
    for o in &outcomes {
        for &h in &o.delivery_hashes {
            fingerprint = fingerprint.rotate_left(7) ^ h;
        }
        fingerprint = fingerprint.rotate_left(11) ^ o.latency_p999 ^ (o.drain_ticks << 32);
    }
    ExperimentPoint {
        id: id.to_string(),
        runs,
        urb_ok,
        deliveries,
        transmissions,
        dropped: 0, // the open-loop network is lossless by construction
        latency_p50: max(|o| o.latency_p50),
        latency_p90: max(|o| o.latency_p90),
        latency_p99: max(|o| o.latency_p99),
        mean_end_time: total_ticks / runs.max(1),
        throughput_per_ktick: transmissions as f64 * 1000.0 / total_ticks.max(1) as f64,
        // No pooled batch plane in the direct-stepping harness; 0 keeps
        // the field honest rather than vacuously perfect.
        pool_hit_rate: 0.0,
        allocs_per_run: allocs.map(|a| a as f64 / runs.max(1) as f64),
        trace_fingerprint: fingerprint,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
}

fn aggregate(
    id: &str,
    runs: u64,
    outcomes: &[RunOutcome],
    allocs_per_run: Option<f64>,
) -> ExperimentPoint {
    let urb_ok = outcomes.iter().filter(|o| o.all_ok()).count() as u64;
    let deliveries: u64 = outcomes
        .iter()
        .map(|o| o.metrics.deliveries.len() as u64)
        .sum();
    let transmissions: u64 = outcomes.iter().map(|o| o.metrics.protocol_sends()).sum();
    let dropped: u64 = outcomes
        .iter()
        .map(|o| o.metrics.dropped.iter().sum::<u64>())
        .sum();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.metrics.latencies())
        .collect();
    latencies.sort_unstable();
    let total_ticks: u64 = outcomes.iter().map(|o| o.metrics.ended_at).sum();
    let (acquired, recycled) = outcomes.iter().fold((0u64, 0u64), |(a, r), o| {
        (a + o.batch_pool.acquired, r + o.batch_pool.recycled)
    });
    let mut fingerprint = 0u64;
    for o in outcomes {
        fingerprint = fingerprint.rotate_left(7) ^ o.metrics.trace_hash;
    }
    ExperimentPoint {
        id: id.to_string(),
        runs,
        urb_ok,
        deliveries,
        transmissions,
        dropped,
        latency_p50: percentile(&latencies, 0.50),
        latency_p90: percentile(&latencies, 0.90),
        latency_p99: percentile(&latencies, 0.99),
        mean_end_time: total_ticks / runs.max(1),
        throughput_per_ktick: transmissions as f64 * 1000.0 / total_ticks.max(1) as f64,
        pool_hit_rate: recycled as f64 / acquired.max(1) as f64,
        allocs_per_run,
        trace_fingerprint: fingerprint,
    }
}

/// The reduced, fixed grid for one experiment id — a pure function of
/// `(id, seed, seeds)`, deliberately smaller than the full E-suite grids
/// (this is a *trajectory* sample, not the paper-validation run).
pub fn grid(id: &str, seed: u64, seeds: u64) -> Vec<SimConfig> {
    let mut cfgs: Vec<SimConfig> = Vec::new();
    // Fully wrapping: user-supplied seeds may sit anywhere in u64, and
    // debug builds must derive the same runs release builds do.
    let derive = |cell: u64, s: u64| {
        seed.wrapping_mul(9973)
            .wrapping_add(cell.wrapping_mul(131))
            .wrapping_add(s)
    };
    match id {
        "e1" => {
            for (cell, &(n, loss)) in [(4usize, 0.0f64), (4, 0.2), (8, 0.0), (8, 0.2)]
                .iter()
                .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(scenario::lossy_crashy(
                        n,
                        Algorithm::Majority,
                        loss,
                        1,
                        2,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e2" => {
            for s in 0..seeds {
                let mut a = scenario::theorem2_partition(4, derive(0, s));
                a.max_time = 15_000;
                cfgs.push(a);
                let mut b = scenario::theorem2_control(4, derive(1, s));
                b.max_time = 15_000;
                cfgs.push(b);
            }
        }
        "e3" => {
            for (cell, &t) in [0usize, 4].iter().enumerate() {
                for s in 0..seeds {
                    cfgs.push(scenario::lossy_crashy(
                        5,
                        Algorithm::Quiescent,
                        0.2,
                        t,
                        2,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e4" => {
            for (cell, alg) in [Algorithm::Majority, Algorithm::Quiescent]
                .into_iter()
                .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(scenario::quiescence_watch(
                        6,
                        alg,
                        0.2,
                        3,
                        20_000,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e5" => {
            for (cell, &(alg, loss)) in [
                (Algorithm::Majority, 0.1f64),
                (Algorithm::Majority, 0.3),
                (Algorithm::Quiescent, 0.1),
                (Algorithm::Quiescent, 0.3),
            ]
            .iter()
            .enumerate()
            {
                for s in 0..seeds {
                    let mut cfg =
                        scenario::lossy_crashy(8, alg, loss, 0, 2, derive(cell as u64, s));
                    cfg.max_time = 40_000;
                    cfgs.push(cfg);
                }
            }
        }
        "e6" => {
            for (cell, &(n, alg)) in [
                (4usize, Algorithm::Majority),
                (8, Algorithm::Majority),
                (4, Algorithm::Quiescent),
                (8, Algorithm::Quiescent),
            ]
            .iter()
            .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(scenario::lossy_crashy(
                        n,
                        alg,
                        0.1,
                        0,
                        2,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e7" => {
            for (cell, &delay) in [0u64, 5_000].iter().enumerate() {
                for s in 0..seeds {
                    cfgs.push(scenario::fd_latency(6, delay, 2, derive(cell as u64, s)));
                }
            }
        }
        "e8" => {
            for s in 0..seeds {
                let mut cfg = SimConfig::new(6, Algorithm::Quiescent)
                    .seed(derive(0, s))
                    .loss(LossModel::Bernoulli { p: 0.1 })
                    .workload(2, 100)
                    .max_time(40_000);
                cfg.fd = FdKind::Heartbeat(HeartbeatConfig {
                    period: 20,
                    timeout: 120,
                });
                cfgs.push(cfg);
            }
        }
        "e9" => {
            for (cell, alg) in [Algorithm::Majority, Algorithm::Quiescent]
                .into_iter()
                .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(scenario::memory_stream(
                        4,
                        alg,
                        10,
                        15_000,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e10" => {
            for s in 0..seeds {
                cfgs.push(scenario::fast_delivery(6, derive(0, s)));
            }
        }
        "e11" => {
            for (cell, alg) in [
                Algorithm::BestEffort,
                Algorithm::EagerRb,
                Algorithm::Majority,
            ]
            .into_iter()
            .enumerate()
            {
                for s in 0..seeds {
                    let mut cfg = SimConfig::new(6, alg)
                        .seed(derive(cell as u64, s))
                        .loss(LossModel::Bernoulli { p: 0.2 })
                        .workload(2, 100)
                        .max_time(30_000);
                    cfg.stop_on_full_delivery = true;
                    cfgs.push(cfg);
                }
            }
        }
        "e12" => {
            for (cell, alg) in [Algorithm::Quiescent, Algorithm::QuiescentLiteral]
                .into_iter()
                .enumerate()
            {
                for s in 0..seeds {
                    cfgs.push(scenario::stale_acker(alg, 30_000, derive(cell as u64, s)));
                }
            }
        }
        "e13" => {
            for (cell, alg) in [Algorithm::Majority, Algorithm::MajorityBackoff { cap: 16 }]
                .into_iter()
                .enumerate()
            {
                for s in 0..seeds {
                    let mut cfg = SimConfig::new(6, alg)
                        .seed(derive(cell as u64, s))
                        .loss(LossModel::Bernoulli { p: 0.2 })
                        .workload(2, 100)
                        .max_time(15_000);
                    cfg.stop_on_quiescence = false;
                    cfgs.push(cfg);
                }
            }
        }
        "e14" => {
            for s in 0..seeds {
                let mut cfg = SimConfig::new(6, Algorithm::Majority)
                    .seed(derive(0, s))
                    .loss(LossModel::Bernoulli { p: 0.1 })
                    .workload(1, 50)
                    .max_time(40_000);
                cfg.blackouts = Blackout::partition(&[0, 1, 2], &[3, 4, 5], 0, 1_000);
                cfg.stop_on_full_delivery = true;
                cfgs.push(cfg);
            }
        }
        "e15" | "e17" => {
            // The scenario corpus; e15 varies seeds, e17 replays each spec
            // at its own seed (the parity/fingerprint sample).
            //
            // Pinned to the corpus as of BENCH_PR3: trajectory grids are
            // append-only — corpus *additions* (e.g. the topic-plane
            // scenarios) get their own experiments (E18/E19), so existing
            // grid points stay byte-comparable across PRs forever.
            const PINNED: [&str; 8] = [
                "clean_smoke",
                "lossy_crashes",
                "partition_heal",
                "ack_starvation",
                "churn",
                "crash_storm",
                "targeted_delay",
                "theorem2_violation",
            ];
            let pinned = spec::corpus()
                .into_iter()
                .filter(|(name, _)| PINNED.contains(name));
            for (cell, (name, text)) in pinned.enumerate() {
                let base = ScenarioSpec::from_toml_str(text)
                    .unwrap_or_else(|e| panic!("corpus {name}: {e}"));
                let reps = if id == "e15" { seeds } else { 1 };
                for s in 0..reps {
                    let mut sp = base.clone();
                    if id == "e15" {
                        sp.seed = base.seed.wrapping_add(derive(cell as u64, s));
                    }
                    cfgs.push(
                        sp.compile()
                            .unwrap_or_else(|e| panic!("corpus {name}: {e}")),
                    );
                }
            }
        }
        "e16" => {
            for s in 0..seeds {
                let mut sp = ScenarioSpec::new("bench-e16", 5, Algorithm::Majority);
                sp.seed = derive(0, s);
                sp.loss = LossModel::Bernoulli { p: 0.1 };
                sp.stop = spec::StopRule::FullDelivery;
                sp.horizon = 40_000;
                sp.workload = spec::WorkloadSpec::Generated {
                    count: 2,
                    spacing: 100,
                    start: 10,
                };
                sp.schedules.push(urb_sim::Schedule::AckStarvation {
                    victim: 4,
                    start: 0,
                    end: 1_000,
                });
                cfgs.push(sp.compile().expect("bench e16 spec compiles"));
            }
        }
        "e18" => {
            // Topic-count scaling on the reduced grid (DESIGN.md §12).
            for (cell, &topics) in [1u32, 2, 4].iter().enumerate() {
                for s in 0..seeds {
                    cfgs.push(
                        SimConfig::new(4, Algorithm::Quiescent)
                            .topics(topics)
                            .seed(derive(cell as u64, s))
                            .workload_topics(6, 50)
                            .max_time(200_000),
                    );
                }
            }
        }
        "e19" => {
            // Mux-vs-separate frames A/B; both arms share the grid so the
            // trajectory's count metrics cover both planes.
            for (cell, &mux) in [true, false].iter().enumerate() {
                for s in 0..seeds {
                    let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
                        .topics(3)
                        .seed(derive(cell as u64, s))
                        .workload_topics(6, 20)
                        .max_time(200_000);
                    cfg.mux_frames = mux;
                    cfgs.push(cfg);
                }
            }
        }
        "e20" => {
            // Bounded-memory plane (DESIGN.md §14): the identical lossy
            // workload with compaction off (cell 0) and on (cell 1). New
            // in this PR — e20 points have no counterpart in earlier
            // trajectory files, so existing diff overlaps are untouched.
            let bounded = MemoryConfig {
                ceiling: Some(600),
                ..MemoryConfig::default()
            };
            for (cell, mem) in [None, Some(bounded)].into_iter().enumerate() {
                for s in 0..seeds {
                    let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
                        .seed(derive(cell as u64, s))
                        .loss(LossModel::Bernoulli { p: 0.1 })
                        .workload(3, 50)
                        .max_time(200_000);
                    if let Some(m) = mem {
                        cfg = cfg.memory(m);
                    }
                    cfg.stop_on_quiescence = true;
                    cfgs.push(cfg);
                }
            }
        }
        "e21" => {
            // Dynamic-topic churn (DESIGN.md §15): one create/retire
            // generation per cell-0 run, three per cell-1 run. New in this
            // PR — e21 points have no counterpart in earlier trajectory
            // files, so existing diff overlaps are untouched.
            for (cell, &gens) in [1u32, 3].iter().enumerate() {
                for s in 0..seeds {
                    cfgs.push(crate::experiments::churn_config(
                        4,
                        gens,
                        derive(cell as u64, s),
                    ));
                }
            }
        }
        "e22" | "e23" => panic!(
            "{id} is an open-loop experiment: it has no SimConfig grid — \
             cells come from crate::experiments::open_loop_grid"
        ),
        other => panic!("unknown experiment id {other:?} (use e1..e23)"),
    }
    cfgs
}

impl Trajectory {
    /// The complete trajectory file: body wrapped in the shared envelope
    /// (`schema_version`, `kind`, `seed`, `git_rev` — see
    /// [`crate::report`]).
    pub fn to_json(&self) -> String {
        report::envelope(KIND, self.seed, &self.body_json())
    }

    /// The `data` body alone.
    fn body_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.points.len() * 384);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"seeds_per_cell\": {},", self.seeds_per_cell);
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"id\": \"{}\",", serde_json::escape(&p.id));
            let _ = writeln!(out, "      \"runs\": {},", p.runs);
            let _ = writeln!(out, "      \"urb_ok\": {},", p.urb_ok);
            let _ = writeln!(out, "      \"deliveries\": {},", p.deliveries);
            let _ = writeln!(out, "      \"transmissions\": {},", p.transmissions);
            let _ = writeln!(out, "      \"dropped\": {},", p.dropped);
            let _ = writeln!(out, "      \"latency_p50\": {},", p.latency_p50);
            let _ = writeln!(out, "      \"latency_p90\": {},", p.latency_p90);
            let _ = writeln!(out, "      \"latency_p99\": {},", p.latency_p99);
            let _ = writeln!(out, "      \"mean_end_time\": {},", p.mean_end_time);
            let _ = writeln!(
                out,
                "      \"throughput_per_ktick\": {:?},",
                p.throughput_per_ktick
            );
            let _ = writeln!(out, "      \"pool_hit_rate\": {:?},", p.pool_hit_rate);
            let _ = writeln!(
                out,
                "      \"allocs_per_run\": {},",
                p.allocs_per_run
                    .map_or("null".to_string(), |a| format!("{a:?}"))
            );
            let _ = writeln!(out, "      \"trace_fingerprint\": {}", p.trace_fingerprint);
            let _ = write!(
                out,
                "    }}{}",
                if i + 1 < self.points.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        out.push_str("  ]\n}");
        out
    }

    /// Human summary (the default `urb bench` stdout).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "bench trajectory — reduced grids, deterministic per seed",
            &[
                "id",
                "runs",
                "URB ok",
                "tx/ktick",
                "p50",
                "p99",
                "pool hits",
                "fingerprint",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.id.clone(),
                p.runs.to_string(),
                format!("{}/{}", p.urb_ok, p.runs),
                f3(p.throughput_per_ktick),
                p.latency_p50.to_string(),
                p.latency_p99.to_string(),
                f3(p.pool_hit_rate),
                format!("{:#018x}", p.trace_fingerprint),
            ]);
        }
        t
    }
}

/// Validates a trajectory file against the documented schema
/// (DESIGN.md §10). Returns every violation found, so CI output names
/// all problems at once; an empty `Ok(())` means the file conforms.
pub fn validate_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let mut errors: Vec<String> = Vec::new();
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };
    check(
        v["schema_version"].as_u64() == Some(report::SCHEMA_VERSION as u64),
        "schema_version must be 1",
    );
    check(
        v["kind"].as_str() == Some(KIND),
        "kind must be \"bench-trajectory\"",
    );
    check(
        v["seed"].as_u64().is_some(),
        "seed must be an unsigned integer",
    );
    check(
        v["git_rev"].as_str().is_some_and(|s| !s.is_empty()),
        "git_rev must be a non-empty string",
    );
    let data = &v["data"];
    check(
        data["seeds_per_cell"].as_u64().is_some(),
        "data.seeds_per_cell must be an unsigned integer",
    );
    match data["points"].as_array() {
        None => errors.push("data.points must be an array".to_string()),
        Some(points) => {
            if points.is_empty() {
                errors.push("data.points must not be empty".to_string());
            }
            for (i, p) in points.iter().enumerate() {
                let mut field = |name: &str, ok: bool| {
                    if !ok {
                        errors.push(format!("points[{i}].{name} missing or mistyped"));
                    }
                };
                field("id", p["id"].as_str().is_some_and(|s| s.starts_with('e')));
                for key in [
                    "runs",
                    "urb_ok",
                    "deliveries",
                    "transmissions",
                    "dropped",
                    "latency_p50",
                    "latency_p90",
                    "latency_p99",
                    "mean_end_time",
                    "trace_fingerprint",
                ] {
                    field(key, p[key].as_u64().is_some());
                }
                for key in ["throughput_per_ktick", "pool_hit_rate"] {
                    field(key, p[key].as_f64().is_some());
                }
                field(
                    "allocs_per_run",
                    p["allocs_per_run"].is_null() || p["allocs_per_run"].as_f64().is_some(),
                );
                field("runs > 0", p["runs"].as_u64().is_some_and(|r| r > 0));
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

/// One exact-match failure on an overlapping grid point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointMismatch {
    /// Experiment id.
    pub id: String,
    /// The deterministic count metric that diverged.
    pub field: &'static str,
    /// Value in the old file.
    pub old: u64,
    /// Value in the new file.
    pub new: u64,
}

/// Result of diffing two trajectory files (`urb bench --diff`).
///
/// Grid points **overlap** when both files were collected with the same
/// root seed and seeds-per-cell and share an experiment id; on
/// overlapping points every deterministic count metric (runs, verdicts,
/// traffic, latency percentiles, end times, trace fingerprints) must
/// match *exactly* — the grids are pure functions of `(id, seed)`, so
/// any divergence is a behaviour change, not noise. Derived float
/// metrics are reported for context, never gated on.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Both files used the same `(seed, seeds_per_cell)` — without this
    /// no point overlaps and the diff cannot gate anything.
    pub comparable: bool,
    /// Ids whose overlapping points matched exactly.
    pub matched: Vec<String>,
    /// Every exact-match failure (all fields of all points, so one diff
    /// run names every problem).
    pub mismatches: Vec<PointMismatch>,
    /// Ids only present in the old file.
    pub only_old: Vec<String>,
    /// Ids only present in the new file.
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// The gate: comparable, at least one overlapping point, no
    /// mismatch.
    pub fn is_clean(&self) -> bool {
        self.comparable && self.mismatches.is_empty() && !self.matched.is_empty()
    }

    /// Human rendering (one line per finding).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.comparable {
            out.push_str("not comparable: the files differ in seed or seeds_per_cell\n");
            return out;
        }
        for id in &self.matched {
            let _ = writeln!(out, "  {id}: OK (all count metrics identical)");
        }
        for m in &self.mismatches {
            let _ = writeln!(
                out,
                "  {}: {} diverged — old {}, new {}",
                m.id, m.field, m.old, m.new
            );
        }
        for id in &self.only_old {
            let _ = writeln!(out, "  {id}: only in old file (not compared)");
        }
        for id in &self.only_new {
            let _ = writeln!(out, "  {id}: only in new file (not compared)");
        }
        if self.matched.is_empty() && self.mismatches.is_empty() {
            out.push_str("  no overlapping grid points\n");
        }
        out
    }
}

/// The deterministic count metrics gated by [`diff_json`].
pub const COUNT_METRICS: [&str; 10] = [
    "runs",
    "urb_ok",
    "deliveries",
    "transmissions",
    "dropped",
    "latency_p50",
    "latency_p90",
    "latency_p99",
    "mean_end_time",
    "trace_fingerprint",
];

/// Diffs two trajectory files. Both must validate against the schema;
/// see [`DiffReport`] for the comparison semantics.
pub fn diff_json(old_text: &str, new_text: &str) -> Result<DiffReport, String> {
    validate_json(old_text).map_err(|e| format!("old file: {e}"))?;
    validate_json(new_text).map_err(|e| format!("new file: {e}"))?;
    let old: serde_json::Value = serde_json::from_str(old_text).expect("validated above");
    let new: serde_json::Value = serde_json::from_str(new_text).expect("validated above");
    let mut report = DiffReport {
        comparable: old["seed"].as_u64() == new["seed"].as_u64()
            && old["data"]["seeds_per_cell"].as_u64() == new["data"]["seeds_per_cell"].as_u64(),
        ..DiffReport::default()
    };
    if !report.comparable {
        return Ok(report);
    }
    let points = |v: &serde_json::Value| -> Vec<serde_json::Value> {
        v["data"]["points"].as_array().expect("validated").clone()
    };
    let old_points = points(&old);
    let new_points = points(&new);
    let find = |list: &[serde_json::Value], id: &str| -> Option<serde_json::Value> {
        list.iter().find(|p| p["id"].as_str() == Some(id)).cloned()
    };
    for p in &old_points {
        let id = p["id"].as_str().expect("validated").to_string();
        let Some(q) = find(&new_points, &id) else {
            report.only_old.push(id);
            continue;
        };
        let mut clean = true;
        for field in COUNT_METRICS {
            let (a, b) = (p[field].as_u64(), q[field].as_u64());
            if a != b {
                clean = false;
                report.mismatches.push(PointMismatch {
                    id: id.clone(),
                    field,
                    old: a.unwrap_or(0),
                    new: b.unwrap_or(0),
                });
            }
        }
        if clean {
            report.matched.push(id);
        }
    }
    for q in &new_points {
        let id = q["id"].as_str().expect("validated");
        if find(&old_points, id).is_none() {
            report.only_new.push(id.to_string());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrajectoryConfig {
        TrajectoryConfig {
            seed: 5,
            seeds_per_cell: 1,
            ids: vec!["e1".into(), "e11".into()],
            load_topics: None,
            rates: None,
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = collect(&tiny());
        let b = collect(&tiny());
        assert_eq!(a, b);
        std::env::set_var("URB_GIT_REV", "test-rev-0001");
        assert_eq!(a.to_json(), b.to_json(), "byte-identical files");
        std::env::remove_var("URB_GIT_REV");
        let mut other = tiny();
        other.seed = 6;
        assert_ne!(
            collect(&other).points[0].trace_fingerprint,
            a.points[0].trace_fingerprint
        );
    }

    #[test]
    fn serial_and_parallel_collectors_agree() {
        let cfg = tiny();
        let serial = collect_with(&cfg, ExecMode::Serial);
        let parallel = collect_with(&cfg, ExecMode::Parallel);
        // `allocs_per_run` is exec-mode-sensitive when counting is on
        // (the thread pool allocates); everything *measured from the
        // runs* must be identical.
        let scrub = |mut t: Trajectory| {
            for p in &mut t.points {
                p.allocs_per_run = None;
            }
            t
        };
        assert_eq!(scrub(serial), scrub(parallel));
    }

    #[test]
    fn emitted_json_validates_and_carries_the_envelope() {
        let t = collect(&tiny());
        let json = t.to_json();
        validate_json(&json).expect("fresh trajectory conforms to its own schema");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["kind"], KIND);
        assert_eq!(v["seed"], 5);
        assert_eq!(v["data"]["points"].as_array().unwrap().len(), 2);
        assert_eq!(v["data"]["points"][0]["id"], "e1");
        assert!(v["data"]["points"][0]["urb_ok"].as_u64().unwrap() > 0);
    }

    #[test]
    fn validator_rejects_broken_files() {
        assert!(validate_json("not json").is_err());
        assert!(validate_json("{}").unwrap_err().contains("schema_version"));
        let t = collect(&tiny());
        let good = t.to_json();
        let bad = good.replace("\"kind\": \"bench-trajectory\"", "\"kind\": \"nonsense\"");
        assert!(validate_json(&bad).unwrap_err().contains("kind"));
        let bad = good.replace("\"runs\":", "\"runs_gone\":");
        assert!(validate_json(&bad).unwrap_err().contains("runs"));
    }

    #[test]
    fn diff_accepts_identical_and_overlapping_files() {
        std::env::set_var("URB_GIT_REV", "diff-test");
        let full = collect(&tiny()).to_json();
        let narrow = collect(&TrajectoryConfig {
            ids: vec!["e1".into()],
            ..tiny()
        })
        .to_json();
        std::env::remove_var("URB_GIT_REV");
        let same = diff_json(&full, &full).unwrap();
        assert!(same.is_clean(), "{}", same.render());
        assert_eq!(same.matched, vec!["e1".to_string(), "e11".to_string()]);
        // Subset grids still gate on the shared points.
        let sub = diff_json(&full, &narrow).unwrap();
        assert!(sub.is_clean(), "{}", sub.render());
        assert_eq!(sub.matched, vec!["e1".to_string()]);
        assert_eq!(sub.only_old, vec!["e11".to_string()]);
    }

    #[test]
    fn diff_flags_count_metric_divergence() {
        std::env::set_var("URB_GIT_REV", "diff-test");
        let a = collect(&tiny()).to_json();
        std::env::remove_var("URB_GIT_REV");
        let needle = "\"transmissions\": ";
        let start = a.find(needle).unwrap() + needle.len();
        let end = a[start..].find(',').unwrap() + start;
        let b = format!("{}{}{}", &a[..start], 123456789u64, &a[end..]);
        let report = diff_json(&a, &b).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.mismatches[0].field, "transmissions");
        assert!(report.render().contains("transmissions diverged"));
    }

    #[test]
    fn diff_refuses_incomparable_grids_and_broken_files() {
        std::env::set_var("URB_GIT_REV", "diff-test");
        let a = collect(&tiny()).to_json();
        let other = collect(&TrajectoryConfig { seed: 6, ..tiny() }).to_json();
        std::env::remove_var("URB_GIT_REV");
        let report = diff_json(&a, &other).unwrap();
        assert!(!report.comparable);
        assert!(!report.is_clean());
        assert!(report.render().contains("not comparable"));
        assert!(diff_json("junk", &a).unwrap_err().contains("old file"));
        assert!(diff_json(&a, "junk").unwrap_err().contains("new file"));
    }

    #[test]
    fn every_experiment_id_has_a_grid() {
        for id in crate::experiments::ALL_IDS {
            if id == "e22" || id == "e23" {
                let cells = crate::experiments::open_loop_grid(id, 1, 1, None, None);
                assert!(!cells.is_empty(), "{id} open-loop grid empty");
                continue;
            }
            let g = grid(id, 1, 1);
            assert!(!g.is_empty(), "{id} grid empty");
        }
    }

    #[test]
    #[should_panic(expected = "open-loop experiment")]
    fn sim_grid_refuses_open_loop_ids() {
        let _ = grid("e22", 1, 1);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = grid("e99", 1, 1);
    }

    #[test]
    fn open_loop_points_collect_with_parity_and_validate() {
        // Scaled-down open-loop grids (override flags) so the debug test
        // stays fast; the committed trajectory uses the pinned defaults.
        let cfg = TrajectoryConfig {
            seed: 5,
            seeds_per_cell: 1,
            ids: vec!["e22".into(), "e23".into()],
            load_topics: Some(vec![1, 64]),
            rates: Some(vec![500, 9_000]),
        };
        let t = collect(&cfg);
        assert_eq!(t.points.len(), 2);
        let e22 = &t.points[0];
        assert_eq!(e22.id, "e22");
        assert_eq!(e22.runs, 2, "two topic cells × one seed");
        assert_eq!(e22.urb_ok, 2, "every offered arrival completes");
        assert_eq!(e22.dropped, 0, "the open-loop network is lossless");
        assert!(e22.deliveries > 0);
        let e23 = &t.points[1];
        assert_eq!(e23.id, "e23");
        assert!(
            e23.latency_p99 > 0,
            "the past-capacity cell must push the tail off the floor"
        );
        // Serial/parallel parity extends to the open-loop branch.
        let scrub = |mut t: Trajectory| {
            for p in &mut t.points {
                p.allocs_per_run = None;
            }
            t
        };
        assert_eq!(
            scrub(collect_with(&cfg, ExecMode::Serial)),
            scrub(collect_with(&cfg, ExecMode::Parallel))
        );
        // The new points ride the existing schema unchanged.
        validate_json(&t.to_json()).expect("open-loop points conform to the point schema");
    }

    #[test]
    fn summary_table_renders_every_point() {
        let t = collect(&tiny());
        let rendered = t.summary_table().render();
        assert!(rendered.contains("e1"));
        assert!(rendered.contains("e11"));
        assert!(rendered.contains("fingerprint"));
    }
}
