//! Minimal markdown-table builder for experiment output.

use std::fmt::Write as _;

/// A markdown table under construction.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title line and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row/header arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown (with column alignment padding).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let line = |cells: &[String], width: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", cell, w = width[c]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &width));
        let mut sep = String::from("|");
        for w in &width {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &width));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["4".into(), "long-cell".into()]);
        t.row(vec!["16".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| n  | value     |"));
        assert!(s.contains("| 16 | x         |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
    }
}
