//! Cross-crate integration tests: the paper's theorems as machine-checked
//! facts over full simulated runs.
//!
//! Debug-mode grids are kept small; the release-mode experiment harness
//! (`urb-bench`) runs the big ones.

use anon_urb::prelude::*;
use urb_sim::{scenario, CrashRule, FdKind};

/// Theorem 1: Algorithm 1 implements URB for t < n/2, across loss rates and
/// minority crash counts.
#[test]
fn theorem1_algorithm1_urb_grid() {
    for n in [3usize, 5] {
        for loss in [0.0, 0.2] {
            for t in [0, (n - 1) / 2] {
                for seed in 0..3 {
                    let out = urb_sim::run(scenario::lossy_crashy(
                        n,
                        Algorithm::Majority,
                        loss,
                        t,
                        2,
                        seed * 101 + 7,
                    ));
                    assert!(
                        out.report.all_ok(),
                        "n={n} loss={loss} t={t} seed={seed}: {:?}",
                        out.report.violations()
                    );
                }
            }
        }
    }
}

/// Theorem 3 / Lemmas 1–3: Algorithm 2 implements URB with ANY number of
/// crashes (up to n-1), and the oracle detector passes its axiom audit.
#[test]
fn theorem3_algorithm2_urb_grid() {
    for n in [3usize, 5] {
        for loss in [0.0, 0.2] {
            for t in [0, n / 2, n - 1] {
                for seed in 0..3 {
                    let out = urb_sim::run(scenario::lossy_crashy(
                        n,
                        Algorithm::Quiescent,
                        loss,
                        t,
                        2,
                        seed * 103 + 11,
                    ));
                    assert!(
                        out.all_ok(),
                        "n={n} loss={loss} t={t} seed={seed}: {:?} / audit {:?}",
                        out.report.violations(),
                        out.fd_audit
                    );
                }
            }
        }
    }
}

/// Theorem 2 (impossibility), executable: with t >= n/2, the partition
/// adversary forces either an agreement violation (threshold-⌈n/2⌉ arm) or
/// a permanent block (strict-majority arm).
#[test]
fn theorem2_partition_both_horns() {
    for seed in 0..3 {
        let violated = urb_sim::run(scenario::theorem2_partition(6, seed + 1));
        assert!(!violated.metrics.deliveries.is_empty(), "S1 must deliver");
        assert!(!violated.report.agreement.ok(), "agreement must break");

        let blocked = urb_sim::run(scenario::theorem2_control(6, seed + 1));
        assert!(blocked.metrics.deliveries.is_empty(), "must block");
        assert!(blocked.report.all_ok(), "blocking violates nothing");
    }
}

/// Theorem 3 (quiescence): Algorithm 2 goes silent; Algorithm 1 never does.
#[test]
fn quiescence_contrast() {
    let a2 = urb_sim::run(scenario::quiescence_watch(
        5,
        Algorithm::Quiescent,
        0.15,
        3,
        40_000,
        21,
    ));
    assert!(a2.report.all_ok());
    assert!(a2.quiescent, "Algorithm 2 must reach quiescence");
    // sends_after has window granularity: skip the window containing the
    // quiescence instant itself.
    assert!(
        a2.metrics
            .sends_after(a2.last_protocol_send + a2.metrics.window)
            == 0,
        "no traffic after the quiescence window"
    );

    let a1 = urb_sim::run(scenario::quiescence_watch(
        5,
        Algorithm::Majority,
        0.15,
        3,
        40_000,
        21,
    ));
    assert!(a1.report.all_ok());
    assert!(!a1.quiescent, "Algorithm 1 must keep rebroadcasting");
    assert!(
        a1.metrics.sends_after(30_000) > 0,
        "Algorithm 1 still chatters in the last quarter of the horizon"
    );
}

/// Quiescence survives a process crashing *after* it acknowledged but
/// *before* pruning was possible — the stale-ACKer case the D4 purge
/// exists for.
#[test]
fn quiescence_with_crash_after_ack() {
    let out = urb_sim::run(scenario::stale_acker(Algorithm::Quiescent, 200_000, 31));
    assert!(out.all_ok(), "{:?}", out.report.violations());
    assert!(out.quiescent, "purge must unblock the prune condition");
}

/// The literal line-55 condition (no purge) blocks on the same scenario —
/// the executable justification for DESIGN.md D4.
#[test]
fn literal_prune_rule_blocks_on_stale_acker() {
    let out = urb_sim::run(scenario::stale_acker(
        Algorithm::QuiescentLiteral,
        30_000,
        31,
    ));
    // Still URB-correct (the purge only affects quiescence) …
    assert!(out.report.all_ok(), "{:?}", out.report.violations());
    // … but never quiescent within the horizon.
    assert!(!out.quiescent, "literal rule must stay blocked");
}

/// Determinism: identical configs (including seed) give identical traces;
/// different seeds diverge.
#[test]
fn simulation_is_deterministic() {
    let mk = |seed| {
        urb_sim::run(scenario::lossy_crashy(
            4,
            Algorithm::Quiescent,
            0.25,
            2,
            2,
            seed,
        ))
    };
    let a = mk(5);
    let b = mk(5);
    assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
    assert_eq!(a.metrics.sent, b.metrics.sent);
    assert_eq!(a.metrics.deliveries.len(), b.metrics.deliveries.len());
    let c = mk(6);
    assert_ne!(a.metrics.trace_hash, c.metrics.trace_hash);
}

/// The fast-delivery remark (§III): under skewed delays some deliveries
/// precede the MSG copy, and they are still URB-correct.
#[test]
fn fast_delivery_occurs_and_is_safe() {
    let mut fast_seen = false;
    for seed in 0..5 {
        let out = urb_sim::run(scenario::fast_delivery(8, seed * 17 + 3));
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        fast_seen |= out.metrics.deliveries.iter().any(|d| d.fast);
    }
    assert!(fast_seen, "skewed delays should produce fast deliveries");
}

/// Baseline contrast (E11 in miniature): best-effort loses messages under
/// loss where URB delivers everything.
#[test]
fn best_effort_loses_where_urb_does_not() {
    let mut cfg = SimConfig::new(6, Algorithm::BestEffort)
        .seed(77)
        .loss(LossModel::Bernoulli { p: 0.4 })
        .max_time(20_000);
    cfg.workload_replace(4);
    let be = urb_sim::run(cfg);
    let be_ratio = be.metrics.deliveries.len() as f64 / (4.0 * 6.0);

    let mut cfg = SimConfig::new(6, Algorithm::Majority)
        .seed(77)
        .loss(LossModel::Bernoulli { p: 0.4 })
        .max_time(60_000);
    cfg.workload_replace(4);
    cfg.stop_on_full_delivery = true;
    let urb = urb_sim::run(cfg);
    let urb_ratio = urb.metrics.deliveries.len() as f64 / (4.0 * 6.0);

    assert!(
        be_ratio < 1.0,
        "best effort must drop something at 40% loss"
    );
    assert!((urb_ratio - 1.0).abs() < 1e-9, "URB delivers everything");
}

/// Eager RB violates uniform agreement when the deliverer crashes; URB
/// blocks instead.
#[test]
fn eager_rb_uniformity_violation() {
    use urb_sim::LinkOverride;
    let mk = |alg| {
        let mut cfg = SimConfig::new(5, alg).seed(91).max_time(20_000);
        cfg.crashes = CrashPlan::from_rules(
            (0..5)
                .map(|i| {
                    if i == 0 {
                        CrashRule::OnFirstDelivery { delay: 0 }
                    } else {
                        CrashRule::Never
                    }
                })
                .collect(),
        );
        cfg.link_overrides = (1..5)
            .map(|to| LinkOverride {
                from: 0,
                to,
                loss: LossModel::Always,
            })
            .collect();
        cfg.stop_on_quiescence = false;
        urb_sim::run(cfg)
    };
    let rb = mk(Algorithm::EagerRb);
    assert!(
        !rb.report.agreement.ok(),
        "eager RB must violate uniformity"
    );
    let urb = mk(Algorithm::Majority);
    assert!(urb.metrics.deliveries.is_empty(), "URB blocks instead");
    assert!(urb.report.agreement.ok());
}

/// Heartbeat-detector runs: with generous timeouts and mild loss the
/// realistic detector is good enough for full URB + quiescence.
#[test]
fn heartbeat_detector_with_generous_timeout() {
    let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
        .seed(13)
        .loss(LossModel::Bernoulli { p: 0.1 })
        .max_time(100_000);
    cfg.fd = FdKind::Heartbeat(urb_fd_heartbeat_config(20, 400));
    let out = urb_sim::run(cfg);
    assert!(out.report.all_ok(), "{:?}", out.report.violations());
    assert!(out.quiescent);
}

fn urb_fd_heartbeat_config(period: u64, timeout: u64) -> anon_urb::fd::HeartbeatConfig {
    anon_urb::fd::HeartbeatConfig { period, timeout }
}

/// Bounded-drop channels give deterministic fairness: even at 90% loss the
/// protocol converges within a bounded horizon.
#[test]
fn bounded_loss_guarantees_progress() {
    let mut cfg = SimConfig::new(4, Algorithm::Majority)
        .seed(3)
        .loss(LossModel::BoundedBernoulli {
            p: 0.9,
            max_consecutive: 5,
        })
        .max_time(120_000);
    cfg.stop_on_full_delivery = true;
    let out = urb_sim::run(cfg);
    assert!(out.report.all_ok(), "{:?}", out.report.violations());
    for pid in 0..4 {
        assert_eq!(out.delivered_set(pid).len(), 1);
    }
}

// Small helper so tests read naturally.
trait WorkloadExt {
    fn workload_replace(&mut self, k: usize);
}
impl WorkloadExt for SimConfig {
    fn workload_replace(&mut self, k: usize) {
        *self = self.clone().workload(k, 100);
    }
}
