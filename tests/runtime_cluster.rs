//! Integration tests for the threaded runtime: the same protocol state
//! machines under real concurrency.
//!
//! These are smoke-level by design (thread scheduling is nondeterministic);
//! the exhaustive property checking lives in the simulator tests.

use anon_urb::prelude::*;
use std::time::Duration;

#[test]
fn cluster_delivers_everywhere_with_loss() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Majority).loss(0.2).seed(1));
    let tag = cluster.broadcast(0, Payload::from("integration")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who, vec![0, 1, 2, 3]);
    cluster.shutdown();
}

#[test]
fn cluster_quiesces_with_algorithm2() {
    let cluster = UrbCluster::spawn(
        ClusterConfig::new(4, Algorithm::Quiescent)
            .loss(0.1)
            .seed(2),
    );
    let tag = cluster.broadcast(3, Payload::from("then silence")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who.len(), 4);
    assert!(
        cluster.await_quiescence(Duration::from_millis(500), Duration::from_secs(30)),
        "no MSG/ACK should cross the router once pruning completes"
    );
    let t1 = cluster.traffic().protocol_messages;
    std::thread::sleep(Duration::from_millis(300));
    let t2 = cluster.traffic().protocol_messages;
    assert_eq!(t1, t2, "traffic counter frozen after quiescence");
    cluster.shutdown();
}

#[test]
fn cluster_survives_majority_crash_with_algorithm2() {
    // The paper's headline: URB despite t >= n/2, thanks to AΘ/AP*.
    let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Quiescent).seed(3));
    for pid in [1usize, 2, 3] {
        cluster.crash(pid);
    }
    // Let the registry's detection delay elapse so views converge.
    std::thread::sleep(Duration::from_millis(400));
    let tag = cluster
        .broadcast(0, Payload::from("minority rules"))
        .unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who, vec![0, 4], "both survivors deliver");
    cluster.shutdown();
}

#[test]
fn algorithm1_blocks_under_majority_crash() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Majority).seed(4));
    for pid in [1usize, 2, 3] {
        cluster.crash(pid);
    }
    std::thread::sleep(Duration::from_millis(100));
    let tag = cluster.broadcast(0, Payload::from("stuck")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(2));
    assert!(
        who.is_empty(),
        "2 distinct ACKs can never meet the majority threshold of 3"
    );
    cluster.shutdown();
}

/// Cross-backend parity: the same scenario driven through the shared
/// `urb-engine` layer under the simulator adapter and the runtime adapter
/// produces the same URB deliveries.
///
/// Tags are backend-local randomness, so parity is stated over what URB
/// actually guarantees: the per-process *sets of delivered payloads* (and
/// exactly-once delivery of each). Any divergence in protocol stepping
/// between the two adapters — ordering of outbox drains, missed ACK
/// processing, double delivery — would surface here.
#[test]
fn engine_parity_sim_and_runtime_agree_on_deliveries() {
    use std::collections::BTreeSet;

    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        // Simulator backend: 3 processes, 3 broadcasts ("m0".."m2" from
        // round-robin senders), no loss, no crashes.
        let mut cfg = SimConfig::new(3, alg).seed(11).workload(3, 100);
        cfg.stop_on_full_delivery = true;
        let out = urb_sim::run(cfg);
        let sim_delivered: Vec<BTreeSet<String>> = (0..3)
            .map(|pid| {
                out.metrics
                    .deliveries
                    .iter()
                    .filter(|d| d.pid == pid)
                    .map(|d| d.payload.as_text())
                    .collect()
            })
            .collect();
        for pid in 0..3 {
            assert_eq!(
                out.metrics
                    .deliveries
                    .iter()
                    .filter(|d| d.pid == pid)
                    .count(),
                3,
                "sim/{}: process {pid} delivers each payload exactly once",
                alg.name()
            );
        }

        // Runtime backend: the same workload through real threads.
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, alg).seed(12));
        let tags: Vec<Tag> = (0..3)
            .map(|i| {
                cluster
                    .broadcast(i % 3, Payload::from(format!("m{i}").as_str()))
                    .expect("broadcast accepted")
            })
            .collect();
        for tag in &tags {
            let who = cluster.await_delivery_everywhere(*tag, Duration::from_secs(30));
            assert_eq!(who.len(), 3, "runtime/{}: delivered everywhere", alg.name());
        }
        let runtime_delivered: Vec<BTreeSet<String>> = (0..3)
            .map(|pid| {
                cluster
                    .delivery_log(pid)
                    .iter()
                    .map(|d| d.payload.as_text())
                    .collect()
            })
            .collect();
        for pid in 0..3 {
            assert_eq!(
                cluster.delivery_log(pid).len(),
                3,
                "runtime/{}: process {pid} delivers each payload exactly once",
                alg.name()
            );
        }
        assert!(
            cluster.traffic().batches > 0,
            "runtime traffic moved on the batched plane"
        );
        cluster.shutdown();

        assert_eq!(
            sim_delivered,
            runtime_delivered,
            "backends disagree on URB delivery sets for {}",
            alg.name()
        );
    }
}

#[test]
fn multiple_concurrent_broadcasters() {
    let cluster = UrbCluster::spawn(
        ClusterConfig::new(4, Algorithm::Quiescent)
            .loss(0.1)
            .seed(5),
    );
    let tags: Vec<Tag> = (0..4)
        .map(|pid| {
            cluster
                .broadcast(pid, Payload::from(format!("from {pid}").as_str()))
                .unwrap()
        })
        .collect();
    for tag in tags {
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
        assert_eq!(who.len(), 4, "every message delivered everywhere");
    }
    cluster.shutdown();
}
