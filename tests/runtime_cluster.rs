//! Integration tests for the threaded runtime: the same protocol state
//! machines under real concurrency.
//!
//! These are smoke-level by design (thread scheduling is nondeterministic);
//! the exhaustive property checking lives in the simulator tests.

use anon_urb::prelude::*;
use std::time::Duration;

#[test]
fn cluster_delivers_everywhere_with_loss() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Majority).loss(0.2).seed(1));
    let tag = cluster.broadcast(0, Payload::from("integration")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who, vec![0, 1, 2, 3]);
    cluster.shutdown();
}

#[test]
fn cluster_quiesces_with_algorithm2() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Quiescent).loss(0.1).seed(2));
    let tag = cluster.broadcast(3, Payload::from("then silence")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who.len(), 4);
    assert!(
        cluster.await_quiescence(Duration::from_millis(500), Duration::from_secs(30)),
        "no MSG/ACK should cross the router once pruning completes"
    );
    let t1 = cluster.traffic().protocol_messages;
    std::thread::sleep(Duration::from_millis(300));
    let t2 = cluster.traffic().protocol_messages;
    assert_eq!(t1, t2, "traffic counter frozen after quiescence");
    cluster.shutdown();
}

#[test]
fn cluster_survives_majority_crash_with_algorithm2() {
    // The paper's headline: URB despite t >= n/2, thanks to AΘ/AP*.
    let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Quiescent).seed(3));
    for pid in [1usize, 2, 3] {
        cluster.crash(pid);
    }
    // Let the registry's detection delay elapse so views converge.
    std::thread::sleep(Duration::from_millis(400));
    let tag = cluster.broadcast(0, Payload::from("minority rules")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
    assert_eq!(who, vec![0, 4], "both survivors deliver");
    cluster.shutdown();
}

#[test]
fn algorithm1_blocks_under_majority_crash() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Majority).seed(4));
    for pid in [1usize, 2, 3] {
        cluster.crash(pid);
    }
    std::thread::sleep(Duration::from_millis(100));
    let tag = cluster.broadcast(0, Payload::from("stuck")).unwrap();
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(2));
    assert!(
        who.is_empty(),
        "2 distinct ACKs can never meet the majority threshold of 3"
    );
    cluster.shutdown();
}

#[test]
fn multiple_concurrent_broadcasters() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Quiescent).loss(0.1).seed(5));
    let tags: Vec<Tag> = (0..4)
        .map(|pid| {
            cluster
                .broadcast(pid, Payload::from(format!("from {pid}").as_str()))
                .unwrap()
        })
        .collect();
    for tag in tags {
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
        assert_eq!(who.len(), 4, "every message delivered everywhere");
    }
    cluster.shutdown();
}
