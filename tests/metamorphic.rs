//! Metamorphic tests: relations that must hold *between* runs.
//!
//! Instead of asserting absolute facts about one run, these compare pairs
//! of runs whose configurations are related in a way with a known expected
//! effect — a class of bugs (silent mis-wiring of a parameter, loss model
//! applied to the wrong link, seeds leaking across components) that
//! single-run assertions cannot see.

use anon_urb::prelude::*;
use urb_sim::scenario;

fn protocol_sends(alg: Algorithm, loss: f64, seed: u64) -> u64 {
    let mut cfg = scenario::quiescence_watch(5, alg, loss, 2, 20_000, seed);
    cfg.max_time = 20_000;
    urb_sim::run(cfg).metrics.protocol_sends()
}

/// More loss ⇒ (weakly) more drops and never *more* receptions, same seed.
#[test]
fn loss_monotonicity() {
    for seed in [3u64, 17] {
        let lo = urb_sim::run(scenario::lossy_crashy(
            5,
            Algorithm::Majority,
            0.05,
            0,
            2,
            seed,
        ));
        let hi = urb_sim::run(scenario::lossy_crashy(
            5,
            Algorithm::Majority,
            0.45,
            0,
            2,
            seed,
        ));
        let drops = |o: &RunOutcome| o.metrics.dropped.iter().sum::<u64>();
        let drop_rate =
            |o: &RunOutcome| drops(o) as f64 / o.metrics.sent.iter().sum::<u64>().max(1) as f64;
        assert!(
            drop_rate(&hi) > drop_rate(&lo),
            "45% loss must drop a larger fraction than 5% ({} vs {})",
            drop_rate(&hi),
            drop_rate(&lo)
        );
        // Both still deliver everywhere.
        assert!(lo.report.all_ok() && hi.report.all_ok());
    }
}

/// A backoff cap can only reduce fixed-horizon traffic, and a larger cap
/// reduces it further (same seed, same workload).
#[test]
fn backoff_traffic_monotonicity() {
    let faithful = protocol_sends(Algorithm::Majority, 0.2, 7);
    let cap4 = protocol_sends(Algorithm::MajorityBackoff { cap: 4 }, 0.2, 7);
    let cap64 = protocol_sends(Algorithm::MajorityBackoff { cap: 64 }, 0.2, 7);
    assert!(cap4 < faithful, "{cap4} !< {faithful}");
    assert!(cap64 < cap4, "{cap64} !< {cap4}");
}

/// Adding crashes to a run can only reduce total traffic (dead processes
/// stop transmitting), never break URB within the resilience bound.
#[test]
fn crash_traffic_monotonicity() {
    let no_crash = urb_sim::run(scenario::quiescence_watch(
        6,
        Algorithm::Majority,
        0.1,
        2,
        15_000,
        9,
    ));
    let mut crashy_cfg = scenario::quiescence_watch(6, Algorithm::Majority, 0.1, 2, 15_000, 9);
    crashy_cfg.crashes = CrashPlan::from_rules(
        (0..6)
            .map(|i| {
                if i >= 4 {
                    urb_sim::CrashRule::At(1_000)
                } else {
                    urb_sim::CrashRule::Never
                }
            })
            .collect(),
    );
    let crashy = urb_sim::run(crashy_cfg);
    assert!(
        crashy.metrics.protocol_sends() < no_crash.metrics.protocol_sends(),
        "two dead processes must lower fixed-horizon traffic"
    );
    assert!(no_crash.report.all_ok());
    assert!(crashy.report.all_ok(), "{:?}", crashy.report.violations());
}

/// The tick interval scales time, not correctness: halving the Task-1
/// period must not change the delivery *set*, only (weakly) the times.
#[test]
fn tick_interval_scales_time_not_outcome() {
    let mk = |interval: u64| {
        let mut cfg = SimConfig::new(4, Algorithm::Quiescent).seed(21);
        cfg.tick_interval = interval;
        cfg.tick_jitter = 0;
        cfg.loss = LossModel::Bernoulli { p: 0.2 };
        cfg.max_time = 200_000;
        urb_sim::run(cfg)
    };
    let fast = mk(5);
    let slow = mk(50);
    assert!(fast.all_ok() && slow.all_ok());
    assert_eq!(
        fast.metrics.deliveries.len(),
        slow.metrics.deliveries.len(),
        "same delivery set size"
    );
    let med = |o: &RunOutcome| o.metrics.latency_percentile(50.0).unwrap();
    assert!(
        med(&slow) > med(&fast),
        "10× slower sweeps must raise median latency ({} vs {})",
        med(&slow),
        med(&fast)
    );
}

/// Two algorithms, identical environment seed: Algorithm 2 must send no
/// *more* MSG traffic than Algorithm 1 over a quiescence-bounded run
/// (it stops; Algorithm 1 never does).
#[test]
fn quiescent_total_traffic_bounded_by_majority() {
    let a1 = protocol_sends(Algorithm::Majority, 0.2, 5);
    let a2 = protocol_sends(Algorithm::Quiescent, 0.2, 5);
    assert!(
        a2 < a1 / 10,
        "quiescent algorithm should send far less over a long horizon ({a2} vs {a1})"
    );
}

/// Seeds are genuinely load-bearing: different seeds produce different
/// traffic patterns (if they did not, the "randomness" would be fake).
#[test]
fn seeds_change_runs() {
    let a = urb_sim::run(scenario::lossy_crashy(5, Algorithm::Majority, 0.3, 2, 2, 1));
    let b = urb_sim::run(scenario::lossy_crashy(5, Algorithm::Majority, 0.3, 2, 2, 2));
    assert_ne!(a.metrics.trace_hash, b.metrics.trace_hash);
}
