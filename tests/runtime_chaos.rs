//! Chaos test for the threaded runtime: concurrent broadcasters, random
//! crash injection, message loss — then assert the URB obligations that
//! remain decidable from outside (agreement among survivors, integrity).
//!
//! Thread scheduling makes runtime runs non-reproducible, so this test
//! checks *properties*, not trajectories.

use anon_urb::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

#[test]
fn chaos_survivors_agree() {
    let n = 6;
    let cluster = UrbCluster::spawn(
        ClusterConfig::new(n, Algorithm::Quiescent)
            .loss(0.15)
            .seed(0xC4A05),
    );

    // Phase 1: everyone broadcasts. Tags from the processes we are about
    // to kill carry only *conditional* URB obligations (deliver-anywhere ⇒
    // deliver-at-every-survivor); tags from survivors are owed everywhere.
    let mut tags = Vec::new();
    let mut survivor_tags = Vec::new();
    for pid in 0..n {
        if let Some(tag) = cluster.broadcast(pid, Payload::from(format!("c{pid}").as_str())) {
            tags.push(tag);
            if pid != 1 && pid != 4 {
                survivor_tags.push(tag);
            }
        }
    }

    // Phase 2: kill two processes while their broadcasts are in flight.
    cluster.crash(1);
    cluster.crash(4);

    // Phase 3: one more broadcast from a survivor after the storm.
    std::thread::sleep(Duration::from_millis(300)); // let detection settle
    if let Some(tag) = cluster.broadcast(0, Payload::from("post-crash")) {
        tags.push(tag);
        survivor_tags.push(tag);
    }

    // Survivors owe delivery of every survivor-broadcast tag.
    for &tag in &survivor_tags {
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(30));
        for pid in [0usize, 2, 3, 5] {
            assert!(
                who.contains(&pid),
                "survivor {pid} missed {tag:?} (delivered at {who:?})"
            );
        }
    }

    // Let any in-flight deliveries of the doomed processes' tags settle:
    // once the system is quiescent no further deliveries can occur.
    assert!(
        cluster.await_quiescence(Duration::from_millis(500), Duration::from_secs(30)),
        "quiescence after chaos"
    );

    // Agreement + integrity over the final logs (uniform agreement: even a
    // crashed process's deliveries obligate every survivor — checked via
    // the union of all logs, crashed included).
    let logs: Vec<BTreeSet<Tag>> = (0..n)
        .map(|pid| cluster.delivery_log(pid).iter().map(|d| d.tag).collect())
        .collect();
    let delivered_anywhere: BTreeSet<Tag> = logs.iter().flatten().copied().collect();
    for pid in [0usize, 2, 3, 5] {
        assert_eq!(
            logs[pid], delivered_anywhere,
            "survivor {pid}'s log must contain everything delivered anywhere"
        );
    }
    // Integrity: no duplicates (sets were built from vectors; compare sizes).
    for pid in [0usize, 2, 3, 5] {
        let v = cluster.delivery_log(pid);
        assert_eq!(v.len(), logs[pid].len(), "pid {pid} delivered a tag twice");
        // Only broadcast tags are delivered.
        for d in &v {
            assert!(tags.contains(&d.tag), "phantom delivery {:?}", d.tag);
        }
    }

    cluster.shutdown();
}

#[test]
fn delivery_log_is_stable_and_cumulative() {
    let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Majority).seed(7));
    let t1 = cluster.broadcast(0, Payload::from("one")).unwrap();
    cluster.await_delivery_everywhere(t1, Duration::from_secs(10));
    let log1 = cluster.delivery_log(1);
    let t2 = cluster.broadcast(2, Payload::from("two")).unwrap();
    cluster.await_delivery_everywhere(t2, Duration::from_secs(10));
    let log2 = cluster.delivery_log(1);
    assert!(log2.len() > log1.len(), "log grows, never shrinks");
    assert_eq!(&log2[..log1.len()], &log1[..], "prefix is stable");
    cluster.shutdown();
}
