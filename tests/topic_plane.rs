//! Whole-stack tests of the topic plane (DESIGN.md §12):
//!
//! * a **golden-file test** — the `two_topics_smoke` corpus scenario
//!   replays to exactly the per-topic delivery trace recorded in
//!   `tests/golden/two_topics.json` (rows keyed by `(topic, tag)`), and
//!   the serial driver and the parallel executor produce bit-identical
//!   traces. Regenerate after an intentional change with
//!   `UPDATE_GOLDEN=1 cargo test --test topic_plane`;
//! * **cross-backend parity** — the same multi-topic workload executed
//!   by the discrete-event simulator and by the threaded runtime (with
//!   sharded router lanes) delivers identical per-topic payload sets at
//!   every process: both backends drive the same `TopicEngine` code;
//! * **per-topic verdicts** — a multi-topic sim run reports one URB
//!   verdict per instance, and a violation on one topic does not leak
//!   into another's verdict.

use std::collections::BTreeSet;
use std::time::Duration;
use urb_core::Algorithm;
use urb_runtime::{ClusterConfig, UrbCluster};
use urb_sim::spec::corpus;
use urb_sim::{RunOutcome, ScenarioSpec, SimConfig};
use urb_types::{Payload, TopicId};

fn corpus_spec(name: &str) -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(stem, _)| *stem == name)
        .unwrap_or_else(|| panic!("{name} not in corpus"));
    ScenarioSpec::from_toml_str(text).unwrap()
}

fn render_topic_trace(name: &str, out: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"scenario\": \"{name}\",");
    let _ = writeln!(s, "  \"trace_hash\": \"{:#018x}\",", out.metrics.trace_hash);
    let _ = writeln!(s, "  \"deliveries\": [");
    let body: Vec<String> = out
        .metrics
        .deliveries
        .iter()
        .map(|d| {
            format!(
                "    {{\"pid\": {}, \"topic\": {}, \"time\": {}, \"fast\": {}, \
                 \"tag\": \"{:#034x}\"}}",
                d.pid, d.topic.0, d.time, d.fast, d.tag.0
            )
        })
        .collect();
    let _ = writeln!(s, "{}", body.join(",\n"));
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

#[test]
fn golden_two_topics_delivery_trace() {
    let spec = corpus_spec("two_topics_smoke");
    // Backend 1: the serial driver.
    let serial = urb_sim::run(spec.compile().unwrap());
    // Backend 2: the parallel executor (work-stealing thread pool).
    let parallel = urb_sim::run_many(vec![spec.compile().unwrap(); 3]);

    // Cross-executor parity: identical topic-tagged delivery traces.
    for out in &parallel {
        assert_eq!(out.metrics.trace_hash, serial.metrics.trace_hash);
        assert_eq!(
            out.metrics.deliveries.len(),
            serial.metrics.deliveries.len()
        );
        for (a, b) in out
            .metrics
            .deliveries
            .iter()
            .zip(&serial.metrics.deliveries)
        {
            assert_eq!(
                (a.pid, a.topic, a.time, a.fast, a.tag),
                (b.pid, b.topic, b.time, b.fast, b.tag)
            );
        }
    }

    // Both topics really delivered, independently.
    assert_eq!(serial.per_topic.len(), 2);
    for t in &serial.per_topic {
        assert_eq!(t.deliveries, 3, "topic {}: 1 msg × 3 procs", t.topic);
        assert!(t.report.all_ok());
    }

    // Golden comparison (structural, so formatting is not load-bearing).
    let rendered = render_topic_trace("two_topics_smoke", &serial);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/two_topics.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden");
        eprintln!("golden updated: {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    let got: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    let want: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(
        got, want,
        "two_topics_smoke no longer replays to the recorded per-topic delivery trace; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_dynamic_topics_delivery_trace() {
    // The dynamic topic control plane's golden file (DESIGN.md §15): the
    // `dynamic_topics` corpus scenario — create topic 1 at t=100, run a
    // workload over it, retire it at t=4000 — replays to exactly the
    // recorded topic-tagged delivery trace, serial and parallel executors
    // agree bit for bit, and every process reclaims the retired instance.
    let spec = corpus_spec("dynamic_topics");
    let serial = urb_sim::run(spec.compile().unwrap());
    let parallel = urb_sim::run_many(vec![spec.compile().unwrap(); 3]);
    for out in &parallel {
        assert_eq!(out.metrics.trace_hash, serial.metrics.trace_hash);
        assert_eq!(
            out.metrics.deliveries.len(),
            serial.metrics.deliveries.len()
        );
    }

    // Both topics delivered and judged independently; the dynamic one
    // was reclaimed at all 4 processes after retirement.
    assert_eq!(serial.per_topic.len(), 2);
    for t in &serial.per_topic {
        assert!(t.report.all_ok(), "topic {}: {:?}", t.topic, t.report);
    }
    assert_eq!(
        serial.topics_reclaimed(),
        4,
        "4 processes × 1 retired topic"
    );

    let mut rendered = render_topic_trace("dynamic_topics", &serial);
    // The lifecycle counters are part of the pinned trace: a regression
    // that stops reclaiming (or reclaims the wrong number of instances)
    // must fail the golden comparison, not just the unit tests.
    rendered = rendered.replacen(
        "  \"deliveries\": [",
        &format!(
            "  \"topics_reclaimed\": {},\n  \"deliveries\": [",
            serial.topics_reclaimed()
        ),
        1,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dynamic_topics.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden");
        eprintln!("golden updated: {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    let got: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    let want: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(
        got, want,
        "dynamic_topics no longer replays to the recorded lifecycle trace; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn sim_and_runtime_agree_on_a_multi_topic_run() {
    // The same 2-topic, 4-process, 4-broadcast workload on both backends.
    // Wall-clock scheduling differs, so parity is semantic: every process
    // delivers exactly the same per-topic payload *sets* under both.
    let n = 4;
    let payloads: [(u32, &str); 4] = [
        (0, "t0-first"),
        (1, "t1-first"),
        (0, "t0-second"),
        (1, "t1-second"),
    ];

    // Simulator side.
    let mut cfg = SimConfig::new(n, Algorithm::Majority).topics(2).seed(77);
    cfg.broadcasts = payloads
        .iter()
        .enumerate()
        .map(|(i, &(topic, text))| urb_sim::PlannedBroadcast {
            time: 10 + i as u64 * 40,
            pid: i % n,
            topic: TopicId(topic),
            payload: Payload::from(text),
        })
        .collect();
    cfg.stop_on_full_delivery = true;
    let sim_out = urb_sim::run(cfg);
    assert!(sim_out.all_topics_ok(), "{:?}", sim_out.report.violations());

    // Runtime side: 2 topics sharded over 2 router lanes.
    let cluster = UrbCluster::spawn(
        ClusterConfig::new(n, Algorithm::Majority)
            .topics(2)
            .router_lanes(2),
    );
    let mut tags = Vec::new();
    for (i, &(topic, text)) in payloads.iter().enumerate() {
        let tag = cluster
            .broadcast_on(i % n, TopicId(topic), Payload::from(text))
            .expect("tag");
        tags.push(tag);
    }
    for tag in &tags {
        let who = cluster.await_delivery_everywhere(*tag, Duration::from_secs(20));
        assert_eq!(who.len(), n, "runtime delivers everywhere");
    }

    // Parity: per-process, per-topic payload sets agree across backends.
    for pid in 0..n {
        for topic in [TopicId(0), TopicId(1)] {
            let sim_set: BTreeSet<Vec<u8>> = sim_out
                .metrics
                .deliveries
                .iter()
                .filter(|d| d.pid == pid && d.topic == topic)
                .map(|d| d.payload.as_slice().to_vec())
                .collect();
            let rt_set: BTreeSet<Vec<u8>> = cluster
                .delivery_log_on(pid, topic)
                .iter()
                .map(|d| d.payload.as_slice().to_vec())
                .collect();
            assert_eq!(sim_set, rt_set, "pid {pid}, topic {topic}");
            assert_eq!(sim_set.len(), 2, "two payloads per topic");
        }
    }
    cluster.shutdown();
}

#[test]
fn per_topic_verdicts_do_not_leak_across_topics() {
    // Topic 1's broadcaster is fully severed from everyone (its instance
    // violates validity — outside the fairness model, exactly like the
    // single-topic severed-link test), while topic 0 stays healthy. The
    // per-topic reports must blame exactly topic 1.
    let n = 4;
    let mut cfg = SimConfig::new(n, Algorithm::Majority)
        .topics(2)
        .seed(13)
        .max_time(20_000);
    cfg.broadcasts = vec![
        urb_sim::PlannedBroadcast {
            time: 10,
            pid: 0,
            topic: TopicId(0),
            payload: Payload::from("healthy"),
        },
        urb_sim::PlannedBroadcast {
            time: 12,
            pid: 1,
            topic: TopicId(1),
            payload: Payload::from("doomed"),
        },
    ];
    // Sever every link out of pid 1 — but pid 1 only ever broadcasts on
    // topic 1, so only topic 1's instance starves.
    cfg.link_overrides = (0..n)
        .filter(|&to| to != 1)
        .map(|to| urb_sim::LinkOverride {
            from: 1,
            to,
            loss: urb_sim::LossModel::Always,
        })
        .collect();
    let out = urb_sim::run(cfg);
    assert_eq!(out.per_topic.len(), 2);
    assert!(
        out.per_topic[0].report.all_ok(),
        "topic 0 must stay clean: {:?}",
        out.per_topic[0].report.violations()
    );
    assert!(
        !out.per_topic[1].report.validity.ok(),
        "topic 1's severed broadcaster breaks its own validity"
    );
    assert!(!out.all_topics_ok());
    assert_eq!(out.metrics.topics(), vec![TopicId(0), TopicId(1)]);
}
