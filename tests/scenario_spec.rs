//! Whole-stack tests of the declarative scenario plane (DESIGN.md §9):
//!
//! * a **round-trip property test** — randomly generated specs survive
//!   `spec → TOML → spec` unchanged (and compile). The proptest shim does
//!   not shrink, but generation is built from small independent
//!   components, so a failure prints the offending spec's own TOML —
//!   already the minimal reproduction;
//! * a **golden-file test** — the `partition_heal` corpus scenario
//!   replays to exactly the delivery trace recorded in
//!   `tests/golden/partition_heal.json`, and the serial driver and the
//!   parallel executor (the two simulator execution backends) produce
//!   bit-identical traces. Regenerate the golden after an intentional
//!   change with `UPDATE_GOLDEN=1 cargo test --test scenario_spec`.

use proptest::prelude::*;
use urb_sim::adversary::Schedule;
use urb_sim::spec::{corpus, BroadcastSpec, Expectations, ScenarioSpec, StopRule, WorkloadSpec};
use urb_sim::{DelayModel, LossModel, RunOutcome};

// ------------------------------------------------------------------
// Spec generation. The shim has no flat_map, so dependent values (pids
// must stay below n) are derived by modular reduction inside the final
// construction step.

/// Raw ingredients for one random spec: everything independent, reduced
/// into a consistent spec by `build_spec`.
type RawSpec = (
    (usize, u64, u8, u64, f64, f64),
    (u8, u8, usize, u64, u64, bool),
    (u8, usize, u64, u64, u32, bool),
);

fn raw_spec() -> impl Strategy<Value = RawSpec> {
    (
        (
            2usize..9,
            0u64..1_000_000,
            0u8..7,
            1_000u64..200_000,
            0.0f64..1.0,
            0.0f64..1.0,
        ),
        (
            0u8..3,
            0u8..5,
            1usize..5,
            1u64..200,
            0u64..100,
            any::<bool>(),
        ),
        (
            0u8..6,
            0usize..4,
            0u64..500,
            1u64..2_000,
            1u32..4,
            any::<bool>(),
        ),
    )
}

fn build_spec(raw: RawSpec) -> ScenarioSpec {
    let (
        (n, seed, alg_idx, horizon, p1, p2),
        (stop_idx, loss_idx, count, spacing, start, explicit),
        (sched_idx, pid_raw, win_start, win_len, cycles, expect_quiet),
    ) = raw;
    let algorithm = urb_sim::spec::parse_algorithm(
        [
            "majority",
            "quiescent",
            "quiescent-literal",
            "best-effort",
            "eager-rb",
            "backoff:4",
            "weakened:2",
        ][alg_idx as usize],
    )
    .unwrap();
    let mut spec = ScenarioSpec::new("generated", n, algorithm);
    spec.seed = seed;
    spec.horizon = horizon;
    spec.stop = [
        StopRule::Quiescence,
        StopRule::FullDelivery,
        StopRule::Horizon,
    ][stop_idx as usize];
    spec.loss = match loss_idx {
        0 => LossModel::None,
        1 => LossModel::Bernoulli { p: p1 },
        2 => LossModel::BoundedBernoulli {
            p: p1,
            max_consecutive: cycles,
        },
        3 => LossModel::Burst {
            p_enter: p1,
            p_exit: p2,
            p_loss: p1,
        },
        _ => LossModel::Always,
    };
    spec.delay = match loss_idx {
        0 | 1 => DelayModel::Uniform {
            min: 1 + win_start % 4,
            max: 8 + win_start % 4,
        },
        2 => DelayModel::Constant(1 + spacing % 9),
        _ => DelayModel::GeometricTail {
            base: 1,
            p_more: p2 * 0.9,
            cap: 40,
        },
    };
    let pid = pid_raw % n;
    spec.workload = if explicit {
        WorkloadSpec::Explicit(vec![BroadcastSpec {
            time: start + 1,
            pid,
            topic: 0,
            payload: format!("payload \"{pid}\"\twith escapes"),
        }])
    } else {
        WorkloadSpec::Generated {
            count,
            spacing,
            start,
        }
    };
    // One schedule, shaped to stay valid for any n >= 2.
    let half: Vec<usize> = (0..n / 2).collect();
    let rest: Vec<usize> = (n / 2..n).collect();
    let (s, e) = (win_start, win_start + win_len);
    spec.schedules = match sched_idx {
        0 => vec![],
        1 => vec![Schedule::PartitionHeal {
            a: half,
            b: rest,
            start: s,
            end: e,
        }],
        2 => vec![Schedule::AckStarvation {
            victim: pid,
            start: s,
            end: e,
        }],
        3 => vec![Schedule::TargetedDelay {
            links: vec![(pid, (pid + 1) % n)],
            base: 1,
            p_more: p1 * 0.9,
            cap: 50,
        }],
        4 => vec![Schedule::CrashStorm {
            count: (n - 1).min(2),
            start: s,
            width: win_len,
            protect: Some(pid),
        }],
        _ => vec![Schedule::Churn {
            a: half,
            b: rest,
            start: s,
            cut: win_len,
            heal: win_len,
            cycles,
        }],
    };
    spec.expect = Expectations {
        quiescent: if expect_quiet { Some(true) } else { None },
        min_deliveries: Some(count),
        ..Expectations::default()
    };
    spec
}

proptest! {
    #[test]
    fn spec_toml_spec_is_the_identity(raw in raw_spec()) {
        let spec = build_spec(raw);
        let toml = spec.to_toml();
        let parsed = ScenarioSpec::from_toml_str(&toml)
            .unwrap_or_else(|e| panic!("emitted TOML must parse: {e}\n{toml}"));
        prop_assert_eq!(&parsed, &spec, "round trip changed the spec:\n{}", toml);
        // Every generated spec is also compilable (the generator only
        // produces in-range values), so the DSL surface stays runnable.
        parsed.compile().unwrap_or_else(|e| panic!("{e}\n{toml}"));
    }
}

proptest! {
    // A handful of full executions: the compiled config must run and be
    // deterministic per spec. Kept small — each case is a whole run.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn generated_specs_execute_deterministically(raw in raw_spec()) {
        let mut spec = build_spec(raw);
        spec.horizon = spec.horizon.min(20_000); // bound the case's cost
        spec.expect = Expectations::default();
        let a = urb_sim::run(spec.compile().unwrap());
        let b = urb_sim::run(spec.compile().unwrap());
        prop_assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
        prop_assert_eq!(a.metrics.deliveries.len(), b.metrics.deliveries.len());
    }
}

// ------------------------------------------------------------------
// Golden-file replay.

fn render_delivery_trace(name: &str, out: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"scenario\": \"{name}\",");
    let _ = writeln!(s, "  \"trace_hash\": \"{:#018x}\",", out.metrics.trace_hash);
    let _ = writeln!(s, "  \"deliveries\": [");
    let body: Vec<String> = out
        .metrics
        .deliveries
        .iter()
        .map(|d| {
            format!(
                "    {{\"pid\": {}, \"time\": {}, \"fast\": {}, \"tag\": \"{:#034x}\"}}",
                d.pid, d.time, d.fast, d.tag.0
            )
        })
        .collect();
    let _ = writeln!(s, "{}", body.join(",\n"));
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn corpus_spec(name: &str) -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(stem, _)| *stem == name)
        .unwrap_or_else(|| panic!("{name} not in corpus"));
    ScenarioSpec::from_toml_str(text).unwrap()
}

#[test]
fn golden_partition_heal_delivery_trace() {
    let spec = corpus_spec("partition_heal");
    // Backend 1: the serial driver.
    let serial = urb_sim::run(spec.compile().unwrap());
    // Backend 2: the parallel executor (work-stealing thread pool).
    let parallel = urb_sim::run_many(vec![spec.compile().unwrap(); 3]);

    // Cross-backend parity: identical delivery traces, bit for bit.
    for out in &parallel {
        assert_eq!(out.metrics.trace_hash, serial.metrics.trace_hash);
        assert_eq!(
            out.metrics.deliveries.len(),
            serial.metrics.deliveries.len()
        );
        for (a, b) in out
            .metrics
            .deliveries
            .iter()
            .zip(&serial.metrics.deliveries)
        {
            assert_eq!(
                (a.pid, a.time, a.fast, a.tag),
                (b.pid, b.time, b.fast, b.tag)
            );
        }
    }

    // Golden comparison (structural, so formatting is not load-bearing).
    let rendered = render_delivery_trace("partition_heal", &serial);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/partition_heal.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden");
        eprintln!("golden updated: {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    let got: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    let want: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(
        got, want,
        "partition_heal no longer replays to the recorded delivery trace; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn corpus_passes_checker_and_executor_parity() {
    // The acceptance gate: every corpus scenario passes its [expect]
    // verdict under BOTH execution backends.
    let specs: Vec<(String, ScenarioSpec)> = corpus()
        .into_iter()
        .map(|(name, text)| (name.to_string(), ScenarioSpec::from_toml_str(text).unwrap()))
        .collect();
    let parallel = urb_sim::run_many(specs.iter().map(|(_, s)| s.compile().unwrap()).collect());
    for ((name, spec), par) in specs.iter().zip(&parallel) {
        let ser = urb_sim::run(spec.compile().unwrap());
        assert_eq!(
            ser.metrics.trace_hash, par.metrics.trace_hash,
            "{name}: serial and parallel executor diverged"
        );
        assert!(
            spec.expect.check(&ser).is_empty(),
            "{name}: {:?}",
            spec.expect.check(&ser)
        );
        assert!(spec.expect.check(par).is_empty(), "{name} (parallel)");
    }
}
