//! Property-based integration tests: random configurations within the
//! paper's preconditions must always satisfy URB.
//!
//! These fuzz the *whole stack* — workload, loss, crash schedule, detector
//! latencies — not just individual modules. Case counts are modest because
//! each case is a full simulated run in debug mode.

use anon_urb::prelude::*;
use proptest::prelude::*;
use urb_sim::scenario;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Algorithm 1 within its precondition (t < n/2): URB always holds.
    #[test]
    fn alg1_urb_holds_under_random_configs(
        n in 3usize..7,
        loss in 0.0f64..0.4,
        seed in 0u64..10_000,
        k in 1usize..4,
    ) {
        let t_max = (n - 1) / 2;
        let t = (seed as usize) % (t_max + 1);
        let out = urb_sim::run(scenario::lossy_crashy(
            n, Algorithm::Majority, loss, t, k, seed,
        ));
        prop_assert!(
            out.report.all_ok(),
            "n={n} t={t} loss={loss} seed={seed}: {:?}",
            out.report.violations()
        );
    }

    /// Algorithm 2 with ANY resilience (t ≤ n−1): URB always holds and the
    /// oracle audit passes.
    #[test]
    fn alg2_urb_holds_under_random_configs(
        n in 3usize..6,
        loss in 0.0f64..0.4,
        seed in 0u64..10_000,
        t_frac in 0usize..3,
    ) {
        let t = match t_frac {
            0 => 0,
            1 => n / 2,
            _ => n - 1,
        };
        let out = urb_sim::run(scenario::lossy_crashy(
            n, Algorithm::Quiescent, loss, t, 2, seed,
        ));
        prop_assert!(
            out.all_ok(),
            "n={n} t={t} loss={loss} seed={seed}: {:?} audit={:?}",
            out.report.violations(),
            out.fd_audit
        );
    }

    /// Determinism as a property: any configuration, run twice, produces
    /// the same trace hash.
    #[test]
    fn any_config_is_reproducible(
        n in 2usize..6,
        loss in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let mk = || urb_sim::run(scenario::lossy_crashy(
            n, Algorithm::Majority, loss, 0, 1, seed,
        ));
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
        prop_assert_eq!(a.metrics.deliveries.len(), b.metrics.deliveries.len());
    }

    /// Integrity is unconditional: even *outside* every precondition
    /// (weakened thresholds, majority crashes), no process ever delivers a
    /// message twice or a message that was never broadcast.
    #[test]
    fn integrity_is_unconditional(
        n in 3usize..7,
        seed in 0u64..10_000,
        threshold in 1u32..4,
    ) {
        let mut cfg = SimConfig::new(
            n,
            Algorithm::WeakenedMajority { threshold: threshold.min(n as u32) },
        )
        .seed(seed)
        .loss(LossModel::Bernoulli { p: 0.3 })
        .max_time(10_000);
        cfg.crashes = CrashPlan::random(n, n - 1, 2_000, seed, Some(0));
        cfg.stop_on_quiescence = false;
        let out = urb_sim::run(cfg);
        prop_assert!(
            out.report.integrity.ok(),
            "integrity must never break: {:?}",
            out.report.violations()
        );
    }
}
