//! Edge-of-the-model systems: the smallest sizes, degenerate workloads and
//! extreme parameter corners. These are where off-by-one quorum bugs and
//! "at least one correct process" assumptions go to die.

use anon_urb::prelude::*;
use urb_sim::{scenario, Blackout, DelayModel};

/// n = 1: the broadcast primitive includes the sender, so a singleton
/// system self-ACKs (1 > 1/2) and must URB-deliver its own message.
#[test]
fn singleton_system_delivers_to_itself() {
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        let mut cfg = SimConfig::new(1, alg).seed(1);
        cfg.max_time = 50_000;
        let out = urb_sim::run(cfg);
        assert!(out.all_ok(), "{alg:?}: {:?}", out.report.violations());
        assert_eq!(out.delivered_set(0).len(), 1, "{alg:?}");
    }
}

/// n = 2, both correct: majority threshold is 2, so delivery needs both
/// ACKs — still reachable under loss thanks to retransmission.
#[test]
fn two_process_system() {
    for alg in [Algorithm::Majority, Algorithm::Quiescent] {
        let out = urb_sim::run(scenario::lossy_crashy(2, alg, 0.3, 0, 2, 5));
        assert!(out.all_ok(), "{alg:?}: {:?}", out.report.violations());
        for pid in 0..2 {
            assert_eq!(out.delivered_set(pid).len(), 2, "{alg:?} pid {pid}");
        }
    }
}

/// n = 2 with one crash: Algorithm 1's precondition (t < n/2 ⇒ t = 0) is
/// violated — it must block, not lie. Algorithm 2 (t ≤ n−1) must deliver
/// at the survivor.
#[test]
fn two_process_one_crash_contrast() {
    // Crash pid 1 before anything happens.
    let mk = |alg| {
        let mut cfg = SimConfig::new(2, alg).seed(9);
        cfg.crashes =
            CrashPlan::from_rules(vec![urb_sim::CrashRule::Never, urb_sim::CrashRule::At(1)]);
        cfg.max_time = 30_000;
        urb_sim::run(cfg)
    };
    let a1 = mk(Algorithm::Majority);
    assert!(a1.metrics.deliveries.is_empty(), "no majority of 2 exists");
    assert!(a1.report.agreement.ok() && a1.report.integrity.ok());

    let a2 = mk(Algorithm::Quiescent);
    assert!(a2.all_ok(), "{:?}", a2.report.violations());
    assert_eq!(a2.delivered_set(0).len(), 1, "survivor delivers");
    assert!(a2.quiescent, "and then goes silent");
}

/// Zero-byte and large payloads travel unharmed.
#[test]
fn payload_size_extremes() {
    let mut cfg = SimConfig::new(3, Algorithm::Quiescent).seed(11);
    cfg.broadcasts = vec![
        urb_sim::PlannedBroadcast {
            time: 10,
            pid: 0,
            topic: urb_types::TopicId::ZERO,
            payload: Payload::empty(),
        },
        urb_sim::PlannedBroadcast {
            time: 20,
            pid: 1,
            topic: urb_types::TopicId::ZERO,
            payload: Payload::from(vec![0xAB; 64 * 1024]),
        },
    ];
    cfg.max_time = 100_000;
    let out = urb_sim::run(cfg);
    assert!(out.all_ok(), "{:?}", out.report.violations());
    assert_eq!(out.metrics.deliveries.len(), 6);
}

/// An empty workload is trivially quiescent and clean.
#[test]
fn empty_workload() {
    for alg in [
        Algorithm::Majority,
        Algorithm::Quiescent,
        Algorithm::EagerRb,
    ] {
        let mut cfg = SimConfig::new(4, alg).seed(13);
        cfg.broadcasts.clear();
        let out = urb_sim::run(cfg);
        assert!(out.all_ok());
        assert!(out.metrics.deliveries.is_empty());
        assert!(out.quiescent, "{alg:?}: nothing to say = quiescent");
        assert_eq!(out.metrics.protocol_sends(), 0);
    }
}

/// Extreme delays (heavy geometric tail) reorder aggressively; URB and
/// quiescence survive.
#[test]
fn heavy_reordering() {
    let mut cfg = SimConfig::new(4, Algorithm::Quiescent).seed(17);
    cfg.delay = DelayModel::GeometricTail {
        base: 1,
        p_more: 0.9,
        cap: 300,
    };
    cfg.max_time = 400_000;
    let out = urb_sim::run(cfg);
    assert!(out.all_ok(), "{:?}", out.report.violations());
    assert!(out.quiescent);
}

/// Repeated short partitions (flapping network): each outage suspends
/// fairness only temporarily, so URB must still complete.
#[test]
fn flapping_partitions() {
    let mut cfg = SimConfig::new(4, Algorithm::Majority).seed(19);
    cfg.stop_on_full_delivery = true;
    cfg.max_time = 100_000;
    let mut blackouts = Vec::new();
    for k in 0..5 {
        blackouts.extend(Blackout::partition(
            &[0, 1],
            &[2, 3],
            k * 400,
            k * 400 + 200,
        ));
    }
    cfg.blackouts = blackouts;
    let out = urb_sim::run(cfg);
    assert!(out.report.all_ok(), "{:?}", out.report.violations());
    for pid in 0..4 {
        assert_eq!(out.delivered_set(pid).len(), 1);
    }
}

/// Everyone broadcasts simultaneously (contention burst).
#[test]
fn simultaneous_broadcast_burst() {
    let n = 6;
    let mut cfg = SimConfig::new(n, Algorithm::Quiescent).seed(23);
    cfg.broadcasts = (0..n)
        .map(|pid| urb_sim::PlannedBroadcast {
            time: 10, // all at once
            pid,
            topic: urb_types::TopicId::ZERO,
            payload: Payload::from(format!("burst-{pid}").as_str()),
        })
        .collect();
    cfg.max_time = 200_000;
    let out = urb_sim::run(cfg);
    assert!(out.all_ok(), "{:?}", out.report.violations());
    assert_eq!(out.metrics.deliveries.len(), n * n);
    assert!(out.quiescent);
}

/// The backoff extension passes the same grid as the faithful algorithm.
#[test]
fn backoff_variant_urb_grid() {
    for cap in [4u32, 64] {
        for seed in 0..3 {
            let out = urb_sim::run(scenario::lossy_crashy(
                5,
                Algorithm::MajorityBackoff { cap },
                0.25,
                2,
                2,
                seed * 37 + 1,
            ));
            assert!(
                out.report.all_ok(),
                "cap={cap} seed={seed}: {:?}",
                out.report.violations()
            );
        }
    }
}
