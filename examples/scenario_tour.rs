//! Scenario tour: replay the whole declarative corpus and print each
//! machine-checked verdict.
//!
//! ```text
//! cargo run --release --example scenario_tour            # embedded corpus
//! cargo run --release --example scenario_tour -- scenarios/churn.toml
//! ```
//!
//! Every entry under `scenarios/` is a complete adversarial run described
//! as data — topology, workload, loss/delay models, crash plans and the
//! named schedules of the adversary library (partition-heal,
//! ack-starvation, crash-storm, churn, targeted-delay). This example
//! parses, compiles and executes each spec and checks its `[expect]`
//! verdict, exactly as `urb scenario <file>` and experiment E15 do.

use urb_sim::spec::{corpus, ScenarioSpec};

fn replay(label: &str, spec: &ScenarioSpec) -> bool {
    let (out, fails) = match spec.run() {
        Ok(pair) => pair,
        Err(e) => {
            println!("{label:<22} ERROR: {e}");
            return false;
        }
    };
    let verdict = if fails.is_empty() { "PASS" } else { "FAIL" };
    println!(
        "{label:<22} {verdict}  n={} alg={:<14} deliveries={:<3} quiescent={:<5} urb_ok={}",
        out.n,
        out.algorithm,
        out.metrics.deliveries.len(),
        out.quiescent,
        out.all_ok(),
    );
    for f in &fails {
        println!("{:22} ✗ {f}", "");
    }
    fails.is_empty()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== scenario tour: declarative adversaries, machine-checked ==\n");

    let mut all_pass = true;
    if args.is_empty() {
        for (name, text) in corpus() {
            let spec = ScenarioSpec::from_toml_str(text).expect("corpus parses");
            all_pass &= replay(name, &spec);
        }
        println!("\n(these are the embedded copies of scenarios/*.toml — point the");
        println!(" example at a file to replay your own, or use `urb scenario <file>`)");
    } else {
        for path in &args {
            let text = std::fs::read_to_string(path).expect("readable scenario file");
            let spec = ScenarioSpec::from_named_str(path, &text).expect("valid scenario spec");
            all_pass &= replay(path, &spec);
        }
    }
    assert!(all_pass, "every scenario must meet its expectations");
}
