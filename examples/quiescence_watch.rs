//! Quiescence watch: visualize the defining difference between the paper's
//! two algorithms — Algorithm 1 retransmits forever, Algorithm 2 stops.
//!
//! ```text
//! cargo run --release --example quiescence_watch
//! ```
//!
//! Runs both algorithms over the same lossy workload and prints an ASCII
//! sparkline of MSG/ACK traffic per time window. The workload is a
//! declarative scenario spec (the same TOML the `urb scenario` subcommand
//! loads from disk) — only the algorithm line differs between the two
//! runs, so the contrast is pure protocol.

use anon_urb::prelude::*;
use urb_sim::spec::ScenarioSpec;

/// The shared shape, as scenario TOML. `stop = "horizon"` keeps both runs
/// on the same fixed horizon so the traffic histograms are comparable.
const WATCH_SPEC: &str = r#"
name = "quiescence_watch"
seed = 31
n = 8
algorithm = "ALG"
horizon = 60_000
stop = "horizon"
window = 1_000
loss = { model = "bernoulli", p = 0.2 }

[workload]
count = 5
spacing = 100
"#;

fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                '·'
            } else {
                BARS[((v * 7) / max) as usize]
            }
        })
        .collect()
}

fn main() {
    println!("== quiescence watch: protocol traffic per 1000-tick window ==\n");
    println!("workload: n=8, 5 broadcasts, 20% loss, horizon 60k ticks\n");

    for alg in ["majority", "quiescent"] {
        let spec =
            ScenarioSpec::from_toml_str(&WATCH_SPEC.replace("ALG", alg)).expect("valid spec");
        let out = urb_sim::run(spec.compile().expect("spec compiles"));
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        let windows = &out.metrics.sends_per_window;
        println!("{:<16} {}", out.algorithm, sparkline(windows));
        println!(
            "{:<16} total MSG+ACK: {:>7}   last transmission: t={}   quiescent: {}",
            "",
            out.metrics.protocol_sends(),
            out.last_protocol_send,
            out.quiescent
        );
        println!();
    }

    println!("reading: Algorithm 1's bar never reaches '·' (it rebroadcasts its");
    println!("MSG set forever — fair-lossy channels give it no way to stop);");
    println!("Algorithm 2 uses AP* to prove every correct process has each");
    println!("message, prunes it, and the lane goes silent (Theorem 3).");
}
