//! Quickstart: a live cluster of anonymous processes doing Uniform Reliable
//! Broadcast over lossy links.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Spawns 5 OS threads (one anonymous process each), injects 25% message
//! loss, URB-broadcasts a few messages and shows every process delivering
//! all of them — then demonstrates quiescence: after Algorithm 2 is done,
//! the network goes silent.

use anon_urb::prelude::*;
use std::time::Duration;

fn main() {
    println!("== anon-urb quickstart ==\n");
    println!("5 anonymous processes, 25% message loss, Algorithm 2 (quiescent URB)\n");

    let cluster = UrbCluster::spawn(
        ClusterConfig::new(5, Algorithm::Quiescent)
            .loss(0.25)
            .seed(2015),
    );

    // Anyone can broadcast; there are no identifiers anywhere in the
    // protocol. We address processes by driver-side index only.
    let mut tags = Vec::new();
    for (pid, text) in [(0usize, "hello"), (2, "anonymous"), (4, "world")] {
        let tag = cluster
            .broadcast(pid, Payload::from(text))
            .expect("process alive");
        println!("process #{pid} URB-broadcast {text:?} → {tag:?}");
        tags.push((tag, text));
    }

    for (tag, text) in &tags {
        let who = cluster.await_delivery_everywhere(*tag, Duration::from_secs(20));
        println!(
            "{text:?} URB-delivered by {}/{} processes: {who:?}",
            who.len(),
            cluster.n()
        );
        assert_eq!(who.len(), cluster.n(), "uniform agreement");
    }

    print!("\nwaiting for quiescence (Algorithm 2 must stop retransmitting) … ");
    let quiet = cluster.await_quiescence(Duration::from_millis(500), Duration::from_secs(30));
    println!(
        "{}",
        if quiet {
            "quiescent ✓"
        } else {
            "still chatty ✗"
        }
    );

    let t = cluster.traffic();
    println!(
        "traffic: {} protocol messages routed, {} copies dropped by loss injection",
        t.protocol_messages, t.dropped_copies
    );
    cluster.shutdown();
    println!("\ndone.");
}
