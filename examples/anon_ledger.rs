//! Anonymous ledger: replicated state over URB, with a crashed majority.
//!
//! ```text
//! cargo run --release --example anon_ledger
//! ```
//!
//! A fleet of identical appliance nodes (no identities, no stable
//! addresses) appends entries to a shared ledger by URB-broadcasting them.
//! Because URB gives every correct replica the same delivery *set*, any
//! order-insensitive state machine converges — here a canonical-order
//! event log plus a tally counter. The run loses 20% of all packets and
//! crashes 4 of 7 nodes mid-run; the surviving replicas still end
//! byte-identical, which the digest check proves.

use anon_urb::apps::{converged, run_replicated, EventLog, ReplicatedOutcome, UrbState};
use anon_urb::prelude::*;
use urb_sim::PlannedBroadcast;

fn main() {
    println!("== anonymous ledger over URB ==\n");
    let n = 7;
    let mut cfg = SimConfig::new(n, Algorithm::Quiescent).seed(2015);
    cfg.loss = LossModel::Bernoulli { p: 0.2 };
    cfg.broadcasts = [
        (0usize, "credit 120 to meter-A"),
        (2, "debit 40 from meter-B"),
        (4, "credit 7 to meter-C"),
        (6, "debit 19 from meter-A"),
        (1, "credit 300 to meter-B"),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(pid, text))| PlannedBroadcast {
        time: 10 + i as u64 * 60,
        pid,
        topic: urb_types::TopicId::ZERO,
        payload: Payload::from(text),
    })
    .collect();
    // Majority crash: only 3 of 7 survive. Algorithm 1 could not even get
    // started here; Algorithm 2's AΘ/AP* make it routine.
    cfg.crashes = CrashPlan::random(n, 4, 800, 77, Some(0));
    cfg.max_time = 400_000;

    let out: ReplicatedOutcome<EventLog> = run_replicated(cfg);

    println!(
        "run: {} nodes, 20% loss, {} crashed mid-run, {} ledger entries broadcast",
        n,
        (0..n).filter(|&i| !out.run.correct[i]).count(),
        out.run.metrics.broadcasts.len()
    );
    println!(
        "URB checker: validity={} agreement={} integrity={} (fd audit {:?})\n",
        out.run.report.validity.ok(),
        out.run.report.agreement.ok(),
        out.run.report.integrity.ok(),
        out.run.fd_audit.as_ref().map(|r| r.is_ok())
    );

    let survivors: Vec<usize> = (0..n).filter(|&i| out.run.correct[i]).collect();
    for &pid in &survivors {
        println!(
            "replica #{pid}: {} entries, digest {:#018x}",
            out.replica(pid).state.len(),
            out.replica(pid).state.digest()
        );
    }
    assert!(converged(&out), "survivor ledgers must be identical");
    println!("\nall surviving replicas converged ✓ — the ledger (canonical order):\n");
    print!("{}", out.replica(survivors[0]).state.render());
    assert!(out.run.all_ok());
    println!(
        "\nquiescent: {} — the network is silent now.",
        out.run.quiescent
    );
}
