//! Crash storm: the paper's headline claim, live.
//!
//! ```text
//! cargo run --release --example crash_storm
//! ```
//!
//! Theorem 2 says URB is unsolvable once half the processes can crash —
//! unless the system is enriched with `AΘ`/`AP*` (Algorithm 2). This
//! example kills 4 of 6 *threads* (a strict majority) in a live cluster and
//! shows Algorithm 2 still delivering everywhere that matters, while
//! Algorithm 1, run under the same storm, simply blocks (its majority
//! quorum is unreachable — safe, but stuck).

use anon_urb::prelude::*;
use std::time::Duration;

fn storm(algorithm: Algorithm) -> (usize, Vec<usize>) {
    let n = 6;
    let cluster = UrbCluster::spawn(ClusterConfig::new(n, algorithm).loss(0.15).seed(4242));

    // Kill a strict majority before the broadcast: 4 of 6.
    for pid in [1usize, 2, 4, 5] {
        cluster.crash(pid);
    }
    // Give the membership registry time to converge (AP* detection delay).
    std::thread::sleep(Duration::from_millis(400));

    let tag = cluster
        .broadcast(0, Payload::from("survivors only"))
        .expect("process 0 alive");
    let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(8));
    cluster.shutdown();
    (n, who)
}

fn main() {
    println!("== crash storm: 4 of 6 processes crash before the broadcast ==\n");

    let (_, who) = storm(Algorithm::Quiescent);
    println!("Algorithm 2 (AΘ + AP*): delivered at {who:?}");
    assert_eq!(who, vec![0, 3], "both survivors must deliver");
    println!("  → both survivors delivered. URB with a crashed majority ✓\n");

    let (_, who) = storm(Algorithm::Majority);
    println!("Algorithm 1 (needs t < n/2): delivered at {who:?}");
    assert!(
        who.is_empty(),
        "2 of 6 distinct ACKs can never reach the majority threshold of 4"
    );
    println!("  → nobody delivered: the majority quorum is unreachable.");
    println!("    Safe but blocked — exactly the impossibility (Theorem 2)");
    println!("    that AΘ/AP* circumvent.");
}
