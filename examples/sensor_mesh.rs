//! Sensor mesh: the workload the paper's introduction motivates — a fleet
//! of identical, identifier-less devices (think mass-produced sensors)
//! disseminating readings over radio links that drop packets in bursts.
//!
//! ```text
//! cargo run --release --example sensor_mesh
//! ```
//!
//! Uses the discrete-event simulator: 12 anonymous sensors, Gilbert–Elliott
//! bursty loss, three of them failing mid-run, every sensor publishing a
//! reading. The URB checker proves all surviving sensors agree on the full
//! reading log — and the run report shows what that certainty costs.

use anon_urb::prelude::*;
use urb_sim::{DelayModel, FdKind};

fn main() {
    println!("== sensor mesh (simulated) ==\n");
    let n = 12;
    let mut cfg = SimConfig::new(n, Algorithm::Quiescent).seed(777);
    // Radio-like channel: bursty loss, jittery delays.
    cfg.loss = LossModel::Burst {
        p_enter: 0.05,
        p_exit: 0.25,
        p_loss: 0.9,
    };
    cfg.delay = DelayModel::GeometricTail {
        base: 2,
        p_more: 0.4,
        cap: 40,
    };
    // Every sensor publishes one reading.
    cfg.broadcasts = (0..n)
        .map(|pid| urb_sim::PlannedBroadcast {
            time: 10 + 40 * pid as u64,
            pid,
            topic: urb_types::TopicId::ZERO,
            payload: Payload::from(
                format!("reading: sensor-slot={pid} value={}", 20 + pid).as_str(),
            ),
        })
        .collect();
    // Three sensors die mid-run (batteries, weather, bad luck).
    cfg.crashes = CrashPlan::random(n, 3, 2_000, 99, Some(0));
    cfg.fd = FdKind::Oracle(Default::default());
    cfg.max_time = 400_000;

    let out = urb_sim::run(cfg);

    println!("system: {n} anonymous sensors, bursty loss, 3 mid-run failures");
    println!(
        "readings published: {}  | URB deliveries: {}",
        out.metrics.broadcasts.len(),
        out.metrics.deliveries.len()
    );
    let correct: Vec<usize> = (0..n).filter(|&i| out.correct[i]).collect();
    println!("surviving sensors: {correct:?}");
    for &pid in &correct {
        let got = out.delivered_set(pid).len();
        println!(
            "  sensor #{pid}: {got}/{} readings in its log",
            out.metrics.broadcasts.len()
        );
    }
    println!(
        "\nchecker: validity={} agreement={} integrity={}",
        out.report.validity.ok(),
        out.report.agreement.ok(),
        out.report.integrity.ok()
    );
    println!(
        "cost: {} MSG/ACK transmissions, {} dropped by the radio",
        out.metrics.protocol_sends(),
        out.metrics.dropped.iter().sum::<u64>()
    );
    println!(
        "quiescent: {} (last protocol transmission at t={})",
        out.quiescent, out.last_protocol_send
    );
    assert!(out.all_ok(), "URB must hold: {:?}", out.report.violations());
    println!("\nall URB properties machine-checked ✓");
}
